// Ablation benches for the design choices DESIGN.md calls out:
//  * rotation regulation on/off (Sec. VI-A staleness control),
//  * P_s sweep (top-contribution share; paper recommends 0.05-0.1),
//  * expected-volume sweep (the acceleration/accuracy trade-off),
//  * Static Prune baseline (permanent pruning, Sec. II-B criticism).
#include <iostream>

#include "bench_common.h"
#include "core/helios_strategy.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();
  bench::TaskSpec task = bench::lenet_task(scale);
  const bench::FleetSetup setup{4, 2, false, 7};

  auto run_with = [&](const std::string& label, core::HeliosConfig cfg,
                      double volume_override = 0.0) {
    fl::Fleet fleet = bench::build_fleet(task, setup);
    if (volume_override > 0.0) {
      for (auto* s : fleet.stragglers()) s->set_volume(volume_override);
      cfg.pace_adaptation_cycles = 0;  // hold the volume fixed
    }
    core::HeliosStrategy strategy(cfg);
    fl::RunResult res = strategy.run(fleet, task.cycles);
    res.method = label;
    return res;
  };

  // 1. Rotation regulation on/off.
  {
    core::HeliosConfig on;
    core::HeliosConfig off;
    off.rotation_regulation = false;
    std::vector<fl::RunResult> results{run_with("rotation on", on),
                                       run_with("rotation off", off)};
    bench::print_accuracy_series(
        std::cout, "Ablation: neuron rotation regulation (" + task.name + ")",
        results);
  }

  // 2. P_s sweep.
  {
    std::vector<fl::RunResult> results;
    for (double ps : {0.05, 0.1, 0.3, 1.0}) {
      core::HeliosConfig cfg;
      cfg.ps = ps;
      results.push_back(
          run_with("Ps=" + util::Table::num(ps, 2), cfg));
    }
    bench::print_accuracy_series(
        std::cout,
        "Ablation: P_s (top-contribution share; paper recommends 0.05-0.1)",
        results);
  }

  // 3. Volume sweep at fixed volumes (no pace adaptation).
  {
    std::vector<fl::RunResult> results;
    for (double v : {0.1, 0.25, 0.5, 0.75}) {
      core::HeliosConfig cfg;
      results.push_back(
          run_with("volume=" + util::Table::num(v, 2), cfg, v));
    }
    bench::print_accuracy_series(
        std::cout, "Ablation: expected model volume (acceleration trade-off)",
        results);
    bench::print_convergence_summary(std::cout, results);
  }

  // 4. Static pruning vs rotating submodels at the same volume.
  {
    auto results = bench::run_methods(task, setup,
                                      {"Static Prune", "Random", "Helios"},
                                      std::cerr);
    bench::print_accuracy_series(
        std::cout,
        "Ablation: permanent pruning vs rotating submodels (same volumes)",
        results);
  }
  return 0;
}
