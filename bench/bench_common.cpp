#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "fl/afo.h"
#include "fl/async.h"
#include "fl/baselines.h"
#include "fl/sync.h"
#include "obs/telemetry.h"

namespace helios::bench {

Scale scale_from_env() {
  const char* env = std::getenv("HELIOS_BENCH_SCALE");
  const std::string v = env ? env : "default";
  if (v == "quick") return {"quick", 0.5, 0.5};
  if (v == "full") return {"full", 2.0, 2.0};
  return {"default", 1.0, 1.0};
}

namespace {
int scaled(int base, double factor, int floor_value) {
  return std::max(floor_value, static_cast<int>(std::lround(base * factor)));
}
}  // namespace

TaskSpec lenet_task(const Scale& s) {
  TaskSpec t;
  t.name = "LeNet/MNIST-syn";
  t.model = models::lenet_spec({1, 28, 28, 10});
  t.data = data::mnist_like_spec(0);
  t.data.noise = 0.9F;
  t.data.deform = 0.6F;
  t.samples_per_client = scaled(128, s.samples, 32);
  t.test_samples = 512;
  t.cycles = scaled(15, s.cycles, 8);
  t.lr = 0.08F;
  t.batch = 16;
  return t;
}

TaskSpec alexnet_task(const Scale& s) {
  TaskSpec t;
  t.name = "AlexNet-lite/CIFAR10-syn";
  t.model = models::alexnet_lite_spec({3, 32, 32, 10}, 8);
  t.data = data::cifar10_like_spec(0);
  t.data.noise = 0.8F;
  t.data.deform = 0.5F;
  t.samples_per_client = scaled(64, s.samples, 24);
  t.test_samples = 400;
  t.cycles = scaled(15, s.cycles, 8);
  t.lr = 0.05F;
  t.batch = 16;
  return t;
}

TaskSpec resnet_task(const Scale& s) {
  TaskSpec t;
  t.name = "ResNet18-lite/CIFAR100-syn";
  t.model = models::resnet18_lite_spec({3, 16, 16, 100}, 8, 1);
  t.data = data::cifar100_like_spec(0);
  t.data.prototype_grid = 6;  // 100 classes need more prototype DoF
  t.data.noise = 0.9F;
  t.data.deform = 0.3F;
  t.samples_per_client = scaled(160, s.samples, 64);
  t.test_samples = 400;
  t.cycles = scaled(20, s.cycles, 10);
  t.lr = 0.1F;
  t.batch = 16;
  return t;
}

fl::Fleet build_fleet(const TaskSpec& task, const FleetSetup& setup) {
  if (setup.stragglers >= setup.devices) {
    throw std::invalid_argument("build_fleet: need at least one capable device");
  }
  data::SyntheticSpec spec = task.data;
  spec.samples = task.samples_per_client * setup.devices;
  util::Rng rng(setup.seed);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = task.test_samples;
  data::Dataset test = data::make_synthetic(spec, rng);

  fl::Fleet fleet(task.model, std::move(test), setup.seed);

  const data::Partition parts =
      setup.non_iid
          ? data::partition_shards(train.labels,
                                   static_cast<std::size_t>(setup.devices), 2,
                                   rng)
          : data::partition_iid(static_cast<std::size_t>(train.size()),
                                static_cast<std::size_t>(setup.devices), rng);

  const std::vector<device::ResourceProfile> capable_pool{
      device::sim_scaled(device::edge_server()),
      device::sim_scaled(device::jetson_nano_gpu())};
  const std::vector<device::ResourceProfile> straggler_pool = [] {
    std::vector<device::ResourceProfile> out;
    for (const auto& p : device::table1_stragglers()) {
      out.push_back(device::sim_scaled(p));
    }
    return out;
  }();

  const int capable = setup.devices - setup.stragglers;
  for (int i = 0; i < setup.devices; ++i) {
    fl::ClientConfig cfg;
    cfg.seed = setup.seed + static_cast<std::uint64_t>(i) * 131;
    cfg.lr = task.lr;
    cfg.batch_size = task.batch;
    const device::ResourceProfile profile =
        i < capable
            ? capable_pool[static_cast<std::size_t>(i) % capable_pool.size()]
            : straggler_pool[static_cast<std::size_t>(i - capable) %
                             straggler_pool.size()];
    fleet.add_client(data::subset(train, parts[static_cast<std::size_t>(i)]),
                     cfg, profile);
  }

  // Identification + optimization-target determination (Sec. IV).
  const core::StragglerReport report =
      core::StragglerIdentifier::resource_based(fleet, 2.0);
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report, 0.05);
  return fleet;
}

std::unique_ptr<fl::Strategy> make_strategy(const std::string& name) {
  if (name == "Syn. FL") return std::make_unique<fl::SyncFL>();
  if (name == "Asyn. FL") return std::make_unique<fl::AsyncFL>();
  if (name == "Random") return std::make_unique<fl::RandomSubmodel>();
  if (name == "AFO") return std::make_unique<fl::Afo>();
  if (name == "Static Prune") return std::make_unique<fl::StaticPrune>();
  if (name == "Helios") return std::make_unique<core::HeliosStrategy>();
  if (name == "S.T. Only") {
    core::HeliosConfig cfg;
    cfg.hetero_aggregation = false;
    return std::make_unique<core::HeliosStrategy>(cfg);
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

std::vector<fl::RunResult> run_methods(const TaskSpec& task,
                                       const FleetSetup& setup,
                                       const std::vector<std::string>& methods,
                                       std::ostream& log) {
  // HELIOS_TELEMETRY=<prefix> dumps per-method trace/metrics/dashboard
  // artifacts named <prefix>_<method>.*; unset means zero overhead.
  const char* telemetry_prefix = std::getenv("HELIOS_TELEMETRY");
  std::vector<fl::RunResult> results;
  for (const std::string& method : methods) {
    log << "  running " << method << " on " << task.name << " ("
        << setup.devices << " devices, " << setup.stragglers
        << " stragglers" << (setup.non_iid ? ", Non-IID" : "") << ")...\n"
        << std::flush;
    fl::Fleet fleet = build_fleet(task, setup);
    std::unique_ptr<obs::TelemetrySink> sink;
    if (telemetry_prefix && *telemetry_prefix) {
      obs::TelemetryConfig cfg;
      cfg.artifact_prefix = std::string(telemetry_prefix) + "_";
      for (char c : method) {
        cfg.artifact_prefix += (std::isalnum(static_cast<unsigned char>(c)) != 0)
                                   ? static_cast<char>(std::tolower(
                                         static_cast<unsigned char>(c)))
                                   : '_';
      }
      sink = std::make_unique<obs::TelemetrySink>(cfg);
      fleet.set_telemetry(sink.get());
    }
    results.push_back(make_strategy(method)->run(fleet, task.cycles));
    if (sink) {
      sink->flush();
      sink->render_dashboard(log);
      fleet.set_telemetry(nullptr);
    }
  }
  return results;
}

void print_accuracy_series(std::ostream& os, const std::string& title,
                           const std::vector<fl::RunResult>& results) {
  util::print_banner(os, title);
  std::vector<std::string> headers{"cycle"};
  std::size_t max_rounds = 0;
  for (const auto& r : results) {
    headers.push_back(r.method);
    max_rounds = std::max(max_rounds, r.rounds.size());
  }
  util::Table table(headers);
  for (std::size_t c = 0; c < max_rounds; ++c) {
    std::vector<std::string> row{std::to_string(c)};
    for (const auto& r : results) {
      row.push_back(c < r.rounds.size()
                        ? util::Table::num(r.rounds[c].test_accuracy * 100.0, 2)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(os);

  util::Table times({"method", "final acc (%)", "virtual time (s)"});
  for (const auto& r : results) {
    times.add_row({r.method, util::Table::num(r.final_accuracy() * 100.0, 2),
                   util::Table::num(
                       r.rounds.empty() ? 0.0 : r.rounds.back().virtual_time,
                       3)});
  }
  os << '\n';
  times.print(os);
}

void print_convergence_summary(std::ostream& os,
                               const std::vector<fl::RunResult>& results) {
  double best_final = 0.0;
  for (const auto& r : results) best_final = std::max(best_final, r.final_accuracy());
  const double target = 0.9 * best_final;

  const fl::RunResult* sync = nullptr;
  for (const auto& r : results) {
    if (r.method == "Syn. FL") sync = &r;
  }

  os << "\nConvergence target: " << util::Table::num(target * 100.0, 2)
     << "% (90% of best final accuracy)\n";
  util::Table table({"method", "final acc (%)", "cycles to target",
                     "vtime to target (s)", "speedup vs Syn. FL"});
  for (const auto& r : results) {
    const std::size_t cycles = r.cycles_to_accuracy(target);
    const double t = r.time_to_accuracy(target);
    std::string speedup = "-";
    if (sync && sync->method != r.method) {
      const double t_sync = sync->time_to_accuracy(target);
      if (t_sync != fl::RunResult::never && t != fl::RunResult::never &&
          t > 0.0) {
        speedup = util::Table::num(t_sync / t, 2) + "x";
      }
    }
    table.add_row({r.method, util::Table::num(r.final_accuracy() * 100.0, 2),
                   cycles == fl::RunResult::npos ? "never"
                                                 : std::to_string(cycles),
                   t == fl::RunResult::never ? "never"
                                             : util::Table::num(t, 3),
                   speedup});
  }
  table.print(os);
}

const std::vector<std::string>& paper_methods() {
  static const std::vector<std::string> methods{
      "Syn. FL", "Asyn. FL", "Random", "AFO", "Helios"};
  return methods;
}

}  // namespace helios::bench
