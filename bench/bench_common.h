// Shared experiment infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary reproduces one table or figure. Workload sizes are
// scaled by HELIOS_BENCH_SCALE (quick | default | full) so the whole suite
// runs on one CPU core in minutes while --full approaches paper-scale
// cycle counts.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/helios_strategy.h"
#include "data/synthetic.h"
#include "fl/fleet.h"
#include "fl/metrics.h"
#include "fl/strategy.h"
#include "models/zoo.h"
#include "util/table.h"

namespace helios::bench {

struct Scale {
  std::string name = "default";
  /// Multiplier on per-client sample counts.
  double samples = 1.0;
  /// Multiplier on aggregation-cycle counts.
  double cycles = 1.0;
};

/// Reads HELIOS_BENCH_SCALE (quick | default | full).
Scale scale_from_env();

/// One model/dataset pairing of the paper's evaluation.
struct TaskSpec {
  std::string name;           // "LeNet/MNIST-syn" etc.
  models::ModelSpec model;
  data::SyntheticSpec data;   // per-client sample count in samples_per_client
  int samples_per_client = 128;
  int test_samples = 512;
  int cycles = 15;
  float lr = 0.08F;
  int batch = 16;
};

TaskSpec lenet_task(const Scale& s);
TaskSpec alexnet_task(const Scale& s);
TaskSpec resnet_task(const Scale& s);

struct FleetSetup {
  int devices = 4;
  int stragglers = 2;
  bool non_iid = false;
  std::uint64_t seed = 7;
};

/// Builds a fleet per the paper's setup: capable devices first (EdgeServer /
/// Nano-GPU profiles), then stragglers in Table I order, all sim-scaled.
/// Runs resource-based identification and profiled target determination, so
/// the returned fleet is ready for any strategy.
fl::Fleet build_fleet(const TaskSpec& task, const FleetSetup& setup);

/// Strategy factory: "Syn. FL", "Asyn. FL", "Random", "AFO", "Helios",
/// "S.T. Only", "Static Prune".
std::unique_ptr<fl::Strategy> make_strategy(const std::string& name);

/// Runs each named method on a freshly built (identical) fleet.
std::vector<fl::RunResult> run_methods(const TaskSpec& task,
                                       const FleetSetup& setup,
                                       const std::vector<std::string>& methods,
                                       std::ostream& log);

/// Figure-style output: one row per cycle, one accuracy column per method,
/// plus per-method virtual time of the final cycle.
void print_accuracy_series(std::ostream& os, const std::string& title,
                           const std::vector<fl::RunResult>& results);

/// Summary rows: final accuracy, cycles/time to the shared target accuracy
/// (90% of the best final), and speedup relative to Syn. FL when present.
void print_convergence_summary(std::ostream& os,
                               const std::vector<fl::RunResult>& results);

/// The default method set of Fig. 5 / Fig. 7.
const std::vector<std::string>& paper_methods();

}  // namespace helios::bench
