// Extension experiments beyond the paper's evaluation section:
//  1. FedProx (variable local work) vs Helios (variable model volume) — two
//     philosophies of straggler tolerance at the same pace target;
//  2. top-k update compression: accuracy vs communication volume;
//  3. Helios on MobileNet-lite (depthwise + GroupNorm — no federated
//     statistics at all), showing the framework is architecture-agnostic;
//  4. Non-IID strength sweep (Dirichlet beta) for Helios vs Syn. FL.
#include <iostream>

#include "bench_common.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "fl/compression.h"
#include "fl/fedprox.h"
#include "fl/sync.h"

namespace {

using namespace helios;

void comm_table(std::ostream& os, const std::vector<fl::RunResult>& results) {
  util::Table t({"method", "final acc (%)", "virtual time (s)",
                 "total upload (MB)"});
  for (const auto& r : results) {
    t.add_row({r.method, util::Table::num(r.final_accuracy() * 100.0, 2),
               util::Table::num(
                   r.rounds.empty() ? 0.0 : r.rounds.back().virtual_time, 3),
               util::Table::num(r.total_upload_mb(), 2)});
  }
  t.print(os);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::scale_from_env();
  const bench::TaskSpec task = bench::lenet_task(scale);

  // 1. FedProx vs Helios vs Syn. FL.
  {
    const bench::FleetSetup setup{4, 2, false, 7};
    std::vector<fl::RunResult> results;
    {
      fl::Fleet fleet = bench::build_fleet(task, setup);
      results.push_back(fl::SyncFL().run(fleet, task.cycles));
    }
    {
      fl::Fleet fleet = bench::build_fleet(task, setup);
      results.push_back(fl::FedProx(0.01F).run(fleet, task.cycles));
    }
    {
      fl::Fleet fleet = bench::build_fleet(task, setup);
      results.push_back(core::HeliosStrategy().run(fleet, task.cycles));
    }
    bench::print_accuracy_series(
        std::cout,
        "Extension 1: straggler tolerance — shrink the work (FedProx) vs "
        "shrink the model (Helios)",
        results);
    comm_table(std::cout, results);
  }

  // 2. Compression sweep (capable-only fleet isolates the comm effect).
  {
    const bench::FleetSetup setup{4, 0, false, 7};
    std::vector<fl::RunResult> results;
    for (double keep : {1.0, 0.25, 0.1, 0.02}) {
      fl::Fleet fleet = bench::build_fleet(task, setup);
      results.push_back(
          fl::CompressedSyncFL(keep).run(fleet, task.cycles));
    }
    util::print_banner(std::cout,
                       "Extension 2: top-k update compression "
                       "(accuracy vs communication)");
    comm_table(std::cout, results);
  }

  // 3. Helios on MobileNet-lite (GroupNorm, depthwise-separable).
  {
    bench::TaskSpec mobile = task;
    mobile.name = "MobileNet-lite/MNIST-syn";
    mobile.model = models::mobilenet_lite_spec({1, 28, 28, 10}, 8);
    mobile.lr = 0.15F;
    const bench::FleetSetup setup{4, 2, false, 7};
    std::vector<fl::RunResult> results;
    {
      fl::Fleet fleet = bench::build_fleet(mobile, setup);
      results.push_back(fl::SyncFL().run(fleet, mobile.cycles));
    }
    {
      fl::Fleet fleet = bench::build_fleet(mobile, setup);
      results.push_back(core::HeliosStrategy().run(fleet, mobile.cycles));
    }
    bench::print_accuracy_series(
        std::cout,
        "Extension 3: architecture generality — Helios on " + mobile.name,
        results);
  }

  // 4. Dirichlet label-skew sweep.
  {
    util::print_banner(std::cout,
                       "Extension 4: Non-IID strength sweep (Dirichlet beta)");
    util::Table t({"beta", "Syn. FL acc (%)", "Helios acc (%)",
                   "Helios speedup (vtime)"});
    for (double beta : {100.0, 1.0, 0.2}) {
      // Build fleets manually with a Dirichlet partition.
      auto build = [&](std::uint64_t seed) {
        data::SyntheticSpec spec = task.data;
        spec.samples = task.samples_per_client * 4;
        util::Rng rng(seed);
        data::Dataset train = data::make_synthetic(spec, rng);
        spec.samples = task.test_samples;
        data::Dataset test = data::make_synthetic(spec, rng);
        fl::Fleet fleet(task.model, std::move(test), seed);
        util::Rng prng(seed + 1);
        const auto parts = data::partition_dirichlet(
            train.labels, 4, spec.classes, beta, prng);
        const device::ResourceProfile profiles[4] = {
            device::sim_scaled(device::edge_server()),
            device::sim_scaled(device::jetson_nano_gpu()),
            device::sim_scaled(device::deeplens_gpu()),
            device::sim_scaled(device::deeplens_cpu())};
        for (int i = 0; i < 4; ++i) {
          fl::ClientConfig cfg;
          cfg.seed = seed + static_cast<std::uint64_t>(i) * 131;
          cfg.lr = task.lr;
          cfg.batch_size = task.batch;
          fleet.add_client(
              data::subset(train, parts[static_cast<std::size_t>(i)]), cfg,
              profiles[i]);
        }
        const auto report =
            core::StragglerIdentifier::resource_based(fleet, 2.0);
        core::StragglerIdentifier::apply(fleet, report);
        core::TargetDeterminer::assign_profiled(fleet, report);
        return fleet;
      };
      fl::Fleet sync_fleet = build(7);
      fl::Fleet helios_fleet = build(7);
      const fl::RunResult sync = fl::SyncFL().run(sync_fleet, task.cycles);
      const fl::RunResult helios =
          core::HeliosStrategy().run(helios_fleet, task.cycles);
      t.add_row({util::Table::num(beta, 1),
                 util::Table::num(sync.final_accuracy() * 100.0, 2),
                 util::Table::num(helios.final_accuracy() * 100.0, 2),
                 util::Table::num(sync.rounds.back().virtual_time /
                                      helios.rounds.back().virtual_time,
                                  2) + "x"});
    }
    t.print(std::cout);
  }
  return 0;
}
