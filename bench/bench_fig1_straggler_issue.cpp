// Reproduces Fig. 1: the straggler issue in synchronous FL. The round time
// of synchronous aggregation is the maximum per-device cycle time, so one
// weak device stretches every cycle and idles the capable devices.
//
// Part 1 quantifies this analytically at paper scale (Table I profiles);
// part 2 measures it on the simulated lite fleet by actually running two
// SyncFL cycles with and without the straggler.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "device/cost_model.h"
#include "fl/sync.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();

  util::print_banner(std::cout,
                     "Fig. 1: The Straggler Issue in Original FL");

  // Part 1 — paper-scale analytic: Nano(GPU) + Raspberry collaborate; the
  // DeepLens(CPU) straggler joins and dictates the synchronous round.
  {
    std::vector<device::ResourceProfile> fleet{
        device::jetson_nano_gpu(), device::raspberry_pi(),
        device::deeplens_cpu()};
    std::vector<double> minutes;
    for (const auto& p : fleet) {
      minutes.push_back(device::total_cycle_seconds(
                            p, device::paper_alexnet_cycle_workload(
                                   p.memory_mb)) /
                        60.0);
    }
    util::Table table({"device", "cycle (Mins)", "idle waiting (%)"});
    const double round_with = *std::max_element(minutes.begin(), minutes.end());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      table.add_row({fleet[i].name, util::Table::num(minutes[i], 1),
                     util::Table::num(100.0 * (1.0 - minutes[i] / round_with),
                                      1)});
    }
    table.print(std::cout);
    const double round_without = std::max(minutes[0], minutes[1]);
    std::cout << "\nSync round with straggler:    "
              << util::Table::num(round_with, 1) << " min\n"
              << "Sync round without straggler: "
              << util::Table::num(round_without, 1) << " min\n"
              << "Cycle inflation:              "
              << util::Table::num(round_with / round_without, 2)
              << "x (paper Fig. 1: 2.3 h -> 7.7 h, 3.3x)\n";
  }

  // Part 2 — simulated lite fleet, measured by running SyncFL.
  {
    const bench::TaskSpec task = bench::lenet_task(scale);
    bench::FleetSetup with{4, 2, false, 7};
    bench::FleetSetup without{2, 0, false, 7};
    fl::Fleet f1 = bench::build_fleet(task, with);
    fl::Fleet f2 = bench::build_fleet(task, without);
    const auto r1 = fl::SyncFL().run(f1, 2);
    const auto r2 = fl::SyncFL().run(f2, 2);
    const double t1 = r1.rounds[0].virtual_time;
    const double t2 = r2.rounds[0].virtual_time;
    std::cout << "\nSimulated lite fleet (" << task.name << "):\n"
              << "  sync round with stragglers:    " << util::Table::num(t1, 4)
              << " s\n"
              << "  sync round capable-only fleet: " << util::Table::num(t2, 4)
              << " s\n"
              << "  cycle inflation:               "
              << util::Table::num(t1 / t2, 2) << "x\n";
  }
  return 0;
}
