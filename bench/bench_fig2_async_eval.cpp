// Reproduces Fig. 2: asynchronous FL performance evaluation. Two
// collaborating devices (one capable, one straggler) on a Non-IID split
// under three settings: synchronous aggregation, and asynchronous
// aggregation with the straggler merged every 2 or every 3 cycles.
//
// Expected shape (paper Sec. II-B): synchronous FL reaches the best
// accuracy; the longer the asynchronous merge period, the worse the
// converged accuracy and speed.
#include <iostream>

#include "bench_common.h"
#include "fl/async.h"
#include "fl/sync.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();
  bench::TaskSpec task = bench::lenet_task(scale);
  task.cycles = std::max(10, task.cycles);

  const bench::FleetSetup setup{2, 1, /*non_iid=*/true, 7};

  std::vector<fl::RunResult> results;
  {
    fl::Fleet fleet = bench::build_fleet(task, setup);
    results.push_back(fl::SyncFL().run(fleet, task.cycles));
    results.back().method = "Setting 1 (Syn.)";
  }
  {
    fl::Fleet fleet = bench::build_fleet(task, setup);
    results.push_back(fl::AsyncFL(2).run(fleet, task.cycles));
    results.back().method = "Setting 2 (Asyn. 2)";
  }
  {
    fl::Fleet fleet = bench::build_fleet(task, setup);
    results.push_back(fl::AsyncFL(3).run(fleet, task.cycles));
    results.back().method = "Setting 3 (Asyn. 3)";
  }

  bench::print_accuracy_series(
      std::cout,
      "Fig. 2: Asynchronous FL Performance Evaluation (" + task.name +
          ", 2 devices, Non-IID)",
      results);
  bench::print_convergence_summary(std::cout, results);
  return 0;
}
