// Reproduces Fig. 5: soft-training effectiveness evaluation — converged
// accuracy and speed of Helios against Syn. FL / Asyn. FL / Random / AFO on
// LeNet/MNIST-syn, AlexNet-lite/CIFAR10-syn, ResNet18-lite/CIFAR100-syn,
// each under the paper's two straggler settings (4 devices with 2
// stragglers; 6 devices with 3 stragglers).
//
// Expected shape: Asyn. FL lowest accuracy (information degradation),
// Syn. FL slowest in virtual time, Helios best accuracy at the fastest
// synchronous pace (paper: up to 4.64% accuracy gain, 2.5x speedup).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();

  const std::vector<bench::TaskSpec> tasks{
      bench::lenet_task(scale), bench::alexnet_task(scale),
      bench::resnet_task(scale)};
  const std::vector<bench::FleetSetup> setups{
      {4, 2, false, 7},   // 2 capable + Strag.1, Strag.2
      {6, 3, false, 11},  // 3 capable + Strag.1-3
  };

  for (const auto& task : tasks) {
    for (const auto& setup : setups) {
      const auto results = bench::run_methods(task, setup,
                                              bench::paper_methods(),
                                              std::cerr);
      bench::print_accuracy_series(
          std::cout,
          "Fig. 5: Soft-training Effectiveness — " + task.name + ", " +
              std::to_string(setup.devices) + " devices (" +
              std::to_string(setup.stragglers) + " stragglers)",
          results);
      bench::print_convergence_summary(std::cout, results);
    }
  }
  return 0;
}
