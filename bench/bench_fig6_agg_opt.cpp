// Reproduces Fig. 6: model aggregation optimization evaluation. Helios
// (soft-training + heterogeneity-weighted aggregation, Eq. 10) against
// "S.T. Only" (soft-training with plain FedAvg aggregation) as the number
// of stragglers grows from 1 to 4 on a 6-device fleet.
//
// Expected shape: the aggregation optimization lifts accuracy and reduces
// the cycle-to-cycle accuracy fluctuation caused by partial-model
// aggregation, increasingly so with more stragglers (paper: up to 17.37%).
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();
  const bench::TaskSpec task = bench::alexnet_task(scale);
  const std::vector<std::string> methods{"Helios", "S.T. Only"};

  util::Table summary({"stragglers", "Helios acc (%)", "S.T. Only acc (%)",
                       "improvement (%)", "Helios acc stddev",
                       "S.T. Only acc stddev"});
  for (int stragglers = 1; stragglers <= 4; ++stragglers) {
    const bench::FleetSetup setup{6, stragglers, false, 7};
    const auto results =
        bench::run_methods(task, setup, methods, std::cerr);
    bench::print_accuracy_series(
        std::cout,
        "Fig. 6: Aggregation Optimization — " + task.name + ", " +
            std::to_string(stragglers) + " straggler(s)",
        results);
    const double helios_acc = results[0].final_accuracy();
    const double st_acc = results[1].final_accuracy();
    summary.add_row(
        {std::to_string(stragglers),
         util::Table::num(helios_acc * 100.0, 2),
         util::Table::num(st_acc * 100.0, 2),
         util::Table::num((helios_acc - st_acc) * 100.0, 2),
         util::Table::num(std::sqrt(results[0].accuracy_variance(8)) * 100.0, 2),
         util::Table::num(std::sqrt(results[1].accuracy_variance(8)) * 100.0, 2)});
  }
  util::print_banner(std::cout, "Fig. 6 summary: Helios vs S.T. Only");
  summary.print(std::cout);
  return 0;
}
