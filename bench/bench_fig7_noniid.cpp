// Reproduces Fig. 7: Helios evaluation with Non-IID data. The shard-based
// label split of Zhao et al. [1] (2 shards per client) concentrates each
// class on few clients, so stragglers carry unique information and methods
// that stale or drop them (Asyn. FL, AFO) degrade hardest.
//
// Expected shape: every method loses accuracy relative to the IID runs of
// Fig. 5, but Helios retains the best converged accuracy and speed.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();

  struct Config {
    bench::TaskSpec task;
    bench::FleetSetup setup;
  };
  std::vector<Config> configs{
      {bench::lenet_task(scale), {4, 2, true, 7}},
      {bench::lenet_task(scale), {6, 3, true, 11}},
      {bench::alexnet_task(scale), {4, 2, true, 7}},
  };
  // Under label skew the shrunk submodels need more cycles to absorb the
  // stragglers' unique classes; they run at a fraction of Syn. FL's
  // per-cycle time, so the x-axis is extended rather than the clock.
  for (auto& c : configs) c.task.cycles *= 2;

  for (const auto& [task, setup] : configs) {
    const auto results =
        bench::run_methods(task, setup, bench::paper_methods(), std::cerr);
    bench::print_accuracy_series(
        std::cout,
        "Fig. 7: Non-IID Evaluation — " + task.name + ", " +
            std::to_string(setup.devices) + " devices (" +
            std::to_string(setup.stragglers) + " stragglers), shard split",
        results);
    bench::print_convergence_summary(std::cout, results);
  }
  return 0;
}
