// Micro-kernel benchmarks (google-benchmark):
//  * the Sec. V footnote claim — the per-cycle top-K contribution sort is
//    negligible next to a training step (paper: ~18 ms vs ~12 min);
//  * masked vs dense matmul (soft-training's compute saving);
//  * conv forward, per-neuron aggregation, and cost-model evaluation.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/soft_training.h"
#include "data/loader.h"
#include "device/cost_model.h"
#include "fl/server.h"
#include "fl/submodel.h"
#include "nn/conv2d.h"
#include "nn/sgd.h"
#include "tensor/ops.h"

namespace {

using namespace helios;

void BM_MatmulDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::matmul_masked_rows_into(a, b, {}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulDense)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulMaskedHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) mask[static_cast<std::size_t>(i)] = i % 2;
  for (auto _ : state) {
    tensor::matmul_masked_rows_into(a, b, mask, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);  // half the MACs
}
BENCHMARK(BM_MatmulMaskedHalf)->Arg(128)->Arg(256);

void BM_LeNetTrainStep(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 3);
  nn::Sgd opt(0.05F);
  util::Rng rng(4);
  tensor::Tensor x = tensor::Tensor::randn({16, 1, 28, 28}, rng);
  std::vector<int> labels(16);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_int(10));
  for (auto _ : state) {
    const auto r = nn::train_step(model, opt, x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
}
BENCHMARK(BM_LeNetTrainStep);

// The Sec. V footnote: per-cycle soft-training selection (contribution
// update + per-layer top-K sort + random fill) vs the training cost above.
void BM_SoftTrainingSelection(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 5);
  core::SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.3;
  core::SoftTrainer trainer(model, cfg);
  auto before = model.params_flat();
  auto after = before;
  util::Rng rng(6);
  for (float& v : after) v += static_cast<float>(rng.normal()) * 0.01F;
  for (auto _ : state) {
    trainer.update_contributions(before, after, {});
    auto mask = trainer.select_mask();
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SoftTrainingSelection);

void BM_ServerAggregate4Clients(benchmark::State& state) {
  fl::Server server(models::make_lenet({1, 28, 28, 10}, 7));
  util::Rng rng(8);
  std::vector<fl::ClientUpdate> updates(4);
  for (int i = 0; i < 4; ++i) {
    updates[static_cast<std::size_t>(i)].client_id = i;
    updates[static_cast<std::size_t>(i)].sample_count = 128;
    updates[static_cast<std::size_t>(i)].params.resize(server.param_count());
    for (float& v : updates[static_cast<std::size_t>(i)].params) {
      v = static_cast<float>(rng.normal());
    }
    if (i >= 2) {
      updates[static_cast<std::size_t>(i)].trained_mask =
          fl::random_volume_mask(server.reference_model(), 0.3, rng);
    }
  }
  fl::AggOptions opts;
  opts.hetero_volume_weights = true;
  for (auto _ : state) {
    server.aggregate(updates, opts);
    benchmark::DoNotOptimize(server.global().data());
  }
}
BENCHMARK(BM_ServerAggregate4Clients);

void BM_CostModelEvaluation(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 9);
  const auto profile = device::sim_scaled(device::deeplens_cpu());
  for (auto _ : state) {
    const auto w = device::estimate_workload(model, 128, 1);
    benchmark::DoNotOptimize(device::total_cycle_seconds(profile, w));
  }
}
BENCHMARK(BM_CostModelEvaluation);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(10);
  nn::Conv2d conv(3, 32, 32, 8, 3, 1, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({8, 3, 32, 32}, rng);
  for (auto _ : state) {
    tensor::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_SyntheticGeneration(benchmark::State& state) {
  data::SyntheticSpec spec = data::mnist_like_spec(256);
  for (auto _ : state) {
    util::Rng rng(11);
    data::Dataset d = data::make_synthetic(spec, rng);
    benchmark::DoNotOptimize(d.images.data());
  }
}
BENCHMARK(BM_SyntheticGeneration);

}  // namespace

BENCHMARK_MAIN();
