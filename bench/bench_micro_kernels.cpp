// Micro-kernel benchmarks (google-benchmark):
//  * the Sec. V footnote claim — the per-cycle top-K contribution sort is
//    negligible next to a training step (paper: ~18 ms vs ~12 min);
//  * masked vs dense matmul (soft-training's compute saving);
//  * conv forward, per-neuron aggregation, and cost-model evaluation;
//  * thread-scaling variants of the parallelized kernels, plus a
//    machine-readable 1/2/4-thread sweep written to BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "util/atomic_file.h"
#include "core/soft_training.h"
#include "data/loader.h"
#include "device/cost_model.h"
#include "fl/server.h"
#include "fl/submodel.h"
#include "fl/sync.h"
#include "nn/conv2d.h"
#include "nn/sgd.h"
#include "obs/procstat.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace {

using namespace helios;

void BM_MatmulDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::matmul_masked_rows_into(a, b, {}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatmulDense)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulMaskedHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(2);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) mask[static_cast<std::size_t>(i)] = i % 2;
  for (auto _ : state) {
    tensor::matmul_masked_rows_into(a, b, mask, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);  // half the MACs
}
BENCHMARK(BM_MatmulMaskedHalf)->Arg(128)->Arg(256);

void BM_LeNetTrainStep(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 3);
  nn::Sgd opt(0.05F);
  util::Rng rng(4);
  tensor::Tensor x = tensor::Tensor::randn({16, 1, 28, 28}, rng);
  std::vector<int> labels(16);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_int(10));
  for (auto _ : state) {
    const auto r = nn::train_step(model, opt, x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
}
BENCHMARK(BM_LeNetTrainStep);

// The Sec. V footnote: per-cycle soft-training selection (contribution
// update + per-layer top-K sort + random fill) vs the training cost above.
void BM_SoftTrainingSelection(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 5);
  core::SoftTrainerConfig cfg;
  cfg.keep_ratio = 0.3;
  core::SoftTrainer trainer(model, cfg);
  auto before = model.params_flat();
  auto after = before;
  util::Rng rng(6);
  for (float& v : after) v += static_cast<float>(rng.normal()) * 0.01F;
  for (auto _ : state) {
    trainer.update_contributions(before, after, {});
    auto mask = trainer.select_mask();
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_SoftTrainingSelection);

void BM_ServerAggregate4Clients(benchmark::State& state) {
  fl::Server server(models::make_lenet({1, 28, 28, 10}, 7));
  util::Rng rng(8);
  std::vector<fl::ClientUpdate> updates(4);
  for (int i = 0; i < 4; ++i) {
    updates[static_cast<std::size_t>(i)].client_id = i;
    updates[static_cast<std::size_t>(i)].sample_count = 128;
    updates[static_cast<std::size_t>(i)].params.resize(server.param_count());
    for (float& v : updates[static_cast<std::size_t>(i)].params) {
      v = static_cast<float>(rng.normal());
    }
    if (i >= 2) {
      updates[static_cast<std::size_t>(i)].trained_mask =
          fl::random_volume_mask(server.reference_model(), 0.3, rng);
    }
  }
  fl::AggOptions opts;
  opts.hetero_volume_weights = true;
  for (auto _ : state) {
    server.aggregate(updates, opts);
    benchmark::DoNotOptimize(server.global().data());
  }
}
BENCHMARK(BM_ServerAggregate4Clients);

void BM_CostModelEvaluation(benchmark::State& state) {
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 9);
  const auto profile = device::sim_scaled(device::deeplens_cpu());
  for (auto _ : state) {
    const auto w = device::estimate_workload(model, 128, 1);
    benchmark::DoNotOptimize(device::total_cycle_seconds(profile, w));
  }
}
BENCHMARK(BM_CostModelEvaluation);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(10);
  nn::Conv2d conv(3, 32, 32, 8, 3, 1, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({8, 3, 32, 32}, rng);
  for (auto _ : state) {
    tensor::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_SyntheticGeneration(benchmark::State& state) {
  data::SyntheticSpec spec = data::mnist_like_spec(256);
  for (auto _ : state) {
    util::Rng rng(11);
    data::Dataset d = data::make_synthetic(spec, rng);
    benchmark::DoNotOptimize(d.images.data());
  }
}
BENCHMARK(BM_SyntheticGeneration);

// ---------------------------------------------------------------------------
// Thread-scaling variants: the same kernels with the global pool resized per
// run (Arg = thread count). Results are bit-identical across counts — only
// the wall clock moves.
// ---------------------------------------------------------------------------

void BM_MatmulDenseThreads(benchmark::State& state) {
  util::set_global_threads(static_cast<int>(state.range(0)));
  const int n = 256;
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    tensor::matmul_masked_rows_into(a, b, {}, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
  util::set_global_threads(0);
}
BENCHMARK(BM_MatmulDenseThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2dForwardThreads(benchmark::State& state) {
  util::set_global_threads(static_cast<int>(state.range(0)));
  util::Rng rng(10);
  nn::Conv2d conv(3, 32, 32, 16, 3, 1, 1, rng);
  tensor::Tensor x = tensor::Tensor::randn({16, 3, 32, 32}, rng);
  for (auto _ : state) {
    tensor::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  util::set_global_threads(0);
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_LeNetTrainStepThreads(benchmark::State& state) {
  util::set_global_threads(static_cast<int>(state.range(0)));
  nn::Model model = models::make_lenet({1, 28, 28, 10}, 3);
  nn::Sgd opt(0.05F);
  util::Rng rng(4);
  tensor::Tensor x = tensor::Tensor::randn({16, 1, 28, 28}, rng);
  std::vector<int> labels(16);
  for (auto& y : labels) y = static_cast<int>(rng.uniform_int(10));
  for (auto _ : state) {
    const auto r = nn::train_step(model, opt, x, labels);
    benchmark::DoNotOptimize(r.loss);
  }
  util::set_global_threads(0);
}
BENCHMARK(BM_LeNetTrainStepThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// BENCH_parallel.json: a hand-timed 1/2/4-thread sweep over the
// parallelized layers, from single kernels up to a full 6-device
// AlexNet-lite SyncFL cycle (the ISSUE's fleet-speedup target). Written
// after the google-benchmark run so CI can diff scaling machine-readably.
// ---------------------------------------------------------------------------

double time_best_seconds(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

struct SweepCase {
  std::string name;
  // seconds[i] is the best-of-reps wall time at kThreadCounts[i].
  std::vector<double> seconds;
};

constexpr int kThreadCounts[] = {1, 2, 4};

void write_parallel_scaling_json() {
  const bench::Scale scale = bench::scale_from_env();
  const int reps = scale.name == "quick" ? 2 : 3;
  std::vector<SweepCase> cases;

  {  // Dense 256^3 matmul.
    util::Rng rng(1);
    tensor::Tensor a = tensor::Tensor::randn({256, 256}, rng);
    tensor::Tensor b = tensor::Tensor::randn({256, 256}, rng);
    tensor::Tensor c({256, 256});
    SweepCase sc{"matmul_256", {}};
    for (int t : kThreadCounts) {
      util::set_global_threads(t);
      sc.seconds.push_back(time_best_seconds(reps, [&] {
        for (int i = 0; i < 8; ++i) {
          tensor::matmul_masked_rows_into(a, b, {}, c);
        }
        benchmark::DoNotOptimize(c.data());
      }));
    }
    cases.push_back(std::move(sc));
  }

  {  // Conv2d forward, AlexNet-lite-like shape.
    util::Rng rng(10);
    nn::Conv2d conv(3, 32, 32, 16, 3, 1, 1, rng);
    tensor::Tensor x = tensor::Tensor::randn({16, 3, 32, 32}, rng);
    SweepCase sc{"conv2d_forward", {}};
    for (int t : kThreadCounts) {
      util::set_global_threads(t);
      sc.seconds.push_back(time_best_seconds(reps, [&] {
        for (int i = 0; i < 8; ++i) {
          tensor::Tensor y = conv.forward(x, false);
          benchmark::DoNotOptimize(y.data());
        }
      }));
    }
    cases.push_back(std::move(sc));
  }

  {  // Full LeNet train step (forward + backward + SGD).
    nn::Model model = models::make_lenet({1, 28, 28, 10}, 3);
    nn::Sgd opt(0.05F);
    util::Rng rng(4);
    tensor::Tensor x = tensor::Tensor::randn({16, 1, 28, 28}, rng);
    std::vector<int> labels(16);
    for (auto& y : labels) y = static_cast<int>(rng.uniform_int(10));
    SweepCase sc{"lenet_train_step", {}};
    for (int t : kThreadCounts) {
      util::set_global_threads(t);
      sc.seconds.push_back(time_best_seconds(reps, [&] {
        for (int i = 0; i < 4; ++i) {
          benchmark::DoNotOptimize(nn::train_step(model, opt, x, labels).loss);
        }
      }));
    }
    cases.push_back(std::move(sc));
  }

  {  // One SyncFL cycle on the 6-device AlexNet-lite fleet: round-level
     // fan-out is the dominant lever here. A fresh fleet per measurement
     // keeps the timed work identical; accuracies must agree bit-for-bit.
    const bench::TaskSpec task = bench::alexnet_task(scale);
    bench::FleetSetup setup;
    setup.devices = 6;
    setup.stragglers = 3;
    SweepCase sc{"fleet_round_alexnet6", {}};
    double reference_accuracy = -1.0;
    bool identical = true;
    for (int t : kThreadCounts) {
      util::set_global_threads(t);
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        fl::Fleet fleet = bench::build_fleet(task, setup);
        fl::SyncFL strategy;
        const auto t0 = std::chrono::steady_clock::now();
        const fl::RunResult result = strategy.run(fleet, 1);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count());
        const double acc = result.rounds.back().test_accuracy;
        if (reference_accuracy < 0.0) reference_accuracy = acc;
        identical = identical && acc == reference_accuracy;
      }
      sc.seconds.push_back(best);
    }
    if (!identical) {
      std::cerr << "WARNING: fleet_round_alexnet6 accuracy differed across "
                   "thread counts (determinism contract violated)\n";
    }
    cases.push_back(std::move(sc));
  }
  util::set_global_threads(0);

  std::ostringstream os;  // buffered; replaced atomically below
  os << "{\n  \"schema\": 1,\n  \"scale\": \"" << scale.name << "\",\n"
     << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SweepCase& sc = cases[i];
    os << "    {\"name\": \"" << sc.name << "\", \"runs\": [";
    for (std::size_t j = 0; j < sc.seconds.size(); ++j) {
      os << (j ? ", " : "") << "{\"threads\": " << kThreadCounts[j]
         << ", \"seconds\": " << sc.seconds[j] << "}";
    }
    os << "], \"speedup_4_vs_1\": "
       << (sc.seconds.back() > 0.0 ? sc.seconds.front() / sc.seconds.back()
                                   : 0.0)
       << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  const obs::ProcMemory mem = obs::read_proc_memory();
  os << "  ],\n  \"rss_mb\": " << mem.rss_mb
     << ",\n  \"peak_rss_mb\": " << mem.peak_rss_mb << "\n}\n";
  util::atomic_write_file("BENCH_parallel.json", os.str());
  std::cout << "wrote BENCH_parallel.json (" << cases.size() << " cases)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  try {
    write_parallel_scaling_json();
  } catch (const std::exception& e) {
    std::cerr << "BENCH_parallel.json sweep failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
