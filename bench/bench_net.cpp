// Network-simulation benchmark: what do faulty channels cost each strategy?
//
// Two sections, both written machine-readably to BENCH_net.json (schema 2)
// so CI can diff the wire overhead and the graceful-degradation accuracy
// cost via bench_compare:
//
//  * `strategies`: for every strategy, one ideal-channel baseline run plus
//    one simulated run per loss rate (0 / 1 / 5%), all on identical
//    fleets. Reported per run: bytes actually on the wire (retransmits
//    included), host wall-clock, virtual round time, and the
//    final-accuracy delta against the ideal baseline.
//
//  * `quantization`: the wire-codec sweep — Helios and Syn. FL on a
//    sampled mobile-longtail population (C = 0.1) with the payload codec
//    at fp32 / fp16 / int8 per-neuron (error feedback on) across the same
//    loss rates. Each quantized run reports its measured wire-byte
//    reduction and final-accuracy delta against the fp32 run at the same
//    loss rate; bench_compare holds the int8pn reduction to the >= 4x
//    acceptance floor.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "codec/codec.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "fl/transport.h"
#include "obs/procstat.h"
#include "obs/telemetry.h"
#include "sim/population.h"
#include "sim/sampler.h"
#include "util/atomic_file.h"

namespace {

using namespace helios;

struct RunStats {
  double accuracy = 0.0;
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;
  double wire_mb = 0.0;
  double frames_sent = 0.0;
  double frames_lost = 0.0;
  double drops = 0.0;
  double deadline_misses = 0.0;
  double deaths = 0.0;
};

/// Sums a per-device labeled counter over the fleet's device ids.
double sum_device_counter(obs::TelemetrySink& tel, const char* name,
                          int devices) {
  double total = 0.0;
  for (int d = 0; d < devices; ++d) {
    total += tel.metrics()
                 .counter(name, {{"device", std::to_string(d)}})
                 .value();
  }
  return total;
}

RunStats run_once(const bench::TaskSpec& task, const bench::FleetSetup& setup,
                  const std::string& method, const net::NetworkOptions& opts) {
  fl::Fleet fleet = bench::build_fleet(task, setup);
  obs::TelemetryConfig tcfg;
  tcfg.tracing = false;
  obs::TelemetrySink telemetry(tcfg);
  fleet.set_telemetry(&telemetry);
  fl::NetworkSession session(fleet, opts);

  auto strategy = bench::make_strategy(method);
  const auto t0 = std::chrono::steady_clock::now();
  const fl::RunResult result = strategy->run(fleet, task.cycles);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  RunStats s;
  s.accuracy = result.final_accuracy();
  s.virtual_seconds =
      result.rounds.empty() ? 0.0 : result.rounds.back().virtual_time;
  s.wall_seconds = wall.count();
  s.wire_mb = sum_device_counter(telemetry, "helios.net.bytes_on_wire_total",
                                 setup.devices) /
              1e6;
  s.frames_sent = sum_device_counter(
      telemetry, "helios.net.frames_sent_total", setup.devices);
  s.frames_lost = sum_device_counter(
      telemetry, "helios.net.frames_lost_total", setup.devices);
  s.drops =
      sum_device_counter(telemetry, "helios.net.drops_total", setup.devices);
  s.deadline_misses =
      telemetry.metrics().counter("helios.net.deadline_missed_total").value();
  s.deaths = sum_device_counter(
      telemetry, "helios.net.device_deaths_total", setup.devices);
  return s;
}

void write_stats(std::ostream& os, const RunStats& s) {
  os << "{\"accuracy\": " << s.accuracy
     << ", \"virtual_seconds\": " << s.virtual_seconds
     << ", \"wall_seconds\": " << s.wall_seconds
     << ", \"wire_mb\": " << s.wire_mb
     << ", \"frames_sent\": " << s.frames_sent
     << ", \"frames_lost\": " << s.frames_lost
     << ", \"drops\": " << s.drops
     << ", \"deadline_misses\": " << s.deadline_misses
     << ", \"deaths\": " << s.deaths << "}";
}

// --- Quantization sweep -----------------------------------------------

struct QuantStats {
  double accuracy = 0.0;
  double wall_seconds = 0.0;
  double wire_mb = 0.0;       // everything on the wire, retransmits included
  double frames_sent = 0.0;
  double frames_lost = 0.0;
  double codec_raw_mb = 0.0;   // fp32-dense cost of the encoded payloads
  double codec_wire_mb = 0.0;  // what the codec actually emitted
};

/// One run of the codec sweep: a sampled mobile-longtail fleet (the
/// acceptance population) through a simulated channel with the given
/// payload codec. Error feedback stays on — it is part of the quantized
/// path being measured, and a no-op at fp32.
QuantStats run_quant_once(const std::string& method, codec::CodecId codec,
                          double loss, int devices, int cycles) {
  const sim::PopulationGenerator pop(sim::mobile_longtail(devices));
  fl::Fleet fleet = sim::build_fleet(pop);
  const core::StragglerReport report = core::StragglerIdentifier::time_based(
      fleet, std::max(1, devices / 4));
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report);

  sim::CohortSampler::Options sopts;
  sopts.fraction = 0.1;
  sopts.seed = 29;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  obs::TelemetryConfig tcfg;
  tcfg.tracing = false;
  obs::TelemetrySink telemetry(tcfg);
  fleet.set_telemetry(&telemetry);

  net::NetworkOptions opts;
  opts.mode = net::NetMode::kSimulated;
  opts.channel.loss_prob = loss;
  opts.channel.latency_s = 0.005;
  opts.channel.jitter_s = 0.002;
  opts.deadline_factor = 2.0;
  opts.seed = 97;
  opts.payload_codec = codec;
  opts.error_feedback = true;
  fl::NetworkSession session(fleet, opts);

  auto strategy = bench::make_strategy(method);
  const auto t0 = std::chrono::steady_clock::now();
  const fl::RunResult result = strategy->run(fleet, cycles);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  QuantStats s;
  s.accuracy = result.final_accuracy();
  s.wall_seconds = wall.count();
  s.wire_mb = sum_device_counter(telemetry, "helios.net.bytes_on_wire_total",
                                 devices) /
              1e6;
  s.frames_sent =
      sum_device_counter(telemetry, "helios.net.frames_sent_total", devices);
  s.frames_lost =
      sum_device_counter(telemetry, "helios.net.frames_lost_total", devices);
  s.codec_raw_mb =
      sum_device_counter(telemetry, "helios.codec.bytes_in_total", devices) /
      1e6;
  s.codec_wire_mb =
      sum_device_counter(telemetry, "helios.codec.bytes_out_total", devices) /
      1e6;
  fleet.set_sampler(nullptr);
  return s;
}

void write_quant_stats(std::ostream& os, const QuantStats& s) {
  os << "{\"accuracy\": " << s.accuracy
     << ", \"wall_seconds\": " << s.wall_seconds
     << ", \"wire_mb\": " << s.wire_mb
     << ", \"frames_sent\": " << s.frames_sent
     << ", \"frames_lost\": " << s.frames_lost
     << ", \"codec_raw_mb\": " << s.codec_raw_mb
     << ", \"codec_wire_mb\": " << s.codec_wire_mb << "}";
}

}  // namespace

int main() {
  const bench::Scale scale = bench::scale_from_env();
  const bench::TaskSpec task = bench::lenet_task(scale);
  const bench::FleetSetup setup{4, 2, false, 7};
  const std::vector<std::string> methods = {"Syn. FL", "Asyn. FL", "AFO",
                                            "Helios"};
  const std::vector<double> loss_rates = {0.0, 0.01, 0.05};

  util::Table table({"method", "channel", "final acc (%)", "wire (MB)",
                     "lost", "drops", "wall (s)"});
  std::ostringstream json;  // buffered; replaced atomically below
  json << "{\n  \"schema\": 2,\n  \"scale\": \"" << scale.name
       << "\",\n  \"cycles\": " << task.cycles << ",\n  \"strategies\": [\n";

  for (std::size_t m = 0; m < methods.size(); ++m) {
    const std::string& method = methods[m];
    // Ideal baseline: frames are encoded and counted but delivery is
    // perfect and timing stays analytic.
    const RunStats ideal = run_once(task, setup, method, net::NetworkOptions{});
    table.add_row({method, "ideal",
                   util::Table::num(ideal.accuracy * 100.0, 2),
                   util::Table::num(ideal.wire_mb, 3), "0", "0",
                   util::Table::num(ideal.wall_seconds, 2)});
    json << "    {\"name\": \"" << method << "\", \"ideal\": ";
    write_stats(json, ideal);
    json << ", \"lossy\": [\n";

    for (std::size_t l = 0; l < loss_rates.size(); ++l) {
      net::NetworkOptions opts;
      opts.mode = net::NetMode::kSimulated;
      opts.channel.loss_prob = loss_rates[l];
      opts.channel.latency_s = 0.005;
      opts.channel.jitter_s = 0.002;
      opts.deadline_factor = 2.0;
      // The default protocol seed's four forked streams happen to draw no
      // loss event in a short run; this one realizes ~p per rate at both
      // quick and default scale, so the retransmit path shows up in the
      // report.
      opts.seed = 97;
      const RunStats lossy = run_once(task, setup, method, opts);
      table.add_row(
          {method, "loss " + util::Table::num(loss_rates[l] * 100.0, 0) + "%",
           util::Table::num(lossy.accuracy * 100.0, 2),
           util::Table::num(lossy.wire_mb, 3),
           util::Table::num(lossy.frames_lost, 0),
           util::Table::num(lossy.drops, 0),
           util::Table::num(lossy.wall_seconds, 2)});
      json << "      {\"loss\": " << loss_rates[l] << ", \"stats\": ";
      write_stats(json, lossy);
      json << ", \"accuracy_delta_vs_ideal\": "
           << (lossy.accuracy - ideal.accuracy) << "}"
           << (l + 1 < loss_rates.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (m + 1 < methods.size() ? "," : "") << "\n";
  }

  // Quantization sweep on the acceptance population: mobile-longtail at
  // C = 0.1. The fp32 column is the per-loss baseline the quantized runs
  // are judged against — run first so the ratios can be computed inline.
  const int kQuantDevices = 40;
  const int kQuantCycles = 40;
  const std::vector<std::string> quant_methods = {"Syn. FL", "Helios"};
  const std::vector<codec::CodecId> codecs = {codec::CodecId::kFp32,
                                              codec::CodecId::kFp16,
                                              codec::CodecId::kInt8PerNeuron};
  util::Table quant_table({"method", "codec", "loss", "final acc (%)",
                           "wire (MB)", "reduction vs fp32",
                           "acc delta vs fp32"});
  json << "  ],\n  \"quantization\": {\"devices\": " << kQuantDevices
       << ", \"cohort_fraction\": 0.1, \"cycles\": " << kQuantCycles
       << ", \"methods\": [\n";
  for (std::size_t m = 0; m < quant_methods.size(); ++m) {
    const std::string& method = quant_methods[m];
    std::vector<QuantStats> fp32_runs;  // per loss rate, codec order fixed
    json << "    {\"name\": \"" << method << "\", \"codecs\": [\n";
    for (std::size_t c = 0; c < codecs.size(); ++c) {
      const codec::CodecId id = codecs[c];
      json << "      {\"name\": \"" << codec::codec_name(id)
           << "\", \"lossy\": [\n";
      for (std::size_t l = 0; l < loss_rates.size(); ++l) {
        const QuantStats s =
            run_quant_once(method, id, loss_rates[l], kQuantDevices,
                           kQuantCycles);
        if (id == codec::CodecId::kFp32) fp32_runs.push_back(s);
        json << "        {\"loss\": " << loss_rates[l] << ", \"stats\": ";
        write_quant_stats(json, s);
        std::string reduction = "--";
        std::string delta = "--";
        if (id != codec::CodecId::kFp32) {
          const QuantStats& base = fp32_runs[l];
          const double r = s.wire_mb > 0.0 ? base.wire_mb / s.wire_mb : 0.0;
          const double d = s.accuracy - base.accuracy;
          json << ", \"wire_reduction_vs_fp32\": " << r
               << ", \"accuracy_delta_vs_fp32\": " << d;
          reduction = util::Table::num(r, 2) + "x";
          delta = util::Table::num(d * 100.0, 2) + "%";
        }
        json << "}" << (l + 1 < loss_rates.size() ? "," : "") << "\n";
        quant_table.add_row(
            {method, codec::codec_name(id),
             util::Table::num(loss_rates[l] * 100.0, 0) + "%",
             util::Table::num(s.accuracy * 100.0, 2),
             util::Table::num(s.wire_mb, 3), reduction, delta});
      }
      json << "      ]}" << (c + 1 < codecs.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (m + 1 < quant_methods.size() ? "," : "") << "\n";
  }
  json << "  ]}";

  const obs::ProcMemory mem = obs::read_proc_memory();
  json << ",\n  \"rss_mb\": " << mem.rss_mb
       << ",\n  \"peak_rss_mb\": " << mem.peak_rss_mb << "\n}\n";
  util::atomic_write_file("BENCH_net.json", json.str());

  util::print_banner(std::cout,
                     "Network simulation: wire bytes, faults and accuracy "
                     "across loss rates (" + task.name + ")");
  table.print(std::cout);
  util::print_banner(std::cout,
                     "Wire codec sweep: mobile-longtail (40 devices, "
                     "C = 0.1), error feedback on");
  quant_table.print(std::cout);
  std::cout << "wrote BENCH_net.json (" << methods.size() << " strategies x "
            << loss_rates.size() << " loss rates + ideal baselines + "
            << quant_methods.size() << "x" << codecs.size()
            << " codec sweep)\n";
  return 0;
}
