// Network-simulation benchmark: what do faulty channels cost each strategy?
//
// For every strategy, one ideal-channel baseline run plus one simulated run
// per loss rate (0 / 1 / 5%), all on identical fleets. Reported per run:
// bytes actually on the wire (retransmits included), host wall-clock,
// virtual round time, and the final-accuracy delta against the ideal
// baseline. Written machine-readably to BENCH_net.json so CI can diff the
// wire overhead and the graceful-degradation accuracy cost.
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "util/atomic_file.h"
#include "fl/transport.h"
#include "obs/procstat.h"
#include "obs/telemetry.h"

namespace {

using namespace helios;

struct RunStats {
  double accuracy = 0.0;
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;
  double wire_mb = 0.0;
  double frames_sent = 0.0;
  double frames_lost = 0.0;
  double drops = 0.0;
  double deadline_misses = 0.0;
  double deaths = 0.0;
};

/// Sums a per-device labeled counter over the fleet's device ids.
double sum_device_counter(obs::TelemetrySink& tel, const char* name,
                          int devices) {
  double total = 0.0;
  for (int d = 0; d < devices; ++d) {
    total += tel.metrics()
                 .counter(name, {{"device", std::to_string(d)}})
                 .value();
  }
  return total;
}

RunStats run_once(const bench::TaskSpec& task, const bench::FleetSetup& setup,
                  const std::string& method, const net::NetworkOptions& opts) {
  fl::Fleet fleet = bench::build_fleet(task, setup);
  obs::TelemetryConfig tcfg;
  tcfg.tracing = false;
  obs::TelemetrySink telemetry(tcfg);
  fleet.set_telemetry(&telemetry);
  fl::NetworkSession session(fleet, opts);

  auto strategy = bench::make_strategy(method);
  const auto t0 = std::chrono::steady_clock::now();
  const fl::RunResult result = strategy->run(fleet, task.cycles);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  RunStats s;
  s.accuracy = result.final_accuracy();
  s.virtual_seconds =
      result.rounds.empty() ? 0.0 : result.rounds.back().virtual_time;
  s.wall_seconds = wall.count();
  s.wire_mb = sum_device_counter(telemetry, "helios.net.bytes_on_wire_total",
                                 setup.devices) /
              1e6;
  s.frames_sent = sum_device_counter(
      telemetry, "helios.net.frames_sent_total", setup.devices);
  s.frames_lost = sum_device_counter(
      telemetry, "helios.net.frames_lost_total", setup.devices);
  s.drops =
      sum_device_counter(telemetry, "helios.net.drops_total", setup.devices);
  s.deadline_misses =
      telemetry.metrics().counter("helios.net.deadline_missed_total").value();
  s.deaths = sum_device_counter(
      telemetry, "helios.net.device_deaths_total", setup.devices);
  return s;
}

void write_stats(std::ostream& os, const RunStats& s) {
  os << "{\"accuracy\": " << s.accuracy
     << ", \"virtual_seconds\": " << s.virtual_seconds
     << ", \"wall_seconds\": " << s.wall_seconds
     << ", \"wire_mb\": " << s.wire_mb
     << ", \"frames_sent\": " << s.frames_sent
     << ", \"frames_lost\": " << s.frames_lost
     << ", \"drops\": " << s.drops
     << ", \"deadline_misses\": " << s.deadline_misses
     << ", \"deaths\": " << s.deaths << "}";
}

}  // namespace

int main() {
  const bench::Scale scale = bench::scale_from_env();
  const bench::TaskSpec task = bench::lenet_task(scale);
  const bench::FleetSetup setup{4, 2, false, 7};
  const std::vector<std::string> methods = {"Syn. FL", "Asyn. FL", "AFO",
                                            "Helios"};
  const std::vector<double> loss_rates = {0.0, 0.01, 0.05};

  util::Table table({"method", "channel", "final acc (%)", "wire (MB)",
                     "lost", "drops", "wall (s)"});
  std::ostringstream json;  // buffered; replaced atomically below
  json << "{\n  \"schema\": 1,\n  \"scale\": \"" << scale.name
       << "\",\n  \"cycles\": " << task.cycles << ",\n  \"strategies\": [\n";

  for (std::size_t m = 0; m < methods.size(); ++m) {
    const std::string& method = methods[m];
    // Ideal baseline: frames are encoded and counted but delivery is
    // perfect and timing stays analytic.
    const RunStats ideal = run_once(task, setup, method, net::NetworkOptions{});
    table.add_row({method, "ideal",
                   util::Table::num(ideal.accuracy * 100.0, 2),
                   util::Table::num(ideal.wire_mb, 3), "0", "0",
                   util::Table::num(ideal.wall_seconds, 2)});
    json << "    {\"name\": \"" << method << "\", \"ideal\": ";
    write_stats(json, ideal);
    json << ", \"lossy\": [\n";

    for (std::size_t l = 0; l < loss_rates.size(); ++l) {
      net::NetworkOptions opts;
      opts.mode = net::NetMode::kSimulated;
      opts.channel.loss_prob = loss_rates[l];
      opts.channel.latency_s = 0.005;
      opts.channel.jitter_s = 0.002;
      opts.deadline_factor = 2.0;
      // The default protocol seed's four forked streams happen to draw no
      // loss event in a short run; this one realizes ~p per rate at both
      // quick and default scale, so the retransmit path shows up in the
      // report.
      opts.seed = 97;
      const RunStats lossy = run_once(task, setup, method, opts);
      table.add_row(
          {method, "loss " + util::Table::num(loss_rates[l] * 100.0, 0) + "%",
           util::Table::num(lossy.accuracy * 100.0, 2),
           util::Table::num(lossy.wire_mb, 3),
           util::Table::num(lossy.frames_lost, 0),
           util::Table::num(lossy.drops, 0),
           util::Table::num(lossy.wall_seconds, 2)});
      json << "      {\"loss\": " << loss_rates[l] << ", \"stats\": ";
      write_stats(json, lossy);
      json << ", \"accuracy_delta_vs_ideal\": "
           << (lossy.accuracy - ideal.accuracy) << "}"
           << (l + 1 < loss_rates.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (m + 1 < methods.size() ? "," : "") << "\n";
  }
  const obs::ProcMemory mem = obs::read_proc_memory();
  json << "  ],\n  \"rss_mb\": " << mem.rss_mb
       << ",\n  \"peak_rss_mb\": " << mem.peak_rss_mb << "\n}\n";
  util::atomic_write_file("BENCH_net.json", json.str());

  util::print_banner(std::cout,
                     "Network simulation: wire bytes, faults and accuracy "
                     "across loss rates (" + task.name + ")");
  table.print(std::cout);
  std::cout << "wrote BENCH_net.json (" << methods.size() << " strategies x "
            << loss_rates.size() << " loss rates + ideal baselines)\n";
  return 0;
}
