// Population-scale benchmark: how does throughput and memory behave as the
// fleet grows from the paper's testbed size to a sampled population?
//
// Two sections, both written machine-readably to BENCH_scale.json
// (schema 1) so CI can track scaling regressions via bench_compare:
//
//  * flat `points`: fleet sizes 8 / 64 / 256 / 1024 (mobile-longtail
//    preset, cohort sampling at C = max(0.05, 4/N), 5 rounds), Helios and
//    Syn. FL each reporting rounds per wall-clock second, the peak
//    live-replica footprint (the sum of materialized client models — the
//    memory the lazy-client design is bounding), and process peak RSS.
//
//  * `hierarchy`: Helios through a depth-3 aggregator tree (64 edges,
//    fanout 8) on lazy-data populations of 8k up to 256k devices at
//    C = max(0.01, 8/N) — the O(100k)-device regime the streaming tree
//    exists for. Each row reports rounds/s, per-tier fold time, the merge
//    frame size, and the per-round resident set, whose growth across
//    rounds must stay flat: root memory is bounded by the accumulator
//    geometry, not the population.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "fl/checkpoint.h"
#include "fl/hierarchy.h"
#include "obs/procstat.h"
#include "sim/population.h"
#include "sim/sampler.h"
#include "util/atomic_file.h"
#include "util/table.h"

namespace {

using namespace helios;

struct ScaleStats {
  double accuracy = 0.0;
  double setup_seconds = 0.0;     // fleet build + straggler id + sampler
  double wall_seconds = 0.0;      // the strategy run itself
  double rounds_per_second = 0.0;
  double peak_replica_mb = 0.0;   // max over rounds of live replica bytes
  double final_replica_mb = 0.0;  // after the last round's hibernation
  double peak_rss_mb = 0.0;       // process-wide (monotone across runs)
  std::size_t cohort_rounds = 0;  // sampled client-rounds
  double checkpoint_save_seconds = 0.0;  // full snapshot + atomic write
  double checkpoint_load_seconds = 0.0;  // read + validate + restore
  double checkpoint_file_mb = 0.0;       // framed file size on disk
};

ScaleStats run_once(const std::string& method, int devices, int cycles) {
  const auto setup0 = std::chrono::steady_clock::now();
  const sim::PopulationGenerator pop(sim::mobile_longtail(devices));
  fl::Fleet fleet = sim::build_fleet(pop);
  // Flag the slowest quarter (rank-based suits a long tail) and assign
  // profiled volumes — all analytic, no replica materializes for this.
  const core::StragglerReport report = core::StragglerIdentifier::time_based(
      fleet, std::max(1, devices / 4));
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report);

  sim::CohortSampler::Options sopts;
  sopts.fraction = std::max(0.05, 4.0 / devices);
  sopts.seed = 29;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);
  const std::chrono::duration<double> setup =
      std::chrono::steady_clock::now() - setup0;

  auto strategy = bench::make_strategy(method);
  ScaleStats s;
  // The hook fires at each cycle start, after the previous round's cohort
  // hibernated but while its replicas were still live a moment ago — the
  // peak is whatever the largest cohort materialized.
  std::size_t peak_bytes = 0;
  std::size_t sampled = 0;
  if (auto* helios = dynamic_cast<core::HeliosStrategy*>(strategy.get())) {
    helios->set_cycle_hook([&](fl::Fleet& f, int) {
      peak_bytes = std::max(peak_bytes, f.live_replica_bytes());
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  const fl::RunResult result = strategy->run(fleet, cycles);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  for (auto& c : fleet.clients()) sampled += c->materialized() ? 1 : 0;
  peak_bytes = std::max(peak_bytes, fleet.live_replica_bytes());

  // Checkpoint cost at this fleet size: a full save (snapshot + atomic
  // write) and a full resume (read + validate + restore) of the state the
  // run just produced. Gated by bench_compare via the *seconds* keys.
  {
    const std::string ckpt = "BENCH_scale_ckpt.tmp";
    const auto s0 = std::chrono::steady_clock::now();
    fleet.save_checkpoint(ckpt, strategy.get(), result);
    s.checkpoint_save_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
    std::ifstream in(ckpt, std::ios::binary | std::ios::ate);
    if (in) s.checkpoint_file_mb = static_cast<double>(in.tellg()) / 1e6;
    in.close();
    const auto l0 = std::chrono::steady_clock::now();
    const fl::RunResult restored = fleet.resume(ckpt, strategy.get());
    s.checkpoint_load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - l0)
            .count();
    if (restored.rounds.size() != result.rounds.size()) {
      std::cerr << "WARNING: checkpoint round-trip dropped rounds\n";
    }
    std::remove(ckpt.c_str());
  }
  s.accuracy = result.final_accuracy();
  s.setup_seconds = setup.count();
  s.wall_seconds = wall.count();
  s.rounds_per_second =
      wall.count() > 0.0 ? static_cast<double>(cycles) / wall.count() : 0.0;
  s.peak_replica_mb = static_cast<double>(peak_bytes) / 1e6;
  s.final_replica_mb =
      static_cast<double>(fleet.live_replica_bytes()) / 1e6;
  s.peak_rss_mb = obs::read_proc_memory().peak_rss_mb;
  s.cohort_rounds = sampled;
  fleet.set_sampler(nullptr);
  return s;
}

struct TreeScaleStats {
  double accuracy = 0.0;
  double setup_seconds = 0.0;  // population + fleet + straggler id + tree
  double wall_seconds = 0.0;
  double rounds_per_second = 0.0;
  double peak_replica_mb = 0.0;
  double peak_rss_mb = 0.0;
  double merge_frame_mb = 0.0;      // one tier crossing, fixed by geometry
  std::vector<double> round_rss_mb; // resident set after each round
  double rss_growth_mb = 0.0;       // last - first round (flatness claim)
  double edge_fold_seconds = 0.0;
  double regional_fold_seconds = 0.0;
  double root_fold_seconds = 0.0;
  std::uint64_t device_frames = 0;  // updates folded at the edge tier
  std::size_t cohort_devices = 0;   // materialized after the last round
};

// Helios through a depth-3 edge -> regional -> root tree on a lazy-data
// long-tail population. No simulated network: this measures the
// aggregation path itself (fold / collapse / finalize), which is where
// tree scaling shows up.
TreeScaleStats run_tree_once(int devices, int cycles, int edge_nodes,
                             int fanout) {
  const auto setup0 = std::chrono::steady_clock::now();
  sim::PopulationConfig cfg = sim::mobile_longtail(devices);
  cfg.lazy_data = true;  // sample memory follows the cohort, not the fleet
  const sim::PopulationGenerator pop(cfg);
  fl::Fleet fleet = sim::build_fleet(pop);
  const core::StragglerReport report = core::StragglerIdentifier::time_based(
      fleet, std::max(1, devices / 4));
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report);

  sim::CohortSampler::Options sopts;
  sopts.fraction = std::max(0.01, 8.0 / devices);
  sopts.seed = 29;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  agg::TreeTopology topo;
  topo.edge_nodes = edge_nodes;
  topo.fanout = fanout;
  fl::HierarchySession hier(fleet, topo);
  const std::chrono::duration<double> setup =
      std::chrono::steady_clock::now() - setup0;

  auto strategy = bench::make_strategy("Helios");
  TreeScaleStats s;
  s.merge_frame_mb =
      static_cast<double>(hier.tree().merge_frame_bytes()) / 1e6;
  // Per-tier rollups survive until the next round's begin_round, so the
  // cycle hook (firing at each round start) harvests the previous round;
  // one more harvest after the run collects the final round.
  auto harvest = [&] {
    for (const agg::TierStats& t : hier.tree().tier_stats()) {
      const std::string_view tier = t.tier;
      if (tier == "edge") {
        s.edge_fold_seconds += t.fold_seconds;
        s.device_frames += t.frames_folded;
      } else if (tier == "regional") {
        s.regional_fold_seconds += t.fold_seconds;
      } else {
        s.root_fold_seconds += t.fold_seconds;
      }
    }
  };
  std::size_t peak_bytes = 0;
  auto* helios = dynamic_cast<core::HeliosStrategy*>(strategy.get());
  helios->set_cycle_hook([&](fl::Fleet& f, int cycle) {
    peak_bytes = std::max(peak_bytes, f.live_replica_bytes());
    if (cycle > 0) {
      s.round_rss_mb.push_back(obs::read_proc_memory().rss_mb);
      harvest();
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  const fl::RunResult result = strategy->run(fleet, cycles);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  harvest();
  s.round_rss_mb.push_back(obs::read_proc_memory().rss_mb);
  peak_bytes = std::max(peak_bytes, fleet.live_replica_bytes());
  for (auto& c : fleet.clients()) {
    s.cohort_devices += c->materialized() ? 1 : 0;
  }
  s.accuracy = result.final_accuracy();
  s.setup_seconds = setup.count();
  s.wall_seconds = wall.count();
  s.rounds_per_second =
      wall.count() > 0.0 ? static_cast<double>(cycles) / wall.count() : 0.0;
  s.peak_replica_mb = static_cast<double>(peak_bytes) / 1e6;
  s.peak_rss_mb = obs::read_proc_memory().peak_rss_mb;
  s.rss_growth_mb = s.round_rss_mb.back() - s.round_rss_mb.front();
  fleet.set_sampler(nullptr);
  return s;
}

}  // namespace

int main() {
  const bench::Scale scale = bench::scale_from_env();
  // Quick scale stops at 256 devices; default and full run the 1024-device
  // point the acceptance run tracks (5 Helios rounds in well under a
  // minute).
  std::vector<int> sizes = {8, 64, 256};
  if (scale.name != "quick") sizes.push_back(1024);
  const int cycles = 5;
  const std::vector<std::string> methods = {"Helios", "Syn. FL"};

  util::Table table({"devices", "method", "rounds/s", "wall (s)",
                     "peak replicas (MB)", "full fleet (MB)", "peak RSS (MB)",
                     "final acc (%)"});
  std::ostringstream json;  // buffered; replaced atomically below
  json << "{\n  \"schema\": 1,\n  \"scale\": \"" << scale.name
       << "\",\n  \"cycles\": " << cycles << ",\n  \"points\": [\n";

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int devices = sizes[i];
    // What the whole population would occupy if every client held a live
    // replica — the bound the lazy-materialization design avoids.
    const sim::PopulationGenerator pop(sim::mobile_longtail(devices));
    nn::Model probe = pop.config().model.build(1);
    const double full_fleet_mb =
        static_cast<double>(probe.param_count() * 2 + probe.buffer_count()) *
        sizeof(float) * devices / 1e6;

    json << "    {\"devices\": " << devices
         << ", \"full_fleet_mb\": " << full_fleet_mb << ", \"methods\": [\n";
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const ScaleStats s = run_once(methods[m], devices, cycles);
      table.add_row({std::to_string(devices), methods[m],
                     util::Table::num(s.rounds_per_second, 2),
                     util::Table::num(s.wall_seconds, 2),
                     util::Table::num(s.peak_replica_mb, 2),
                     util::Table::num(full_fleet_mb, 2),
                     util::Table::num(s.peak_rss_mb, 1),
                     util::Table::num(s.accuracy * 100.0, 2)});
      json << "      {\"name\": \"" << methods[m]
           << "\", \"rounds_per_second\": " << s.rounds_per_second
           << ", \"setup_seconds\": " << s.setup_seconds
           << ", \"wall_seconds\": " << s.wall_seconds
           << ", \"peak_replica_mb\": " << s.peak_replica_mb
           << ", \"final_replica_mb\": " << s.final_replica_mb
           << ", \"peak_rss_mb\": " << s.peak_rss_mb
           << ", \"materialized_clients\": " << s.cohort_rounds
           << ", \"checkpoint_save_seconds\": " << s.checkpoint_save_seconds
           << ", \"checkpoint_load_seconds\": " << s.checkpoint_load_seconds
           << ", \"checkpoint_file_mb\": " << s.checkpoint_file_mb
           << ", \"accuracy\": " << s.accuracy << "}"
           << (m + 1 < methods.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (i + 1 < sizes.size() ? "," : "") << "\n";
  }

  // Hierarchical section: the O(100k)-device regime. The 100k point runs at
  // every scale — it is the acceptance row showing flat per-round RSS; the
  // 64k / 256k points fill the scaling curve at default / full.
  std::vector<int> tree_sizes = {8192};
  if (scale.name != "quick") tree_sizes.push_back(65536);
  tree_sizes.push_back(100000);
  if (scale.name == "full") tree_sizes.push_back(262144);
  const int tree_cycles = 3;
  const int kEdges = 64;
  const int kFanout = 8;

  util::Table tree_table({"devices", "rounds/s", "wall (s)", "cohort",
                          "peak replicas (MB)", "peak RSS (MB)",
                          "fold e/r/root (ms)", "RSS drift (MB)"});
  json << "  ],\n  \"hierarchy\": [\n";
  for (std::size_t i = 0; i < tree_sizes.size(); ++i) {
    const int devices = tree_sizes[i];
    const TreeScaleStats s =
        run_tree_once(devices, tree_cycles, kEdges, kFanout);
    std::ostringstream fold;
    fold << util::Table::num(s.edge_fold_seconds * 1e3, 1) << " / "
         << util::Table::num(s.regional_fold_seconds * 1e3, 1) << " / "
         << util::Table::num(s.root_fold_seconds * 1e3, 1);
    tree_table.add_row({std::to_string(devices),
                        util::Table::num(s.rounds_per_second, 2),
                        util::Table::num(s.wall_seconds, 2),
                        std::to_string(s.cohort_devices),
                        util::Table::num(s.peak_replica_mb, 2),
                        util::Table::num(s.peak_rss_mb, 1), fold.str(),
                        util::Table::num(s.rss_growth_mb, 2)});
    json << "    {\"devices\": " << devices << ", \"edge_nodes\": " << kEdges
         << ", \"fanout\": " << kFanout << ", \"rounds\": " << tree_cycles
         << ", \"rounds_per_second\": " << s.rounds_per_second
         << ", \"setup_seconds\": " << s.setup_seconds
         << ", \"wall_seconds\": " << s.wall_seconds
         << ", \"peak_replica_mb\": " << s.peak_replica_mb
         << ", \"peak_rss_mb\": " << s.peak_rss_mb
         << ", \"merge_frame_mb\": " << s.merge_frame_mb
         << ", \"device_frames\": " << s.device_frames
         << ", \"cohort_devices\": " << s.cohort_devices
         << ", \"edge_fold_seconds\": " << s.edge_fold_seconds
         << ", \"regional_fold_seconds\": " << s.regional_fold_seconds
         << ", \"root_fold_seconds\": " << s.root_fold_seconds
         << ", \"round_rss_mb\": [";
    for (std::size_t r = 0; r < s.round_rss_mb.size(); ++r) {
      json << (r ? ", " : "") << s.round_rss_mb[r];
    }
    json << "], \"rss_growth_mb\": " << s.rss_growth_mb
         << ", \"accuracy\": " << s.accuracy << "}"
         << (i + 1 < tree_sizes.size() ? "," : "") << "\n";
  }

  const obs::ProcMemory mem = obs::read_proc_memory();
  json << "  ],\n  \"rss_mb\": " << mem.rss_mb
       << ",\n  \"peak_rss_mb\": " << mem.peak_rss_mb << "\n}\n";
  util::atomic_write_file("BENCH_scale.json", json.str());

  util::print_banner(std::cout,
                     "Population scale: rounds/s and memory, Helios vs "
                     "Syn. FL (mobile-longtail, C = max(0.05, 4/N))");
  table.print(std::cout);
  util::print_banner(std::cout,
                     "Hierarchical aggregation: Helios through a depth-3 "
                     "tree (64 edges x fanout 8, lazy data, C = max(0.01, "
                     "8/N))");
  tree_table.print(std::cout);
  std::cout << "wrote BENCH_scale.json (" << sizes.size()
            << " fleet sizes x " << methods.size() << " strategies + "
            << tree_sizes.size() << " tree rows)\n";
  return 0;
}
