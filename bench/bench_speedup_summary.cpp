// Reproduces the Sec. VII-B convergence-speed comparison: aggregation
// cycles and virtual time to convergence per method on 6-device fleets
// (paper: Helios converges after 4 / 12 / 40 cycles on MNIST / CIFAR-10 /
// CIFAR-100 where the baselines need >= 10 / 18 / 50; overall speedup up to
// 2.5x versus the state of the art).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace helios;
  const bench::Scale scale = bench::scale_from_env();
  const std::vector<std::string> methods{"Syn. FL", "Asyn. FL", "AFO",
                                         "Helios"};
  const std::vector<bench::TaskSpec> tasks{bench::lenet_task(scale),
                                           bench::alexnet_task(scale)};

  util::print_banner(std::cout,
                     "Sec. VII-B: Convergence-speed summary (6 devices, 3 "
                     "stragglers)");
  for (const auto& task : tasks) {
    const bench::FleetSetup setup{6, 3, false, 11};
    const auto results = bench::run_methods(task, setup, methods, std::cerr);
    std::cout << "\n--- " << task.name << " ---\n";
    bench::print_convergence_summary(std::cout, results);

    // Max speedup of Helios over the other methods (time-to-target basis).
    double best_final = 0.0;
    for (const auto& r : results) {
      best_final = std::max(best_final, r.final_accuracy());
    }
    const double target = 0.9 * best_final;
    const fl::RunResult* helios = nullptr;
    for (const auto& r : results) {
      if (r.method == "Helios") helios = &r;
    }
    if (helios) {
      const double t_helios = helios->time_to_accuracy(target);
      double max_speedup = 0.0;
      for (const auto& r : results) {
        if (&r == helios) continue;
        const double t = r.time_to_accuracy(target);
        if (t != fl::RunResult::never && t_helios != fl::RunResult::never &&
            t_helios > 0.0) {
          max_speedup = std::max(max_speedup, t / t_helios);
        }
      }
      std::cout << "Max Helios speedup on " << task.name << ": "
                << util::Table::num(max_speedup, 2)
                << "x (paper: up to 2.5x)\n";
    }
  }
  return 0;
}
