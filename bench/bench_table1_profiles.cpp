// Reproduces Table I: the four straggler presets' compute workload, memory
// usage and per-cycle time cost for AlexNet/CIFAR-10, from the analytic
// resource-based profiling model Te = W/C_cpu + M/V_mc + M/B_n (Sec. IV-B).
#include <iostream>

#include "bench_common.h"
#include "device/cost_model.h"
#include "device/resource.h"

int main() {
  using namespace helios;
  util::print_banner(std::cout,
                     "Table I: 4 Stragglers with Heterogeneous Resource "
                     "(AlexNet/CIFAR-10, paper-scale workload)");

  const double paper_minutes[4] = {20.6, 23.8, 27.2, 34.0};
  util::Table table({"Constraints", "Comp. W (GFLOPS)", "Mem. U (MB)",
                     "Tim. C (Mins)", "paper (Mins)", "error (%)"});
  const auto stragglers = device::table1_stragglers();
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    const auto& p = stragglers[i];
    const device::WorkloadEstimate w =
        device::paper_alexnet_cycle_workload(p.memory_mb);
    const double minutes = device::total_cycle_seconds(p, w) / 60.0;
    table.add_row({p.name, util::Table::num(p.compute_gflops, 1),
                   util::Table::num(p.memory_mb, 0),
                   util::Table::num(minutes, 1),
                   util::Table::num(paper_minutes[i], 1),
                   util::Table::num(
                       100.0 * (minutes - paper_minutes[i]) / paper_minutes[i],
                       1)});
  }
  table.print(std::cout);

  std::cout << "\nCapable reference devices (same cost model):\n";
  util::Table cap({"device", "Comp. W (GFLOPS)", "Tim. C (Mins)"});
  for (const auto& p : {device::jetson_nano_gpu(), device::edge_server()}) {
    const device::WorkloadEstimate w =
        device::paper_alexnet_cycle_workload(p.memory_mb);
    cap.add_row({p.name, util::Table::num(p.compute_gflops, 1),
                 util::Table::num(device::total_cycle_seconds(p, w) / 60.0, 1)});
  }
  cap.print(std::cout);
  return 0;
}
