file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_straggler_issue.dir/bench_fig1_straggler_issue.cpp.o"
  "CMakeFiles/bench_fig1_straggler_issue.dir/bench_fig1_straggler_issue.cpp.o.d"
  "bench_fig1_straggler_issue"
  "bench_fig1_straggler_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_straggler_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
