# Empty dependencies file for bench_fig1_straggler_issue.
# This may be replaced when dependencies are built.
