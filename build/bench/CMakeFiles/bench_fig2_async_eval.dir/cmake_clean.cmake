file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_async_eval.dir/bench_fig2_async_eval.cpp.o"
  "CMakeFiles/bench_fig2_async_eval.dir/bench_fig2_async_eval.cpp.o.d"
  "bench_fig2_async_eval"
  "bench_fig2_async_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_async_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
