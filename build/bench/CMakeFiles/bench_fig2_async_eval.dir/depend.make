# Empty dependencies file for bench_fig2_async_eval.
# This may be replaced when dependencies are built.
