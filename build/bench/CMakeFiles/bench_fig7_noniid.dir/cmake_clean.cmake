file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_noniid.dir/bench_fig7_noniid.cpp.o"
  "CMakeFiles/bench_fig7_noniid.dir/bench_fig7_noniid.cpp.o.d"
  "bench_fig7_noniid"
  "bench_fig7_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
