# Empty dependencies file for bench_fig7_noniid.
# This may be replaced when dependencies are built.
