file(REMOVE_RECURSE
  "CMakeFiles/helios_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/helios_bench_common.dir/bench_common.cpp.o.d"
  "libhelios_bench_common.a"
  "libhelios_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
