file(REMOVE_RECURSE
  "libhelios_bench_common.a"
)
