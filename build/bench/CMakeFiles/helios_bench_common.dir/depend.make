# Empty dependencies file for helios_bench_common.
# This may be replaced when dependencies are built.
