# Empty compiler generated dependencies file for communication_budget.
# This may be replaced when dependencies are built.
