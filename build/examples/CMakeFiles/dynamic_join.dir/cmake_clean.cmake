file(REMOVE_RECURSE
  "CMakeFiles/dynamic_join.dir/dynamic_join.cpp.o"
  "CMakeFiles/dynamic_join.dir/dynamic_join.cpp.o.d"
  "dynamic_join"
  "dynamic_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
