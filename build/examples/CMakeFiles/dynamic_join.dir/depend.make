# Empty dependencies file for dynamic_join.
# This may be replaced when dependencies are built.
