file(REMOVE_RECURSE
  "CMakeFiles/noniid_collaboration.dir/noniid_collaboration.cpp.o"
  "CMakeFiles/noniid_collaboration.dir/noniid_collaboration.cpp.o.d"
  "noniid_collaboration"
  "noniid_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noniid_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
