# Empty compiler generated dependencies file for noniid_collaboration.
# This may be replaced when dependencies are built.
