# Empty dependencies file for noniid_collaboration.
# This may be replaced when dependencies are built.
