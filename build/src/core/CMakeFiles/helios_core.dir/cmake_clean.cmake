file(REMOVE_RECURSE
  "CMakeFiles/helios_core.dir/convergence.cpp.o"
  "CMakeFiles/helios_core.dir/convergence.cpp.o.d"
  "CMakeFiles/helios_core.dir/helios_strategy.cpp.o"
  "CMakeFiles/helios_core.dir/helios_strategy.cpp.o.d"
  "CMakeFiles/helios_core.dir/rotation.cpp.o"
  "CMakeFiles/helios_core.dir/rotation.cpp.o.d"
  "CMakeFiles/helios_core.dir/scalability.cpp.o"
  "CMakeFiles/helios_core.dir/scalability.cpp.o.d"
  "CMakeFiles/helios_core.dir/soft_training.cpp.o"
  "CMakeFiles/helios_core.dir/soft_training.cpp.o.d"
  "CMakeFiles/helios_core.dir/straggler_id.cpp.o"
  "CMakeFiles/helios_core.dir/straggler_id.cpp.o.d"
  "CMakeFiles/helios_core.dir/target.cpp.o"
  "CMakeFiles/helios_core.dir/target.cpp.o.d"
  "libhelios_core.a"
  "libhelios_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
