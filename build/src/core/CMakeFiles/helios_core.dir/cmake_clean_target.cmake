file(REMOVE_RECURSE
  "libhelios_core.a"
)
