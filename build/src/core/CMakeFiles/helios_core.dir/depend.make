# Empty dependencies file for helios_core.
# This may be replaced when dependencies are built.
