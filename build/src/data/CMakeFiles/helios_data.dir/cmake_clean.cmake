file(REMOVE_RECURSE
  "CMakeFiles/helios_data.dir/dataset.cpp.o"
  "CMakeFiles/helios_data.dir/dataset.cpp.o.d"
  "CMakeFiles/helios_data.dir/loader.cpp.o"
  "CMakeFiles/helios_data.dir/loader.cpp.o.d"
  "CMakeFiles/helios_data.dir/partition.cpp.o"
  "CMakeFiles/helios_data.dir/partition.cpp.o.d"
  "CMakeFiles/helios_data.dir/synthetic.cpp.o"
  "CMakeFiles/helios_data.dir/synthetic.cpp.o.d"
  "libhelios_data.a"
  "libhelios_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
