file(REMOVE_RECURSE
  "libhelios_data.a"
)
