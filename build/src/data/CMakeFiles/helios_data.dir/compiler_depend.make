# Empty compiler generated dependencies file for helios_data.
# This may be replaced when dependencies are built.
