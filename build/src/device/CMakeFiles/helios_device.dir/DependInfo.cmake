
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cost_model.cpp" "src/device/CMakeFiles/helios_device.dir/cost_model.cpp.o" "gcc" "src/device/CMakeFiles/helios_device.dir/cost_model.cpp.o.d"
  "/root/repo/src/device/resource.cpp" "src/device/CMakeFiles/helios_device.dir/resource.cpp.o" "gcc" "src/device/CMakeFiles/helios_device.dir/resource.cpp.o.d"
  "/root/repo/src/device/virtual_clock.cpp" "src/device/CMakeFiles/helios_device.dir/virtual_clock.cpp.o" "gcc" "src/device/CMakeFiles/helios_device.dir/virtual_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/helios_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helios_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/helios_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
