file(REMOVE_RECURSE
  "CMakeFiles/helios_device.dir/cost_model.cpp.o"
  "CMakeFiles/helios_device.dir/cost_model.cpp.o.d"
  "CMakeFiles/helios_device.dir/resource.cpp.o"
  "CMakeFiles/helios_device.dir/resource.cpp.o.d"
  "CMakeFiles/helios_device.dir/virtual_clock.cpp.o"
  "CMakeFiles/helios_device.dir/virtual_clock.cpp.o.d"
  "libhelios_device.a"
  "libhelios_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
