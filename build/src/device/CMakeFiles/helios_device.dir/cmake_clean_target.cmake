file(REMOVE_RECURSE
  "libhelios_device.a"
)
