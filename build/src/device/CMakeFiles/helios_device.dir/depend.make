# Empty dependencies file for helios_device.
# This may be replaced when dependencies are built.
