
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/afo.cpp" "src/fl/CMakeFiles/helios_fl.dir/afo.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/afo.cpp.o.d"
  "/root/repo/src/fl/async.cpp" "src/fl/CMakeFiles/helios_fl.dir/async.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/async.cpp.o.d"
  "/root/repo/src/fl/baselines.cpp" "src/fl/CMakeFiles/helios_fl.dir/baselines.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/baselines.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/helios_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/helios_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/fedprox.cpp" "src/fl/CMakeFiles/helios_fl.dir/fedprox.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/fedprox.cpp.o.d"
  "/root/repo/src/fl/fleet.cpp" "src/fl/CMakeFiles/helios_fl.dir/fleet.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/fleet.cpp.o.d"
  "/root/repo/src/fl/metrics.cpp" "src/fl/CMakeFiles/helios_fl.dir/metrics.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/metrics.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/helios_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/submodel.cpp" "src/fl/CMakeFiles/helios_fl.dir/submodel.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/submodel.cpp.o.d"
  "/root/repo/src/fl/sync.cpp" "src/fl/CMakeFiles/helios_fl.dir/sync.cpp.o" "gcc" "src/fl/CMakeFiles/helios_fl.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/helios_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/helios_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/helios_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/helios_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helios_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/helios_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
