file(REMOVE_RECURSE
  "CMakeFiles/helios_fl.dir/afo.cpp.o"
  "CMakeFiles/helios_fl.dir/afo.cpp.o.d"
  "CMakeFiles/helios_fl.dir/async.cpp.o"
  "CMakeFiles/helios_fl.dir/async.cpp.o.d"
  "CMakeFiles/helios_fl.dir/baselines.cpp.o"
  "CMakeFiles/helios_fl.dir/baselines.cpp.o.d"
  "CMakeFiles/helios_fl.dir/client.cpp.o"
  "CMakeFiles/helios_fl.dir/client.cpp.o.d"
  "CMakeFiles/helios_fl.dir/compression.cpp.o"
  "CMakeFiles/helios_fl.dir/compression.cpp.o.d"
  "CMakeFiles/helios_fl.dir/fedprox.cpp.o"
  "CMakeFiles/helios_fl.dir/fedprox.cpp.o.d"
  "CMakeFiles/helios_fl.dir/fleet.cpp.o"
  "CMakeFiles/helios_fl.dir/fleet.cpp.o.d"
  "CMakeFiles/helios_fl.dir/metrics.cpp.o"
  "CMakeFiles/helios_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/helios_fl.dir/server.cpp.o"
  "CMakeFiles/helios_fl.dir/server.cpp.o.d"
  "CMakeFiles/helios_fl.dir/submodel.cpp.o"
  "CMakeFiles/helios_fl.dir/submodel.cpp.o.d"
  "CMakeFiles/helios_fl.dir/sync.cpp.o"
  "CMakeFiles/helios_fl.dir/sync.cpp.o.d"
  "libhelios_fl.a"
  "libhelios_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
