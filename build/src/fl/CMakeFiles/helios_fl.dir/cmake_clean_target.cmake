file(REMOVE_RECURSE
  "libhelios_fl.a"
)
