# Empty dependencies file for helios_fl.
# This may be replaced when dependencies are built.
