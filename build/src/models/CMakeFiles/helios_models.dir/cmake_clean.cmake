file(REMOVE_RECURSE
  "CMakeFiles/helios_models.dir/zoo.cpp.o"
  "CMakeFiles/helios_models.dir/zoo.cpp.o.d"
  "libhelios_models.a"
  "libhelios_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
