file(REMOVE_RECURSE
  "libhelios_models.a"
)
