# Empty compiler generated dependencies file for helios_models.
# This may be replaced when dependencies are built.
