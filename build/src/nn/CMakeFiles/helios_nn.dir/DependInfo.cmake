
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/helios_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/helios_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/helios_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/helios_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/helios_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/depthwise.cpp" "src/nn/CMakeFiles/helios_nn.dir/depthwise.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/depthwise.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/helios_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/helios_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/groupnorm.cpp" "src/nn/CMakeFiles/helios_nn.dir/groupnorm.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/groupnorm.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/helios_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/helios_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/helios_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/helios_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/helios_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/helios_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/helios_nn.dir/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/helios_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helios_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
