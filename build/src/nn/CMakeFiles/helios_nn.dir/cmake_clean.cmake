file(REMOVE_RECURSE
  "CMakeFiles/helios_nn.dir/activations.cpp.o"
  "CMakeFiles/helios_nn.dir/activations.cpp.o.d"
  "CMakeFiles/helios_nn.dir/adam.cpp.o"
  "CMakeFiles/helios_nn.dir/adam.cpp.o.d"
  "CMakeFiles/helios_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/helios_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/helios_nn.dir/conv2d.cpp.o"
  "CMakeFiles/helios_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/helios_nn.dir/dense.cpp.o"
  "CMakeFiles/helios_nn.dir/dense.cpp.o.d"
  "CMakeFiles/helios_nn.dir/depthwise.cpp.o"
  "CMakeFiles/helios_nn.dir/depthwise.cpp.o.d"
  "CMakeFiles/helios_nn.dir/dropout.cpp.o"
  "CMakeFiles/helios_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/helios_nn.dir/flatten.cpp.o"
  "CMakeFiles/helios_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/helios_nn.dir/groupnorm.cpp.o"
  "CMakeFiles/helios_nn.dir/groupnorm.cpp.o.d"
  "CMakeFiles/helios_nn.dir/layer.cpp.o"
  "CMakeFiles/helios_nn.dir/layer.cpp.o.d"
  "CMakeFiles/helios_nn.dir/model.cpp.o"
  "CMakeFiles/helios_nn.dir/model.cpp.o.d"
  "CMakeFiles/helios_nn.dir/pool.cpp.o"
  "CMakeFiles/helios_nn.dir/pool.cpp.o.d"
  "CMakeFiles/helios_nn.dir/residual.cpp.o"
  "CMakeFiles/helios_nn.dir/residual.cpp.o.d"
  "CMakeFiles/helios_nn.dir/serialize.cpp.o"
  "CMakeFiles/helios_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/helios_nn.dir/sgd.cpp.o"
  "CMakeFiles/helios_nn.dir/sgd.cpp.o.d"
  "libhelios_nn.a"
  "libhelios_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
