file(REMOVE_RECURSE
  "libhelios_nn.a"
)
