# Empty dependencies file for helios_nn.
# This may be replaced when dependencies are built.
