file(REMOVE_RECURSE
  "CMakeFiles/helios_tensor.dir/ops.cpp.o"
  "CMakeFiles/helios_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/helios_tensor.dir/tensor.cpp.o"
  "CMakeFiles/helios_tensor.dir/tensor.cpp.o.d"
  "libhelios_tensor.a"
  "libhelios_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
