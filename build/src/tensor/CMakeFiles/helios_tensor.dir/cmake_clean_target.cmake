file(REMOVE_RECURSE
  "libhelios_tensor.a"
)
