# Empty compiler generated dependencies file for helios_tensor.
# This may be replaced when dependencies are built.
