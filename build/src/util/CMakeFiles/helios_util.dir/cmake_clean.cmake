file(REMOVE_RECURSE
  "CMakeFiles/helios_util.dir/log.cpp.o"
  "CMakeFiles/helios_util.dir/log.cpp.o.d"
  "CMakeFiles/helios_util.dir/rng.cpp.o"
  "CMakeFiles/helios_util.dir/rng.cpp.o.d"
  "CMakeFiles/helios_util.dir/stats.cpp.o"
  "CMakeFiles/helios_util.dir/stats.cpp.o.d"
  "CMakeFiles/helios_util.dir/table.cpp.o"
  "CMakeFiles/helios_util.dir/table.cpp.o.d"
  "libhelios_util.a"
  "libhelios_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
