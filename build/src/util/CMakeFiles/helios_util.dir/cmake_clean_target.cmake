file(REMOVE_RECURSE
  "libhelios_util.a"
)
