# Empty dependencies file for helios_util.
# This may be replaced when dependencies are built.
