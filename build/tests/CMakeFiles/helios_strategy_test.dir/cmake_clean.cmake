file(REMOVE_RECURSE
  "CMakeFiles/helios_strategy_test.dir/helios_strategy_test.cpp.o"
  "CMakeFiles/helios_strategy_test.dir/helios_strategy_test.cpp.o.d"
  "helios_strategy_test"
  "helios_strategy_test.pdb"
  "helios_strategy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helios_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
