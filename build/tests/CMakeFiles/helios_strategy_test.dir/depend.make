# Empty dependencies file for helios_strategy_test.
# This may be replaced when dependencies are built.
