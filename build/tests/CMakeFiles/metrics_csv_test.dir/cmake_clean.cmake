file(REMOVE_RECURSE
  "CMakeFiles/metrics_csv_test.dir/metrics_csv_test.cpp.o"
  "CMakeFiles/metrics_csv_test.dir/metrics_csv_test.cpp.o.d"
  "metrics_csv_test"
  "metrics_csv_test.pdb"
  "metrics_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
