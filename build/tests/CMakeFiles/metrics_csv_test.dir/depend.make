# Empty dependencies file for metrics_csv_test.
# This may be replaced when dependencies are built.
