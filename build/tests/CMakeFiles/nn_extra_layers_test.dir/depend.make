# Empty dependencies file for nn_extra_layers_test.
# This may be replaced when dependencies are built.
