file(REMOVE_RECURSE
  "CMakeFiles/soft_training_test.dir/soft_training_test.cpp.o"
  "CMakeFiles/soft_training_test.dir/soft_training_test.cpp.o.d"
  "soft_training_test"
  "soft_training_test.pdb"
  "soft_training_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
