# Empty compiler generated dependencies file for soft_training_test.
# This may be replaced when dependencies are built.
