file(REMOVE_RECURSE
  "CMakeFiles/straggler_id_test.dir/straggler_id_test.cpp.o"
  "CMakeFiles/straggler_id_test.dir/straggler_id_test.cpp.o.d"
  "straggler_id_test"
  "straggler_id_test.pdb"
  "straggler_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
