# Empty compiler generated dependencies file for straggler_id_test.
# This may be replaced when dependencies are built.
