
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/submodel_test.cpp" "tests/CMakeFiles/submodel_test.dir/submodel_test.cpp.o" "gcc" "tests/CMakeFiles/submodel_test.dir/submodel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/helios_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/helios_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/helios_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/helios_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/helios_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/helios_device.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/helios_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/helios_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
