// Communication-budget scenario: what each straggler strategy costs on the
// wire. Soft-training submodels upload only the trained neurons; top-k
// compression sparsifies the full-model updates; the two compose.
//
//   $ ./communication_budget
#include <iostream>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/compression.h"
#include "fl/sync.h"
#include "util/table.h"

int main() {
  using namespace helios;

  data::SyntheticSpec spec = data::mnist_like_spec(512);
  spec.noise = 0.9F;
  util::Rng rng(51);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 300;
  data::Dataset test = data::make_synthetic(spec, rng);

  auto build_fleet = [&] {
    fl::Fleet fleet(models::lenet_spec(), test, 51);
    util::Rng prng(52);
    const data::Partition parts = data::partition_iid(
        static_cast<std::size_t>(train.size()), 4, prng);
    const device::ResourceProfile profiles[4] = {
        device::sim_scaled(device::edge_server()),
        device::sim_scaled(device::jetson_nano_gpu()),
        device::sim_scaled(device::deeplens_gpu()),
        device::sim_scaled(device::deeplens_cpu())};
    for (int i = 0; i < 4; ++i) {
      fl::ClientConfig cfg;
      cfg.seed = 500 + static_cast<std::uint64_t>(i);
      cfg.lr = 0.08F;
      cfg.batch_size = 16;
      fleet.add_client(data::subset(train, parts[static_cast<std::size_t>(i)]),
                       cfg, profiles[i]);
    }
    const auto report = core::StragglerIdentifier::resource_based(fleet, 2.0);
    core::StragglerIdentifier::apply(fleet, report);
    core::TargetDeterminer::assign_profiled(fleet, report);
    return fleet;
  };

  const int cycles = 12;
  struct Entry {
    std::string label;
    fl::RunResult result;
  };
  std::vector<Entry> entries;
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Syn. FL (full uploads)",
                       fl::SyncFL().run(fleet, cycles)});
  }
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Syn. FL + top-10% compression",
                       fl::CompressedSyncFL(0.10).run(fleet, cycles)});
  }
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Helios (submodel uploads)",
                       core::HeliosStrategy().run(fleet, cycles)});
  }

  util::Table table({"method", "final acc (%)", "virtual time (s)",
                     "total upload (MB)", "MB per 1% accuracy"});
  for (const auto& e : entries) {
    const double acc = e.result.final_accuracy() * 100.0;
    table.add_row(
        {e.label, util::Table::num(acc, 2),
         util::Table::num(e.result.rounds.back().virtual_time, 3),
         util::Table::num(e.result.total_upload_mb(), 2),
         util::Table::num(
             acc > 0 ? e.result.total_upload_mb() / acc : 0.0, 3)});
  }
  std::cout << "Communication budget after " << cycles << " cycles:\n";
  table.print(std::cout);
  std::cout << "\nSoft-training cuts upload volume by shrinking what each\n"
               "straggler trains; top-k compression cuts it by shrinking\n"
               "what every device ships. The two act on different terms of\n"
               "the cost model and can be combined.\n";
  return 0;
}
