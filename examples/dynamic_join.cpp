// Collaboration-scalability scenario (paper Sec. VI-C): devices join the
// federation mid-training.
//
// The run starts with three capable devices; at cycle 3 a weak DeepLens
// joins, at cycle 6 a capable edge server joins. The ScalabilityManager
// profiles each joiner against the current collaboration pace, flags the
// weak one as a straggler, assigns it an expected model volume, and the
// HeliosStrategy picks it up via its per-cycle hook with lazily created
// soft-training state.
//
//   $ ./dynamic_join
#include <iostream>

#include "core/helios_strategy.h"
#include "core/scalability.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "util/table.h"

int main() {
  using namespace helios;

  data::SyntheticSpec spec = data::mnist_like_spec(/*samples=*/640);
  spec.noise = 0.9F;
  util::Rng rng(41);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 320;
  data::Dataset test = data::make_synthetic(spec, rng);

  util::Rng part_rng(42);
  const data::Partition parts = data::partition_iid(
      static_cast<std::size_t>(train.size()), 5, part_rng);

  fl::Fleet fleet(models::lenet_spec(), test, 41);
  auto add_client = [&](std::size_t part,
                        const device::ResourceProfile& profile) -> fl::Client& {
    fl::ClientConfig cfg;
    cfg.seed = 400 + part;
    cfg.lr = 0.08F;
    cfg.batch_size = 16;
    return fleet.add_client(data::subset(train, parts[part]), cfg, profile);
  };

  // Initial fleet: three capable devices.
  add_client(0, device::sim_scaled(device::edge_server()));
  add_client(1, device::sim_scaled(device::jetson_nano_gpu()));
  add_client(2, device::sim_scaled(device::jetson_nano_gpu()));

  core::ScalabilityManager manager;
  core::HeliosStrategy strategy;
  strategy.set_cycle_hook([&](fl::Fleet& f, int cycle) {
    auto admit = [&](fl::Client& joiner) {
      const core::AdmissionResult res = manager.admit(f, joiner.id());
      std::cout << "[cycle " << cycle << "] device " << joiner.id() << " ("
                << joiner.profile().name << ") joined: "
                << (res.straggler
                        ? "straggler, volume " +
                              util::Table::num(res.volume, 2)
                        : std::string("capable"))
                << " (cycle est. "
                << util::Table::num(res.estimated_cycle_seconds, 4)
                << " s vs pace " << util::Table::num(res.pace_seconds, 4)
                << " s)\n";
    };
    if (cycle == 3) admit(add_client(3, device::sim_scaled(device::deeplens_cpu())));
    if (cycle == 6) admit(add_client(4, device::sim_scaled(device::edge_server())));
  });

  const fl::RunResult res = strategy.run(fleet, 12);

  util::Table table({"cycle", "devices", "acc (%)", "virtual time (s)"});
  for (const auto& r : res.rounds) {
    const int devices = r.cycle < 3 ? 3 : (r.cycle < 6 ? 4 : 5);
    table.add_row({std::to_string(r.cycle), std::to_string(devices),
                   util::Table::num(r.test_accuracy * 100, 2),
                   util::Table::num(r.virtual_time, 4)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nThe straggler admitted at cycle 3 trains a shrunk\n"
               "soft-training submodel from its first cycle, so the round\n"
               "time stays at the capable pace throughout.\n";
  return 0;
}
