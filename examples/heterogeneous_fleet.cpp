// Heterogeneous fleet scenario: six devices spanning the full Table I
// spectrum train AlexNet-lite on a synthetic CIFAR-10-like task.
//
// Demonstrates the two straggler-identification modes (black-box time-based
// test bench vs white-box resource profiling), per-straggler expected model
// volumes, and the resulting per-cycle schedule: where synchronous FedAvg
// idles the capable devices, Helios equalizes the pace.
//
// The Helios run below records full telemetry: helios_run.trace.json is a
// Chrome trace (open in Perfetto / chrome://tracing), helios_run.metrics.prom
// a Prometheus text dump, helios_run.dashboard.json the per-device straggler
// dashboard also rendered to stdout.
//
//   $ ./heterogeneous_fleet
#include <iostream>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/sync.h"
#include "obs/telemetry.h"
#include "util/table.h"

int main() {
  using namespace helios;

  data::SyntheticSpec spec = data::cifar10_like_spec(/*samples=*/64 * 6);
  spec.noise = 0.8F;
  spec.deform = 0.5F;
  util::Rng rng(21);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 300;
  data::Dataset test = data::make_synthetic(spec, rng);

  const std::vector<device::ResourceProfile> profiles{
      device::sim_scaled(device::edge_server()),
      device::sim_scaled(device::jetson_nano_gpu()),
      device::sim_scaled(device::jetson_nano_cpu()),
      device::sim_scaled(device::raspberry_pi()),
      device::sim_scaled(device::deeplens_gpu()),
      device::sim_scaled(device::deeplens_cpu())};

  auto build_fleet = [&] {
    fl::Fleet fleet(models::alexnet_lite_spec(), test, 21);
    util::Rng prng(22);
    const data::Partition parts = data::partition_iid(
        static_cast<std::size_t>(train.size()), profiles.size(), prng);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      fl::ClientConfig cfg;
      cfg.seed = 200 + i;
      cfg.lr = 0.05F;
      cfg.batch_size = 16;
      fleet.add_client(data::subset(train, parts[i]), cfg, profiles[i]);
    }
    return fleet;
  };

  // Compare the two identification modes on the same fleet.
  {
    fl::Fleet fleet = build_fleet();
    const auto black_box = core::StragglerIdentifier::time_based(fleet, 3);
    const auto white_box = core::StragglerIdentifier::resource_based(fleet, 2.0);
    util::Table table({"device", "test bench (s)", "profiled cycle (s)",
                       "black-box", "white-box"});
    for (auto& c : fleet.clients()) {
      auto find = [&](const core::StragglerReport& r) {
        for (const auto& t : r.timings) {
          if (t.client_id == c->id()) return t;
        }
        return core::DeviceTiming{};
      };
      const auto bb = find(black_box);
      const auto wb = find(white_box);
      table.add_row({c->profile().name, util::Table::num(bb.seconds, 4),
                     util::Table::num(wb.seconds, 4),
                     bb.straggler ? "straggler" : "capable",
                     wb.straggler ? "straggler" : "capable"});
    }
    std::cout << "Straggler identification (black box vs white box):\n";
    table.print(std::cout);
  }

  // Full pipeline with white-box identification + profiled volumes.
  auto prepared_fleet = [&] {
    fl::Fleet fleet = build_fleet();
    const auto report = core::StragglerIdentifier::resource_based(fleet, 2.0);
    core::StragglerIdentifier::apply(fleet, report);
    core::TargetDeterminer::assign_profiled(fleet, report);
    return fleet;
  };

  {
    fl::Fleet fleet = prepared_fleet();
    std::cout << "\nExpected model volumes and per-cycle schedule:\n";
    util::Table table({"device", "volume", "full cycle (s)",
                       "shrunk cycle (s)"});
    for (auto& c : fleet.clients()) {
      table.add_row(
          {c->profile().name, util::Table::num(c->volume(), 2),
           util::Table::num(c->estimate_cycle_seconds({}), 4),
           util::Table::num(
               core::TargetDeterminer::cycle_seconds_at_volume(*c, c->volume()),
               4)});
    }
    table.print(std::cout);
  }

  const int cycles = 10;
  fl::Fleet sync_fleet = prepared_fleet();
  fl::Fleet helios_fleet = prepared_fleet();
  const fl::RunResult sync = fl::SyncFL().run(sync_fleet, cycles);

  obs::TelemetryConfig tcfg;
  tcfg.artifact_prefix = "helios_run";
  obs::TelemetrySink telemetry(tcfg);
  helios_fleet.set_telemetry(&telemetry);
  const fl::RunResult helios = core::HeliosStrategy().run(helios_fleet, cycles);
  helios_fleet.set_telemetry(nullptr);
  telemetry.flush();

  std::cout << "\nStraggler dashboard (Helios run):\n";
  telemetry.render_dashboard(std::cout);
  std::cout << "\nTelemetry artifacts: helios_run.trace.json (Perfetto), "
               "helios_run.metrics.prom, helios_run.metrics.json, "
               "helios_run.dashboard.json\n";

  std::cout << "\nAfter " << cycles << " cycles:\n"
            << "  Syn. FL: acc "
            << util::Table::num(sync.final_accuracy() * 100, 2) << "% in "
            << util::Table::num(sync.rounds.back().virtual_time, 3) << " s\n"
            << "  Helios:  acc "
            << util::Table::num(helios.final_accuracy() * 100, 2) << "% in "
            << util::Table::num(helios.rounds.back().virtual_time, 3)
            << " s\n";
  return 0;
}
