// Non-IID collaboration scenario: why stragglers must not be dropped.
//
// The training data is split by label shards (each client sees ~2 of 10
// classes), and the classes held by the straggling devices exist nowhere
// else. Asynchronous FL, which stales or sidelines the stragglers, loses
// exactly those classes; Helios keeps them synchronized through shrunken
// soft-training submodels and retains their information.
//
//   $ ./noniid_collaboration
#include <iostream>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/async.h"
#include "fl/sync.h"
#include "util/table.h"

int main() {
  using namespace helios;

  data::SyntheticSpec spec = data::mnist_like_spec(/*samples=*/512);
  spec.noise = 0.9F;
  util::Rng rng(31);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 400;
  data::Dataset test = data::make_synthetic(spec, rng);

  util::Rng part_rng(32);
  const data::Partition parts =
      data::partition_shards(train.labels, 4, /*shards_per_client=*/2,
                             part_rng);

  auto build_fleet = [&] {
    fl::Fleet fleet(models::lenet_spec(), test, 31);
    const device::ResourceProfile profiles[4] = {
        device::sim_scaled(device::edge_server()),
        device::sim_scaled(device::jetson_nano_gpu()),
        device::sim_scaled(device::deeplens_gpu()),
        device::sim_scaled(device::deeplens_cpu())};
    for (int i = 0; i < 4; ++i) {
      fl::ClientConfig cfg;
      cfg.seed = 300 + static_cast<std::uint64_t>(i);
      cfg.lr = 0.08F;
      cfg.batch_size = 16;
      fleet.add_client(data::subset(train, parts[static_cast<std::size_t>(i)]),
                       cfg, profiles[i]);
    }
    const auto report = core::StragglerIdentifier::resource_based(fleet, 2.0);
    core::StragglerIdentifier::apply(fleet, report);
    core::TargetDeterminer::assign_profiled(fleet, report);
    return fleet;
  };

  // Show the label skew: which classes live on the stragglers.
  {
    fl::Fleet fleet = build_fleet();
    util::Table table({"client", "device", "role", "classes held"});
    for (auto& c : fleet.clients()) {
      std::string classes;
      const auto hist = data::class_histogram(c->dataset());
      for (std::size_t y = 0; y < hist.size(); ++y) {
        if (hist[y] > 0) classes += (classes.empty() ? "" : " ") +
                                    std::to_string(y);
      }
      table.add_row({std::to_string(c->id()), c->profile().name,
                     c->is_straggler() ? "straggler" : "capable", classes});
    }
    std::cout << "Non-IID shard split (2 shards/client):\n";
    table.print(std::cout);
  }

  const int cycles = 15;
  struct Entry {
    std::string label;
    fl::RunResult result;
  };
  std::vector<Entry> entries;
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Syn. FL", fl::SyncFL().run(fleet, cycles)});
  }
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Asyn. FL", fl::AsyncFL().run(fleet, cycles)});
  }
  {
    fl::Fleet fleet = build_fleet();
    entries.push_back({"Helios", core::HeliosStrategy().run(fleet, cycles)});
  }

  util::Table table({"method", "final acc (%)", "virtual time (s)"});
  for (const auto& e : entries) {
    table.add_row({e.label,
                   util::Table::num(e.result.final_accuracy() * 100, 2),
                   util::Table::num(e.result.rounds.back().virtual_time, 3)});
  }
  std::cout << "\nAfter " << cycles << " cycles on the Non-IID split:\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: Asyn. FL trails because the stragglers'\n"
               "unique classes go stale; Helios matches Syn. FL accuracy at\n"
               "a fraction of its virtual time.\n";
  return 0;
}
