// Population-scale simulation: a 256-device long-tailed mobile fleet with
// per-round cohort sampling (FedAvg fraction C = 0.1) and Poisson churn.
//
// The population generator draws every device's compute / bandwidth /
// shard size from seeded log-normal and Pareto distributions (the
// `mobile-longtail` preset), so no device is hand-enumerated. Each round
// the cohort sampler picks ~10% of the fleet; everyone else hibernates
// (no live model replica), which is what keeps a population this size in
// memory. A churn process retires devices on their exponential lifetimes
// and admits fresh ones through the scalability path. The straggler
// dashboard switches to its fleet-summary mode (percentiles over devices)
// above 32 devices.
//
// The run journal (flight recorder) is on: every round's lifecycle lands in
// population_scale.journal.jsonl, and the run ends by replaying that journal
// back into a dashboard to show it reconstructs the live one exactly (the
// `helios-journal` CLI does the same offline).
//
//   $ ./population_scale
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "obs/journal_reader.h"
#include "obs/telemetry.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "sim/sampler.h"
#include "util/table.h"

int main() {
  using namespace helios;

  const int kDevices = 256;
  const int kCycles = 8;

  obs::TelemetryConfig tcfg;
  tcfg.journal = true;
  tcfg.artifact_prefix = "population_scale";
  obs::TelemetrySink telemetry(tcfg);
  const sim::PopulationGenerator pop(sim::mobile_longtail(kDevices));
  fl::Fleet fleet = sim::build_fleet(pop);
  fleet.set_telemetry(&telemetry);

  // Straggler identification + volume assignment over the whole population
  // (virtual test bench on the cost model — analytic, so no client replica
  // materializes). Rank-based flagging suits a long tail: against the
  // single fastest device nearly everyone is "slow", so flag the slowest
  // quarter and let pace adaptation refine the rest.
  const core::StragglerReport report =
      core::StragglerIdentifier::time_based(fleet, /*top_k=*/kDevices / 4);
  core::StragglerIdentifier::apply(fleet, report);
  core::TargetDeterminer::assign_profiled(fleet, report);
  std::cout << report.straggler_ids().size() << " of " << fleet.size()
            << " devices flagged as stragglers (pace "
            << util::Table::num(report.pace_seconds, 3) << " s)\n";

  // FedAvg-style client sampling: each device participates in a round
  // independently with probability C = 0.1 (its own forked RNG stream, so
  // churn never reshuffles anyone's schedule).
  sim::CohortSampler::Options sopts;
  sopts.fraction = 0.1;
  sopts.seed = 33;
  sim::CohortSampler sampler(sopts);
  sampler.attach(&fleet);
  fleet.set_sampler(&sampler);

  // Poisson churn on the virtual clock: devices retire on exponential
  // lifetimes and new ones (drawn from the same population) are admitted
  // through the scalability path, up to a cap above the initial size. The
  // rates are in *virtual* seconds — this population's rounds close in
  // tens of virtual milliseconds, so a 2 s lifetime spans many rounds.
  sim::ChurnOptions copts;
  copts.arrival_rate_per_s = 30.0;
  copts.mean_lifetime_s = 2.0;
  copts.seed = 7;
  copts.max_devices = kDevices + 32;
  sim::ChurnProcess churn(pop, copts);

  core::HeliosStrategy strategy;
  strategy.set_cycle_hook([&](fl::Fleet& f, int cycle) {
    const sim::RoundChurn rc = churn.step(f, cycle);
    if (!rc.arrived.empty() || !rc.departed.empty()) {
      std::cout << "[cycle " << cycle << "] churn: +" << rc.arrived.size()
                << " joined, -" << rc.departed.size() << " departed ("
                << f.active_clients().size() << " active of " << f.size()
                << ")\n";
    }
  });

  const fl::RunResult res = strategy.run(fleet, kCycles);

  util::Table table({"cycle", "acc (%)", "virtual time (s)", "upload (MB)",
                     "live replicas (MB)"});
  for (const auto& r : res.rounds) {
    table.add_row({std::to_string(r.cycle),
                   util::Table::num(r.test_accuracy * 100, 2),
                   util::Table::num(r.virtual_time, 1),
                   util::Table::num(r.upload_mb, 2),
                   util::Table::num(
                       static_cast<double>(fleet.live_replica_bytes()) / 1e6,
                       2)});
  }
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nFleet summary (population > 32 devices => percentile "
               "dashboard):\n\n";
  telemetry.render_dashboard(std::cout);

  const double sampled =
      telemetry.metrics().counter("helios.sim.sampled_total").value();
  std::cout << "\n" << sampled << " client-rounds sampled across " << kCycles
            << " cycles (~" << util::Table::num(sampled / kCycles, 1)
            << " per round from a fleet of " << fleet.size()
            << "); unsampled devices hold no model replica, so peak memory "
               "tracks the cohort, not the population.\n";

  // Close the artifacts, then prove the flight recorder's fidelity: parse
  // the journal back and replay it into a fresh dashboard — the rendering
  // must match the live one byte for byte.
  fleet.set_sampler(nullptr);
  fleet.set_telemetry(nullptr);
  telemetry.flush();

  std::ifstream journal("population_scale.journal.jsonl");
  const std::vector<obs::JournalEvent> events = obs::read_journal(journal);
  obs::StragglerDashboard replayed;
  obs::replay_dashboard(events, replayed);
  std::ostringstream live, offline;
  telemetry.render_dashboard(live);
  replayed.render(offline);
  std::cout << "\njournal: " << events.size()
            << " events in population_scale.journal.jsonl; replayed "
               "dashboard "
            << (live.str() == offline.str() ? "matches the live one exactly"
                                            : "DIVERGES from the live one")
            << ".\n";
  return live.str() == offline.str() ? 0 : 1;
}
