// Quickstart: the smallest end-to-end Helios run.
//
// Builds a 4-device federation (2 capable edge servers, 2 weak devices) on a
// synthetic MNIST-like task, identifies the stragglers with the white-box
// cost model, determines their expected model volumes, and runs Helios
// soft-training against plain synchronous FedAvg.
//
//   $ ./quickstart
#include <iostream>

#include "core/helios_strategy.h"
#include "core/straggler_id.h"
#include "core/target.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/sync.h"
#include "util/table.h"

int main() {
  using namespace helios;

  // 1. A synthetic 10-class image task (28x28 grayscale, MNIST-like).
  data::SyntheticSpec spec = data::mnist_like_spec(/*samples=*/512);
  spec.noise = 0.9F;
  util::Rng rng(7);
  data::Dataset train = data::make_synthetic(spec, rng);
  spec.samples = 256;
  data::Dataset test = data::make_synthetic(spec, rng);

  // 2. A federation: the global model is LeNet; each client owns an IID
  //    shard of the training data and a device resource profile.
  auto build_fleet = [&] {
    fl::Fleet fleet(models::lenet_spec(), test, /*seed=*/7);
    util::Rng prng(13);
    const data::Partition parts = data::partition_iid(
        static_cast<std::size_t>(train.size()), 4, prng);
    const device::ResourceProfile profiles[4] = {
        device::sim_scaled(device::edge_server()),
        device::sim_scaled(device::jetson_nano_gpu()),
        device::sim_scaled(device::deeplens_gpu()),
        device::sim_scaled(device::deeplens_cpu())};
    for (int i = 0; i < 4; ++i) {
      fl::ClientConfig cfg;
      cfg.seed = 100 + static_cast<std::uint64_t>(i);
      cfg.lr = 0.08F;
      cfg.batch_size = 16;
      fleet.add_client(data::subset(train, parts[static_cast<std::size_t>(i)]),
                       cfg, profiles[i]);
    }
    // 3. Identify stragglers (resource-based profiling, Sec. IV-B) and
    //    determine their expected model volumes (Sec. IV-C).
    const auto report = core::StragglerIdentifier::resource_based(fleet, 2.0);
    core::StragglerIdentifier::apply(fleet, report);
    core::TargetDeterminer::assign_profiled(fleet, report);
    return fleet;
  };

  {
    fl::Fleet fleet = build_fleet();
    std::cout << "Fleet:\n";
    for (auto& c : fleet.clients()) {
      std::cout << "  client " << c->id() << "  " << c->profile().name
                << (c->is_straggler() ? "  [straggler, volume " +
                                            util::Table::num(c->volume(), 2) +
                                            "]"
                                      : "")
                << '\n';
    }
  }

  // 4. Run Helios and the synchronous baseline for 12 aggregation cycles.
  const int cycles = 12;
  fl::Fleet helios_fleet = build_fleet();
  fl::Fleet sync_fleet = build_fleet();
  const fl::RunResult helios = core::HeliosStrategy().run(helios_fleet, cycles);
  const fl::RunResult sync = fl::SyncFL().run(sync_fleet, cycles);

  util::Table table({"cycle", "Syn. FL acc (%)", "Helios acc (%)"});
  for (int c = 0; c < cycles; ++c) {
    table.add_row({std::to_string(c),
                   util::Table::num(sync.rounds[static_cast<std::size_t>(c)]
                                        .test_accuracy * 100, 1),
                   util::Table::num(helios.rounds[static_cast<std::size_t>(c)]
                                        .test_accuracy * 100, 1)});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nvirtual time for " << cycles << " cycles:  Syn. FL "
            << util::Table::num(sync.rounds.back().virtual_time, 3)
            << " s,  Helios "
            << util::Table::num(helios.rounds.back().virtual_time, 3)
            << " s  ("
            << util::Table::num(sync.rounds.back().virtual_time /
                                    helios.rounds.back().virtual_time, 2)
            << "x faster)\n";
  return 0;
}
