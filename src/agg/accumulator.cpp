#include "agg/accumulator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "net/wire.h"

namespace helios::agg {

namespace {

// Merge-frame layout (little-endian):
//   0   4  magic "HMF1"
//   4   4  reserved (0)
//   8   8  param_count  (validated against the geometry)
//  16   8  buffer_count
//  24   8  folded update count
//  32   -  acc  doubles (param_count), raw IEEE bits
//   -   -  den  doubles (param_count)
//   -   -  bacc doubles (buffer_count)
//   -   8  bden double
//   -   4  CRC32 over every preceding byte
constexpr std::uint32_t kMergeMagic = 0x31464D48U;  // "HMF1"
constexpr std::size_t kMergeHeaderBytes = 32;
constexpr std::size_t kMergeTrailerBytes = 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  return v;
}

double get_f64(std::span<const std::uint8_t> in, std::size_t at) {
  const std::uint64_t bits = get_u64(in, at);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

ModelGeometry make_geometry(nn::Model& model) {
  ModelGeometry g;
  g.param_count = model.param_count();
  g.buffer_count = model.buffer_count();
  g.neuron_total = model.neuron_total();
  g.neurons = model.neurons();
  g.neuron_owned.assign(g.param_count, 0);
  for (const nn::NeuronInfo& n : g.neurons) {
    for (const nn::FlatSlice& s : n.slices) {
      std::fill_n(
          g.neuron_owned.begin() + static_cast<std::ptrdiff_t>(s.offset),
          s.length, std::uint8_t{1});
    }
  }
  return g;
}

std::vector<double> neuron_change_means(
    std::span<const nn::NeuronInfo> neurons, std::span<const float> before,
    std::span<const float> after, std::span<const std::uint8_t> mask) {
  std::vector<double> means(neurons.size(), 0.0);
  for (std::size_t j = 0; j < neurons.size(); ++j) {
    if (!mask.empty() && !mask[j]) continue;
    double change = 0.0;
    std::size_t params = 0;
    for (const nn::FlatSlice& s : neurons[j].slices) {
      if (s.offset + s.length > before.size() ||
          s.offset + s.length > after.size()) {
        throw std::out_of_range("neuron_change_means: slice out of range");
      }
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        change += std::fabs(static_cast<double>(after[f]) - before[f]);
      }
      params += s.length;
    }
    if (params > 0) means[j] = change / static_cast<double>(params);
  }
  return means;
}

StreamingAccumulator::StreamingAccumulator(const ModelGeometry* geometry)
    : geo_(geometry) {
  if (geo_ == nullptr) {
    throw std::invalid_argument("StreamingAccumulator: null geometry");
  }
  acc_.assign(geo_->param_count, 0.0);
  den_.assign(geo_->param_count, 0.0);
  bacc_.assign(geo_->buffer_count, 0.0);
  allowed_.assign(geo_->param_count, 0);
}

void StreamingAccumulator::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  std::fill(den_.begin(), den_.end(), 0.0);
  std::fill(bacc_.begin(), bacc_.end(), 0.0);
  bden_ = 0.0;
  folded_ = 0;
}

void StreamingAccumulator::fold(const UpdateView& u, const FoldWeights& w,
                                bool per_neuron_merge) {
  const std::size_t p = geo_->param_count;
  if (u.params.size() != p) {
    throw std::invalid_argument("StreamingAccumulator::fold: size mismatch");
  }
  if (!u.trained_mask.empty() &&
      u.trained_mask.size() != geo_->neurons.size()) {
    throw std::invalid_argument("StreamingAccumulator::fold: bad mask size");
  }
  // Identical allowed-mask construction to Server::aggregate: common params
  // always accept; neuron-owned params only when the neuron trained.
  if (u.trained_mask.empty() || !per_neuron_merge) {
    std::fill(allowed_.begin(), allowed_.end(), std::uint8_t{1});
  } else {
    for (std::size_t f = 0; f < p; ++f) allowed_[f] = !geo_->neuron_owned[f];
    for (std::size_t j = 0; j < geo_->neurons.size(); ++j) {
      if (!u.trained_mask[j]) continue;
      for (const nn::FlatSlice& s : geo_->neurons[j].slices) {
        std::fill_n(
            allowed_.begin() + static_cast<std::ptrdiff_t>(s.offset),
            s.length, std::uint8_t{1});
      }
    }
  }
  for (std::size_t f = 0; f < p; ++f) {
    if (!allowed_[f]) continue;
    const double wf = geo_->neuron_owned[f] ? w.neuron : w.common;
    acc_[f] += wf * u.params[f];
    den_[f] += wf;
  }
  if (!bacc_.empty()) {
    if (u.buffers.size() != bacc_.size()) {
      throw std::invalid_argument(
          "StreamingAccumulator::fold: buffer size mismatch");
    }
    for (std::size_t f = 0; f < bacc_.size(); ++f) {
      bacc_[f] += w.common * u.buffers[f];
    }
    bden_ += w.common;
  }
  ++folded_;
}

void StreamingAccumulator::merge(const StreamingAccumulator& child) {
  if (child.acc_.size() != acc_.size() || child.bacc_.size() != bacc_.size()) {
    throw std::invalid_argument("StreamingAccumulator::merge: geometry mismatch");
  }
  for (std::size_t f = 0; f < acc_.size(); ++f) {
    acc_[f] += child.acc_[f];
    den_[f] += child.den_[f];
  }
  for (std::size_t f = 0; f < bacc_.size(); ++f) bacc_[f] += child.bacc_[f];
  bden_ += child.bden_;
  folded_ += child.folded_;
}

void StreamingAccumulator::finalize(std::span<float> global,
                                    std::span<float> buffers) const {
  if (global.size() != acc_.size() || buffers.size() != bacc_.size()) {
    throw std::invalid_argument(
        "StreamingAccumulator::finalize: size mismatch");
  }
  for (std::size_t f = 0; f < acc_.size(); ++f) {
    if (den_[f] > 0.0) global[f] = static_cast<float>(acc_[f] / den_[f]);
  }
  if (bden_ > 0.0) {
    for (std::size_t f = 0; f < bacc_.size(); ++f) {
      buffers[f] = static_cast<float>(bacc_[f] / bden_);
    }
  }
}

std::size_t StreamingAccumulator::frame_bytes(const ModelGeometry& geometry) {
  return kMergeHeaderBytes +
         sizeof(double) * (2 * geometry.param_count + geometry.buffer_count + 1) +
         kMergeTrailerBytes;
}

std::vector<std::uint8_t> StreamingAccumulator::encode_frame() const {
  std::vector<std::uint8_t> out;
  out.reserve(frame_bytes(*geo_));
  put_u32(out, kMergeMagic);
  put_u32(out, 0);
  put_u64(out, static_cast<std::uint64_t>(geo_->param_count));
  put_u64(out, static_cast<std::uint64_t>(geo_->buffer_count));
  put_u64(out, folded_);
  for (double v : acc_) put_f64(out, v);
  for (double v : den_) put_f64(out, v);
  for (double v : bacc_) put_f64(out, v);
  put_f64(out, bden_);
  put_u32(out, net::crc32({out.data(), out.size()}));
  return out;
}

StreamingAccumulator StreamingAccumulator::decode_frame(
    std::span<const std::uint8_t> frame, const ModelGeometry* geometry) {
  if (geometry == nullptr) {
    throw std::invalid_argument("decode_frame: null geometry");
  }
  if (frame.size() != frame_bytes(*geometry)) {
    throw net::WireError("merge frame: bad length");
  }
  if (get_u32(frame, 0) != kMergeMagic) {
    throw net::WireError("merge frame: bad magic");
  }
  const std::size_t body = frame.size() - kMergeTrailerBytes;
  if (net::crc32(frame.subspan(0, body)) != get_u32(frame, body)) {
    throw net::WireError("merge frame: CRC mismatch");
  }
  if (get_u64(frame, 8) != geometry->param_count ||
      get_u64(frame, 16) != geometry->buffer_count) {
    throw net::WireError("merge frame: geometry mismatch");
  }
  StreamingAccumulator a(geometry);
  a.folded_ = get_u64(frame, 24);
  std::size_t at = kMergeHeaderBytes;
  for (double& v : a.acc_) { v = get_f64(frame, at); at += 8; }
  for (double& v : a.den_) { v = get_f64(frame, at); at += 8; }
  for (double& v : a.bacc_) { v = get_f64(frame, at); at += 8; }
  a.bden_ = get_f64(frame, at);
  return a;
}

}  // namespace helios::agg
