#include "agg/accumulator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "codec/codec.h"
#include "net/wire.h"

namespace helios::agg {

namespace {

// Merge-frame layout (little-endian):
//   0   4  magic "HMF1"
//   4   4  MergeCodec id (pre-codec frames wrote 0 here = kF64)
//   8   8  param_count  (validated against the geometry)
//  16   8  buffer_count
//  24   8  folded update count
//  32   -  kF16 only: four f32 stream scales (acc, den, bacc, bden)
//   -   -  acc  values (param_count), den values (param_count),
//          bacc values (buffer_count), bden value — 8 B raw f64 bits
//          (kF64), 4 B f32 downcasts (kF32), or 2 B fp16 against the
//          stream scale (kF16)
//   -   4  CRC32 over every preceding byte
constexpr std::uint32_t kMergeMagic = 0x31464D48U;  // "HMF1"
constexpr std::size_t kMergeHeaderBytes = 32;
constexpr std::size_t kMergeTrailerBytes = 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  return v;
}

double get_f64(std::span<const std::uint8_t> in, std::size_t at) {
  const std::uint64_t bits = get_u64(in, at);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

ModelGeometry make_geometry(nn::Model& model) {
  ModelGeometry g;
  g.param_count = model.param_count();
  g.buffer_count = model.buffer_count();
  g.neuron_total = model.neuron_total();
  g.neurons = model.neurons();
  g.neuron_owned.assign(g.param_count, 0);
  for (const nn::NeuronInfo& n : g.neurons) {
    for (const nn::FlatSlice& s : n.slices) {
      std::fill_n(
          g.neuron_owned.begin() + static_cast<std::ptrdiff_t>(s.offset),
          s.length, std::uint8_t{1});
    }
  }
  return g;
}

std::vector<double> neuron_change_means(
    std::span<const nn::NeuronInfo> neurons, std::span<const float> before,
    std::span<const float> after, std::span<const std::uint8_t> mask) {
  std::vector<double> means(neurons.size(), 0.0);
  for (std::size_t j = 0; j < neurons.size(); ++j) {
    if (!mask.empty() && !mask[j]) continue;
    double change = 0.0;
    std::size_t params = 0;
    for (const nn::FlatSlice& s : neurons[j].slices) {
      if (s.offset + s.length > before.size() ||
          s.offset + s.length > after.size()) {
        throw std::out_of_range("neuron_change_means: slice out of range");
      }
      for (std::size_t f = s.offset; f < s.offset + s.length; ++f) {
        change += std::fabs(static_cast<double>(after[f]) - before[f]);
      }
      params += s.length;
    }
    if (params > 0) means[j] = change / static_cast<double>(params);
  }
  return means;
}

StreamingAccumulator::StreamingAccumulator(const ModelGeometry* geometry)
    : geo_(geometry) {
  if (geo_ == nullptr) {
    throw std::invalid_argument("StreamingAccumulator: null geometry");
  }
  acc_.assign(geo_->param_count, 0.0);
  den_.assign(geo_->param_count, 0.0);
  bacc_.assign(geo_->buffer_count, 0.0);
  allowed_.assign(geo_->param_count, 0);
}

void StreamingAccumulator::reset() {
  std::fill(acc_.begin(), acc_.end(), 0.0);
  std::fill(den_.begin(), den_.end(), 0.0);
  std::fill(bacc_.begin(), bacc_.end(), 0.0);
  bden_ = 0.0;
  folded_ = 0;
}

void StreamingAccumulator::fold(const UpdateView& u, const FoldWeights& w,
                                bool per_neuron_merge) {
  const std::size_t p = geo_->param_count;
  if (u.params.size() != p) {
    throw std::invalid_argument("StreamingAccumulator::fold: size mismatch");
  }
  if (!u.trained_mask.empty() &&
      u.trained_mask.size() != geo_->neurons.size()) {
    throw std::invalid_argument("StreamingAccumulator::fold: bad mask size");
  }
  // Identical allowed-mask construction to Server::aggregate: common params
  // always accept; neuron-owned params only when the neuron trained.
  if (u.trained_mask.empty() || !per_neuron_merge) {
    std::fill(allowed_.begin(), allowed_.end(), std::uint8_t{1});
  } else {
    for (std::size_t f = 0; f < p; ++f) allowed_[f] = !geo_->neuron_owned[f];
    for (std::size_t j = 0; j < geo_->neurons.size(); ++j) {
      if (!u.trained_mask[j]) continue;
      for (const nn::FlatSlice& s : geo_->neurons[j].slices) {
        std::fill_n(
            allowed_.begin() + static_cast<std::ptrdiff_t>(s.offset),
            s.length, std::uint8_t{1});
      }
    }
  }
  for (std::size_t f = 0; f < p; ++f) {
    if (!allowed_[f]) continue;
    const double wf = geo_->neuron_owned[f] ? w.neuron : w.common;
    acc_[f] += wf * u.params[f];
    den_[f] += wf;
  }
  if (!bacc_.empty()) {
    if (u.buffers.size() != bacc_.size()) {
      throw std::invalid_argument(
          "StreamingAccumulator::fold: buffer size mismatch");
    }
    for (std::size_t f = 0; f < bacc_.size(); ++f) {
      bacc_[f] += w.common * u.buffers[f];
    }
    bden_ += w.common;
  }
  ++folded_;
}

void StreamingAccumulator::merge(const StreamingAccumulator& child) {
  if (child.acc_.size() != acc_.size() || child.bacc_.size() != bacc_.size()) {
    throw std::invalid_argument("StreamingAccumulator::merge: geometry mismatch");
  }
  for (std::size_t f = 0; f < acc_.size(); ++f) {
    acc_[f] += child.acc_[f];
    den_[f] += child.den_[f];
  }
  for (std::size_t f = 0; f < bacc_.size(); ++f) bacc_[f] += child.bacc_[f];
  bden_ += child.bden_;
  folded_ += child.folded_;
}

void StreamingAccumulator::finalize(std::span<float> global,
                                    std::span<float> buffers) const {
  if (global.size() != acc_.size() || buffers.size() != bacc_.size()) {
    throw std::invalid_argument(
        "StreamingAccumulator::finalize: size mismatch");
  }
  for (std::size_t f = 0; f < acc_.size(); ++f) {
    if (den_[f] > 0.0) global[f] = static_cast<float>(acc_[f] / den_[f]);
  }
  if (bden_ > 0.0) {
    for (std::size_t f = 0; f < bacc_.size(); ++f) {
      buffers[f] = static_cast<float>(bacc_[f] / bden_);
    }
  }
}

bool merge_codec_known(std::uint32_t raw) {
  return raw <= static_cast<std::uint32_t>(MergeCodec::kF16);
}

namespace {

/// Total doubles a frame's payload carries: acc + den + bacc + bden.
std::size_t merge_value_count(const ModelGeometry& geometry) {
  return 2 * geometry.param_count + geometry.buffer_count + 1;
}

/// Per-value wire width for a codec's payload.
std::size_t merge_value_bytes(MergeCodec codec) {
  switch (codec) {
    case MergeCodec::kF64: return 8;
    case MergeCodec::kF32: return 4;
    case MergeCodec::kF16: return 2;
  }
  throw net::WireError("merge frame: unknown codec");
}

/// kF16 scale count: one f32 per stream (acc, den, bacc, bden).
constexpr std::size_t kF16ScaleCount = 4;

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

float get_f32(std::span<const std::uint8_t> in, std::size_t at) {
  const std::uint32_t bits = get_u32(in, at);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float stream_scale(std::span<const double> values) {
  double max_abs = 0.0;
  for (double v : values) {
    const double a = std::fabs(v);
    if (a > max_abs) max_abs = a;
  }
  return static_cast<float>(max_abs);
}

void put_f16_stream(std::vector<std::uint8_t>& out,
                    std::span<const double> values, float scale) {
  for (double v : values) {
    const float q = scale > 0.0f
                        ? static_cast<float>(v / static_cast<double>(scale))
                        : 0.0f;
    const std::uint16_t bits = codec::fp16_from_float(q);
    out.push_back(static_cast<std::uint8_t>(bits));
    out.push_back(static_cast<std::uint8_t>(bits >> 8));
  }
}

void get_f16_stream(std::span<const std::uint8_t> in, std::size_t& at,
                    float scale, std::span<double> values) {
  for (double& v : values) {
    const auto bits = static_cast<std::uint16_t>(
        in[at] | (static_cast<std::uint16_t>(in[at + 1]) << 8));
    at += 2;
    v = static_cast<double>(codec::fp16_to_float(bits)) *
        static_cast<double>(scale);
  }
}

}  // namespace

std::size_t StreamingAccumulator::frame_bytes(const ModelGeometry& geometry,
                                              MergeCodec codec) {
  return kMergeHeaderBytes +
         (codec == MergeCodec::kF16 ? kF16ScaleCount * sizeof(float) : 0) +
         merge_value_bytes(codec) * merge_value_count(geometry) +
         kMergeTrailerBytes;
}

std::vector<std::uint8_t> StreamingAccumulator::encode_frame(
    MergeCodec codec) const {
  std::vector<std::uint8_t> out;
  out.reserve(frame_bytes(*geo_, codec));
  put_u32(out, kMergeMagic);
  put_u32(out, static_cast<std::uint32_t>(codec));
  put_u64(out, static_cast<std::uint64_t>(geo_->param_count));
  put_u64(out, static_cast<std::uint64_t>(geo_->buffer_count));
  put_u64(out, folded_);
  switch (codec) {
    case MergeCodec::kF64:
      for (double v : acc_) put_f64(out, v);
      for (double v : den_) put_f64(out, v);
      for (double v : bacc_) put_f64(out, v);
      put_f64(out, bden_);
      break;
    case MergeCodec::kF32:
      for (double v : acc_) put_f32(out, static_cast<float>(v));
      for (double v : den_) put_f32(out, static_cast<float>(v));
      for (double v : bacc_) put_f32(out, static_cast<float>(v));
      put_f32(out, static_cast<float>(bden_));
      break;
    case MergeCodec::kF16: {
      const double bden_arr[1] = {bden_};
      const float s_acc = stream_scale(acc_);
      const float s_den = stream_scale(den_);
      const float s_bacc = stream_scale(bacc_);
      const float s_bden = stream_scale(bden_arr);
      put_f32(out, s_acc);
      put_f32(out, s_den);
      put_f32(out, s_bacc);
      put_f32(out, s_bden);
      put_f16_stream(out, acc_, s_acc);
      put_f16_stream(out, den_, s_den);
      put_f16_stream(out, bacc_, s_bacc);
      put_f16_stream(out, bden_arr, s_bden);
      break;
    }
  }
  put_u32(out, net::crc32({out.data(), out.size()}));
  return out;
}

StreamingAccumulator StreamingAccumulator::decode_frame(
    std::span<const std::uint8_t> frame, const ModelGeometry* geometry) {
  if (geometry == nullptr) {
    throw std::invalid_argument("decode_frame: null geometry");
  }
  if (frame.size() < kMergeHeaderBytes + kMergeTrailerBytes) {
    throw net::WireError("merge frame: bad length");
  }
  if (get_u32(frame, 0) != kMergeMagic) {
    throw net::WireError("merge frame: bad magic");
  }
  const std::uint32_t codec_raw = get_u32(frame, 4);
  if (!merge_codec_known(codec_raw)) {
    throw net::WireError("merge frame: unknown codec");
  }
  const auto codec = static_cast<MergeCodec>(codec_raw);
  if (frame.size() != frame_bytes(*geometry, codec)) {
    throw net::WireError("merge frame: bad length");
  }
  const std::size_t body = frame.size() - kMergeTrailerBytes;
  if (net::crc32(frame.subspan(0, body)) != get_u32(frame, body)) {
    throw net::WireError("merge frame: CRC mismatch");
  }
  if (get_u64(frame, 8) != geometry->param_count ||
      get_u64(frame, 16) != geometry->buffer_count) {
    throw net::WireError("merge frame: geometry mismatch");
  }
  StreamingAccumulator a(geometry);
  a.folded_ = get_u64(frame, 24);
  std::size_t at = kMergeHeaderBytes;
  switch (codec) {
    case MergeCodec::kF64:
      for (double& v : a.acc_) { v = get_f64(frame, at); at += 8; }
      for (double& v : a.den_) { v = get_f64(frame, at); at += 8; }
      for (double& v : a.bacc_) { v = get_f64(frame, at); at += 8; }
      a.bden_ = get_f64(frame, at);
      break;
    case MergeCodec::kF32:
      for (double& v : a.acc_) { v = get_f32(frame, at); at += 4; }
      for (double& v : a.den_) { v = get_f32(frame, at); at += 4; }
      for (double& v : a.bacc_) { v = get_f32(frame, at); at += 4; }
      a.bden_ = get_f32(frame, at);
      break;
    case MergeCodec::kF16: {
      const float s_acc = get_f32(frame, at);
      const float s_den = get_f32(frame, at + 4);
      const float s_bacc = get_f32(frame, at + 8);
      const float s_bden = get_f32(frame, at + 12);
      at += 16;
      get_f16_stream(frame, at, s_acc, a.acc_);
      get_f16_stream(frame, at, s_den, a.den_);
      get_f16_stream(frame, at, s_bacc, a.bacc_);
      double bden_arr[1];
      get_f16_stream(frame, at, s_bden, bden_arr);
      a.bden_ = bden_arr[0];
      break;
    }
  }
  return a;
}

}  // namespace helios::agg
