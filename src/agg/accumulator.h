// Streaming constant-memory aggregation.
//
// A StreamingAccumulator holds the weighted parameter sums (acc), the
// per-parameter weight mass (den) and the buffer sums of everything folded
// into it so far. An aggregator node decodes one frame, folds it, and
// discards it — memory is O(model), independent of how many devices fold.
//
// The fold replicates fl::Server::aggregate's arithmetic operation for
// operation (same allowed-mask construction, same accumulation order, same
// double-precision sums, same final float cast), so a single accumulator
// folding a round's updates in input order finalizes bit-identically to the
// pre-tree server loop.
//
// merge() adds a child accumulator's sums into a parent — exactly the
// associativity the tree relies on: fold(A ++ B) and merge(fold(A), fold(B))
// compute the same mathematical sums (identical up to floating-point
// summation order; exactly identical when the parent was empty, since
// 0 + x == x in IEEE arithmetic). Because den travels with acc ("weight-
// carrying"), dropping a late child and finalizing renormalizes over the
// remaining weight mass exactly — no re-weighting pass is needed.
//
// encode_frame/decode_frame serialize an accumulator into the merge frame
// that crosses a tier uplink. Payload doubles are raw IEEE bits, so a
// decode is bit-exact; a CRC32 guards the payload like the device wire
// format does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model.h"

namespace helios::agg {

/// Shared aggregation geometry derived from the reference model: which flat
/// parameters belong to some neuron, and each neuron's flat slices.
struct ModelGeometry {
  std::size_t param_count = 0;
  std::size_t buffer_count = 0;
  int neuron_total = 0;
  /// 1 where the flat parameter belongs to some neuron, 0 for common
  /// parameters (e.g. the classifier head).
  std::vector<std::uint8_t> neuron_owned;
  /// Per-neuron flat slices (copied from the model's neuron index).
  std::vector<nn::NeuronInfo> neurons;
};

ModelGeometry make_geometry(nn::Model& model);

/// Payload codec for tier-to-tier merge frames. The codec id rides in the
/// frame header (the formerly-reserved word), so a decoder accepts any
/// codec and pre-codec frames read as kF64.
enum class MergeCodec : std::uint32_t {
  /// Raw f64 bits — decode is bit-exact (the default, and the only codec
  /// that preserves the fold ≡ server-loop identity).
  kF64 = 0,
  /// f64 sums downcast to f32 on the wire (round-to-nearest).
  kF32 = 1,
  /// fp16 values against four per-stream f32 scales (acc / den / bacc /
  /// bden), scale = max |v| of the stream.
  kF16 = 2,
};

/// True when `raw` names a known MergeCodec.
bool merge_codec_known(std::uint32_t raw);

/// A borrowed view of one client update — the agg layer's decoupling from
/// fl::ClientUpdate (agg sits below fl).
struct UpdateView {
  int client_id = -1;
  std::span<const float> params;
  std::span<const float> buffers;
  /// Per-neuron trained flags (empty = full model trained).
  std::span<const std::uint8_t> trained_mask;
};

/// The two weights Server::aggregate computes per update: `common` applies
/// to non-neuron parameters and buffers, `neuron` to neuron-owned
/// parameters (Eq. 10 volume weighting included).
struct FoldWeights {
  double common = 1.0;
  double neuron = 1.0;
};

/// Per-neuron mean absolute parameter change between `before` and `after`,
/// restricted to the neurons set in `mask` (others stay 0). This is the
/// U^ij contribution statistic of core::SoftTrainer::update_contributions,
/// extracted so edge aggregators can compute a device's contribution shard
/// with bit-identical arithmetic (same slice order, same double sums).
std::vector<double> neuron_change_means(
    std::span<const nn::NeuronInfo> neurons, std::span<const float> before,
    std::span<const float> after, std::span<const std::uint8_t> mask);

class StreamingAccumulator {
 public:
  StreamingAccumulator() = default;
  /// `geometry` is shared and must outlive the accumulator.
  explicit StreamingAccumulator(const ModelGeometry* geometry);

  void reset();
  bool empty() const { return folded_ == 0; }
  /// Updates folded into this accumulator, children included.
  std::uint64_t folded() const { return folded_; }

  /// Folds one update: params accumulate under the allowed mask (common
  /// params always; neuron-owned params only when the neuron trained, or
  /// everywhere when `per_neuron_merge` is off), buffers accumulate under
  /// the common weight. Mirrors Server::aggregate bit for bit.
  void fold(const UpdateView& u, const FoldWeights& w, bool per_neuron_merge);

  /// Adds a child's sums (same geometry) into this accumulator.
  void merge(const StreamingAccumulator& child);

  /// Writes the weighted means into `global` / `buffers`; indices no folded
  /// update was allowed to write (den == 0) keep their previous values.
  void finalize(std::span<float> global, std::span<float> buffers) const;

  // -- Merge frames ---------------------------------------------------------

  /// Frame size in bytes for an accumulator of this geometry (fixed per
  /// codec: the weight-carrying payload is dense regardless of how many
  /// devices fed it).
  static std::size_t frame_bytes(const ModelGeometry& geometry,
                                 MergeCodec codec = MergeCodec::kF64);
  /// Serializes the sums into a weight-carrying merge frame. kF64 decodes
  /// bit-exactly; kF32/kF16 trade precision for tier-uplink bytes.
  std::vector<std::uint8_t> encode_frame(
      MergeCodec codec = MergeCodec::kF64) const;
  /// Decodes a merge frame of any known codec (geometry must match; CRC
  /// checked). A kF64 frame decodes bit-identically to the encoded
  /// accumulator.
  static StreamingAccumulator decode_frame(std::span<const std::uint8_t> frame,
                                           const ModelGeometry* geometry);

  // Raw sums — exposed for tests and checkpointing.
  const std::vector<double>& acc() const { return acc_; }
  const std::vector<double>& den() const { return den_; }
  const std::vector<double>& buffer_acc() const { return bacc_; }
  double buffer_den() const { return bden_; }

 private:
  const ModelGeometry* geo_ = nullptr;
  std::vector<double> acc_;   // sum of w * param, per flat index
  std::vector<double> den_;   // sum of w, per flat index
  std::vector<double> bacc_;  // sum of common_w * buffer
  double bden_ = 0.0;         // sum of common_w
  std::uint64_t folded_ = 0;
  std::vector<std::uint8_t> allowed_;  // per-fold scratch
};

}  // namespace helios::agg
