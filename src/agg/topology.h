// Aggregator-tree topology: edge -> (regional ->) root.
//
// A TreeTopology places every device under an edge aggregator
// (device_id % edge_nodes — stable under churn: a joiner lands on an edge
// without moving anyone else), optionally groups edges under regional
// aggregators (`fanout` edges per regional), and describes the simulated
// uplink each merge frame crosses on its way to the root. edge_nodes == 0
// disables the tree entirely (the flat single-server path); edge_nodes == 1
// is a depth-2 tree whose single edge folds the whole cohort — bit-identical
// to the flat path, because merging one accumulator into zero-initialized
// accumulators is exact.
//
// Deadline semantics compose per tier: a merge frame that settles after the
// tier's deadline is excluded from its parent's fold, and because merge
// frames are weight-carrying (they ship the weight mass alongside the
// weighted sums), the parent's finalization renormalizes over the arrivals
// exactly — a late edge node renormalizes identically to a late device set.
#pragma once

#include <cstdint>

#include "net/channel.h"

namespace helios::agg {

struct TreeTopology {
  /// Number of edge aggregators. 0 = tree disabled (flat aggregation).
  int edge_nodes = 0;
  /// Edges per regional aggregator. 0 (or >= edge_nodes) = no regional
  /// tier: edges forward straight to the root (depth 2).
  int fanout = 0;

  /// Uplink carrying edge -> parent merge frames (bandwidth 0 = use
  /// `link_bandwidth_mbps`). Loss/jitter draw from the tree's own forked
  /// RNG streams, one per node, so outcomes are independent of device
  /// traffic and of each other.
  net::ChannelConfig edge_link;
  /// Uplink carrying regional -> root merge frames (depth-3 trees only).
  net::ChannelConfig regional_link;
  /// Fallback uplink bandwidth (MB/s) when a link config leaves 0 —
  /// aggregator nodes are infrastructure, not phones.
  double link_bandwidth_mbps = 1000.0;

  /// Tier deadlines, virtual seconds from round start (0 = none). A merge
  /// frame settling after its tier's deadline is dropped from the parent
  /// fold; the weight-carrying frames make the resulting renormalization
  /// exact.
  double edge_deadline_s = 0.0;
  double root_deadline_s = 0.0;

  /// Per-link retransmit policy (mirrors net::NetworkOptions).
  int max_retries = 2;
  double retry_backoff_s = 0.02;

  /// Seed of the per-node link RNG streams: Rng(seed).fork(tier).fork(node).
  std::uint64_t seed = 97;

  bool active() const { return edge_nodes > 0; }
  /// Number of regional aggregators (0 = edges feed the root directly).
  int regional_nodes() const {
    return (fanout > 0 && fanout < edge_nodes)
               ? (edge_nodes + fanout - 1) / fanout
               : 0;
  }
  /// Tree depth counting the root: 1 = flat, 2 = edge->root,
  /// 3 = edge->regional->root.
  int depth() const {
    if (!active()) return 1;
    return regional_nodes() > 0 ? 3 : 2;
  }
  /// The edge aggregator serving `device_id` — a pure function of the id,
  /// so placement survives churn and checkpoint/resume without bookkeeping.
  int edge_of(int device_id) const {
    const int e = device_id % edge_nodes;
    return e < 0 ? e + edge_nodes : e;
  }
  int regional_of(int edge) const {
    return regional_nodes() > 0 ? edge / fanout : 0;
  }
};

}  // namespace helios::agg
