#include "agg/tree.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/thread_pool.h"

namespace helios::agg {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

AggregatorTree::AggregatorTree(const TreeTopology& topology,
                               const ModelGeometry* geometry,
                               MergeCodec codec)
    : topo_(topology), geo_(geometry), codec_(codec) {
  if (!topo_.active()) {
    throw std::invalid_argument("AggregatorTree: inactive topology");
  }
  if (geo_ == nullptr) {
    throw std::invalid_argument("AggregatorTree: null geometry");
  }
  util::Rng seed(topo_.seed);
  edges_.reserve(static_cast<std::size_t>(topo_.edge_nodes));
  edge_channels_.reserve(static_cast<std::size_t>(topo_.edge_nodes));
  util::Rng edge_seed = seed.fork(1);
  for (int e = 0; e < topo_.edge_nodes; ++e) {
    edges_.emplace_back(geo_);
    edge_channels_.emplace_back(topo_.edge_link, topo_.link_bandwidth_mbps,
                                edge_seed.fork(static_cast<std::uint64_t>(e)));
  }
  const int regionals = topo_.regional_nodes();
  regionals_.reserve(static_cast<std::size_t>(regionals));
  regional_channels_.reserve(static_cast<std::size_t>(regionals));
  util::Rng regional_seed = seed.fork(2);
  for (int r = 0; r < regionals; ++r) {
    regionals_.emplace_back(geo_);
    regional_channels_.emplace_back(
        topo_.regional_link, topo_.link_bandwidth_mbps,
        regional_seed.fork(static_cast<std::uint64_t>(r)));
  }
  root_ = StreamingAccumulator(geo_);
  staged_.resize(static_cast<std::size_t>(topo_.edge_nodes));
  begin_round();
}

void AggregatorTree::begin_round() {
  for (auto& e : edges_) e.reset();
  for (auto& r : regionals_) r.reset();
  root_.reset();
  for (auto& s : staged_) s.clear();
  contributions_.clear();
  relay_ran_ = false;
  stats_.clear();
  stats_.push_back({.tier = "edge"});
  if (!regionals_.empty()) stats_.push_back({.tier = "regional"});
  stats_.push_back({.tier = "root"});
}

void AggregatorTree::fold(std::span<const UpdateView> updates,
                          std::span<const FoldWeights> weights,
                          bool per_neuron_merge,
                          std::span<const float> contribution_base) {
  if (updates.size() != weights.size()) {
    throw std::invalid_argument("AggregatorTree::fold: weights mismatch");
  }
  // Partition update indices per edge, preserving span order within an
  // edge — the sequential fold order each edge follows.
  std::vector<std::vector<std::size_t>> per_edge(edges_.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    per_edge[static_cast<std::size_t>(topo_.edge_of(updates[i].client_id))]
        .push_back(i);
  }
  const auto t0 = std::chrono::steady_clock::now();
  // Edges are independent (distinct accumulators, disjoint devices), so the
  // fan-out is across edges; within one edge the fold is sequential, which
  // keeps results bit-identical at any thread count.
  util::parallel_for(
      0, static_cast<std::int64_t>(edges_.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t e = lo; e < hi; ++e) {
          const auto idx = static_cast<std::size_t>(e);
          for (std::size_t i : per_edge[idx]) {
            edges_[idx].fold(updates[i], weights[i], per_neuron_merge);
            if (!contribution_base.empty() &&
                !updates[i].trained_mask.empty()) {
              staged_[idx].emplace_back(
                  updates[i].client_id,
                  neuron_change_means(geo_->neurons, contribution_base,
                                      updates[i].params,
                                      updates[i].trained_mask));
            }
          }
        }
      });
  TierStats& edge_stats = stats_.front();
  edge_stats.fold_seconds += seconds_since(t0);
  edge_stats.frames_folded += updates.size();
  // Root-side exact merge of the bookkeeping shards: devices are
  // partitioned across edges, so concatenating in edge order is a disjoint
  // union — no value is ever combined with another.
  for (auto& s : staged_) {
    for (auto& entry : s) contributions_.push_back(std::move(entry));
    s.clear();
  }
}

void AggregatorTree::collapse() {
  const auto t0 = std::chrono::steady_clock::now();
  const bool depth3 = !regionals_.empty();
  TierStats& root_stats = stats_.back();
  // Merging child frames is the parent tier's folding work: edge frames
  // land on the regionals (the root at depth 2), regional frames on the
  // root.
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].empty()) continue;
    // The tier crossing: the edge serializes its accumulator, the parent
    // decodes and merges, and the edge-side copy is conceptually discarded.
    const std::vector<std::uint8_t> frame = edges_[e].encode_frame(codec_);
    // In simulated mode relay() already accounted the wire bytes (rider and
    // retransmits included); count payload bytes here only on the ideal /
    // pass-through path.
    if (!relay_ran_) {
      stats_.front().bytes_forwarded += frame.size();
      stats_.front().raw_bytes +=
          StreamingAccumulator::frame_bytes(*geo_, MergeCodec::kF64);
    }
    StreamingAccumulator decoded =
        StreamingAccumulator::decode_frame(frame, geo_);
    if (depth3) {
      regionals_[static_cast<std::size_t>(
                     topo_.regional_of(static_cast<int>(e)))]
          .merge(decoded);
      stats_[1].frames_folded += 1;
    } else {
      root_.merge(decoded);
      root_stats.frames_folded += 1;
    }
  }
  if (depth3) {
    stats_[1].fold_seconds += seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    for (auto& r : regionals_) {
      if (r.empty()) continue;
      const std::vector<std::uint8_t> frame = r.encode_frame(codec_);
      if (!relay_ran_) {
        stats_[1].bytes_forwarded += frame.size();
        stats_[1].raw_bytes +=
            StreamingAccumulator::frame_bytes(*geo_, MergeCodec::kF64);
      }
      root_.merge(StreamingAccumulator::decode_frame(frame, geo_));
      root_stats.frames_folded += 1;
    }
    root_stats.fold_seconds += seconds_since(t1);
  } else {
    root_stats.fold_seconds += seconds_since(t0);
  }
}

void AggregatorTree::finalize(std::span<float> global,
                              std::span<float> buffers) const {
  root_.finalize(global, buffers);
}

AggregatorTree::LinkDelivery AggregatorTree::send_link(
    net::SimulatedChannel& chan, std::size_t bytes, double ready_at,
    double deadline_abs_s) {
  LinkDelivery d;
  d.settle_s = ready_at;
  double t = ready_at;
  int transmissions = 0;
  while (true) {
    const net::SimulatedChannel::Attempt a = chan.try_send(bytes, t);
    if (a.bytes > 0) ++transmissions;
    d.bytes_on_wire += a.bytes;
    d.settle_s = a.finish_s;
    if (a.outcome == net::SimulatedChannel::Attempt::Outcome::kDelivered) {
      d.delivered = true;
      break;
    }
    if (a.outcome == net::SimulatedChannel::Attempt::Outcome::kDead) break;
    if (a.outcome == net::SimulatedChannel::Attempt::Outcome::kBlocked) {
      t = a.finish_s;  // outage: wait it out, no retry budget consumed
      continue;
    }
    ++d.lost_frames;
    if (transmissions > topo_.max_retries) break;
    double backoff = topo_.retry_backoff_s;
    for (int k = 1; k < transmissions; ++k) backoff *= 2.0;
    t = a.finish_s + backoff;
  }
  d.retransmits = std::max(0, transmissions - 1);
  if (d.delivered && deadline_abs_s > 0.0 && d.settle_s > deadline_abs_s) {
    d.deadline_missed = true;
  }
  return d;
}

RelayOutcome AggregatorTree::relay(std::span<const double> edge_ready,
                                   std::span<const std::size_t> edge_extra_bytes,
                                   double round_start_s) {
  if (edge_ready.size() != edges_.size() ||
      edge_extra_bytes.size() != edges_.size()) {
    throw std::invalid_argument("AggregatorTree::relay: bad edge count");
  }
  relay_ran_ = true;
  const std::size_t frame = merge_frame_bytes();
  const std::size_t raw_frame =
      StreamingAccumulator::frame_bytes(*geo_, MergeCodec::kF64);
  const double edge_deadline =
      topo_.edge_deadline_s > 0.0 ? round_start_s + topo_.edge_deadline_s : 0.0;
  const double root_deadline =
      topo_.root_deadline_s > 0.0 ? round_start_s + topo_.root_deadline_s : 0.0;
  const bool depth3 = !regionals_.empty();

  RelayOutcome out;
  out.edge_on_time.assign(edges_.size(), 0);
  out.close_s = round_start_s;

  // Shared accounting, mirroring RoundProtocol round-close semantics: an
  // accepted frame advances the close to its settle time; a miss makes the
  // parent wait until the tier deadline; a lost frame without a deadline
  // closes when the sender provably gives up (bounded retries).
  auto account = [&](const LinkDelivery& d, double deadline, TierStats& ts) {
    out.bytes_on_wire += d.bytes_on_wire;
    out.retransmits += d.retransmits;
    out.lost_frames += d.lost_frames;
    ts.bytes_forwarded += d.bytes_on_wire;
    ts.retransmits += d.retransmits;
    ts.lost_frames += d.lost_frames;
    const bool ok = d.delivered && !d.deadline_missed;
    if (ok) {
      out.close_s = std::max(out.close_s, d.settle_s);
      return true;
    }
    if (deadline > 0.0) {
      ++out.deadline_misses;
      ++ts.deadline_misses;
      out.close_s = std::max(out.close_s, deadline);
    } else {
      out.close_s = std::max(out.close_s, d.settle_s);
    }
    return false;
  };

  // Edge uplinks: one merge frame (plus bookkeeping rider) per edge that
  // holds anything, sent the moment its last device frame settled.
  struct Sent {
    bool ok = false;
    double settle_s = 0.0;
    std::size_t extra = 0;
  };
  std::vector<Sent> edge_sent(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edge_ready[e] < 0.0) continue;
    out.any_sent = true;
    const LinkDelivery d =
        send_link(edge_channels_[e], frame + edge_extra_bytes[e],
                  edge_ready[e], edge_deadline);
    stats_.front().raw_bytes += raw_frame + edge_extra_bytes[e];
    if (account(d, edge_deadline, stats_.front())) {
      edge_sent[e] = {true, d.settle_s, edge_extra_bytes[e]};
      if (!depth3) out.edge_on_time[e] = 1;
    }
  }
  if (!depth3) return out;

  // Regional uplinks: a regional forwards once its last on-time child edge
  // settled, carrying its children's riders along. An edge is on time
  // overall only if its regional's frame also reached the root in time —
  // deadline composition across tiers.
  for (std::size_t r = 0; r < regionals_.size(); ++r) {
    double ready = -1.0;
    std::size_t extra = 0;
    std::vector<std::size_t> children;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (!edge_sent[e].ok ||
          topo_.regional_of(static_cast<int>(e)) != static_cast<int>(r)) {
        continue;
      }
      ready = std::max(ready, edge_sent[e].settle_s);
      extra += edge_sent[e].extra;
      children.push_back(e);
    }
    if (ready < 0.0) continue;
    const LinkDelivery d =
        send_link(regional_channels_[r], frame + extra, ready, root_deadline);
    stats_[1].raw_bytes += raw_frame + extra;
    if (account(d, root_deadline, stats_[1])) {
      for (std::size_t e : children) out.edge_on_time[e] = 1;
    }
  }
  return out;
}

std::vector<util::RngState> AggregatorTree::channel_states() const {
  std::vector<util::RngState> states;
  states.reserve(edge_channels_.size() + regional_channels_.size());
  for (const auto& c : edge_channels_) states.push_back(c.rng_state());
  for (const auto& c : regional_channels_) states.push_back(c.rng_state());
  return states;
}

void AggregatorTree::set_channel_states(
    std::span<const util::RngState> states) {
  if (states.size() != edge_channels_.size() + regional_channels_.size()) {
    throw std::invalid_argument(
        "AggregatorTree::set_channel_states: state count mismatch");
  }
  std::size_t i = 0;
  for (auto& c : edge_channels_) c.set_rng_state(states[i++]);
  for (auto& c : regional_channels_) c.set_rng_state(states[i++]);
}

}  // namespace helios::agg
