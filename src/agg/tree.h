// The aggregator tree: edge -> (regional ->) root streaming aggregation.
//
// Round lifecycle (driven by fl::HierarchySession):
//
//   begin_round()                      reset accumulators, shards, stats
//   relay(edge_ready, extra, start)    simulated uplink timing (transport;
//                                      skipped in ideal / pass-through mode)
//   fold(updates, weights, ...)        edges fold their devices' updates
//   collapse()                         edge frames -> parents -> root
//   finalize(global, buffers)          weighted means of what reached root
//
// Memory is O(edges * model): each node owns one fixed StreamingAccumulator;
// device frames are folded and discarded, and a tier crossing is one
// encode/decode of a weight-carrying merge frame (bit-exact round-trip).
//
// Determinism: fold parallelizes ACROSS edges — each edge folds its own
// devices sequentially in input order, and collapse merges child frames in
// node-index order — so results are bit-identical at any thread count.
// Relay draws jitter/loss from per-node forked RNG streams
// (Rng(seed).fork(tier).fork(node)), independent of device traffic.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "agg/accumulator.h"
#include "agg/topology.h"
#include "net/channel.h"
#include "util/rng.h"

namespace helios::agg {

/// Per-tier rollup of the current round (index 0 = edge, then regional when
/// the tree is depth 3, last = root).
struct TierStats {
  const char* tier = "";             // "edge" | "regional" | "root"
  std::uint64_t frames_folded = 0;   // frames folded by this tier's nodes
  std::uint64_t bytes_forwarded = 0; // uplink bytes this tier transmitted
  /// What the forwarded payloads would have cost at kF64 (one per frame
  /// crossing, retransmits excluded) — the quantized-savings baseline.
  std::uint64_t raw_bytes = 0;
  int deadline_misses = 0;           // merge frames arriving past the tier deadline
  int retransmits = 0;
  int lost_frames = 0;
  double fold_seconds = 0.0;         // wall-clock folding/merging at this tier
};

/// Outcome of one round's uplink relay simulation.
struct RelayOutcome {
  /// Per edge: its merge frame (and its regional's, at depth 3) was accepted
  /// by the parent chain in time. Edges with nothing to send stay 0.
  std::vector<std::uint8_t> edge_on_time;
  /// Absolute virtual time the root's last accepted input settled, or the
  /// governing deadline when something missed it. `round_start` when no edge
  /// had anything to send.
  double close_s = 0.0;
  bool any_sent = false;
  std::size_t bytes_on_wire = 0;
  int retransmits = 0;
  int lost_frames = 0;
  int deadline_misses = 0;
};

class AggregatorTree {
 public:
  /// `geometry` is shared and must outlive the tree. Requires
  /// `topology.active()`. `codec` sets the tier-uplink merge-frame payload
  /// encoding (kF64 keeps the bit-exact collapse).
  AggregatorTree(const TreeTopology& topology, const ModelGeometry* geometry,
                 MergeCodec codec = MergeCodec::kF64);

  const TreeTopology& topology() const { return topo_; }
  const ModelGeometry& geometry() const { return *geo_; }
  MergeCodec merge_codec() const { return codec_; }
  /// Fixed uplink frame size for this geometry at the tree's codec
  /// (excluding bookkeeping riders).
  std::size_t merge_frame_bytes() const {
    return StreamingAccumulator::frame_bytes(*geo_, codec_);
  }

  // -- Aggregation path (server side) ---------------------------------------

  void begin_round();

  /// Folds each update into its edge's accumulator (updates[i] under
  /// weights[i]). When `contribution_base` is non-empty, each edge also
  /// computes the per-device U^ij contribution shard of its masked updates
  /// (mean |after - before| per trained neuron against the base snapshot).
  void fold(std::span<const UpdateView> updates,
            std::span<const FoldWeights> weights, bool per_neuron_merge,
            std::span<const float> contribution_base);

  /// Encodes every non-empty edge accumulator into a merge frame, decodes it
  /// at the parent and merges — regional tier first (depth 3), then root.
  /// Late edges were already excluded upstream (their devices never reached
  /// fold), so every frame here merges.
  void collapse();

  /// Weighted means of everything that reached the root; indices nothing
  /// wrote keep their previous values (exact renormalization over arrivals).
  void finalize(std::span<float> global, std::span<float> buffers) const;

  std::uint64_t root_folded() const { return root_.folded(); }

  /// The root's merged per-device contribution shards, in edge order then
  /// fold order within an edge. Devices are partitioned across edges
  /// (edge_of is a pure function of the id), so the merge is an exact
  /// disjoint union — no shard is ever combined with another.
  const std::vector<std::pair<int, std::vector<double>>>& contributions()
      const {
    return contributions_;
  }

  // -- Relay timing (transport side, simulated mode only) -------------------

  /// Simulates the uplink transfers for one round. `edge_ready[e]` is the
  /// absolute virtual time edge e holds its last accepted device frame
  /// (negative = nothing to send); `edge_extra_bytes[e]` rides bookkeeping
  /// shards on top of the fixed merge frame. Tier deadlines are absolute
  /// from `round_start_s`: `edge_deadline_s` governs the edge uplink,
  /// `root_deadline_s` the regional uplink (depth 3).
  RelayOutcome relay(std::span<const double> edge_ready,
                     std::span<const std::size_t> edge_extra_bytes,
                     double round_start_s);

  /// Current round's per-tier rollups (relay + fold + collapse combined).
  std::span<const TierStats> tier_stats() const { return stats_; }

  /// Uplink channels, for deterministic transfer-time queries and fault
  /// scripting (tests).
  net::SimulatedChannel& edge_channel(int e) {
    return edge_channels_.at(static_cast<std::size_t>(e));
  }
  const net::SimulatedChannel& edge_channel(int e) const {
    return edge_channels_.at(static_cast<std::size_t>(e));
  }
  net::SimulatedChannel& regional_channel(int r) {
    return regional_channels_.at(static_cast<std::size_t>(r));
  }
  const net::SimulatedChannel& regional_channel(int r) const {
    return regional_channels_.at(static_cast<std::size_t>(r));
  }

  // -- Checkpoint hooks ------------------------------------------------------
  // The cross-round mutable state is the uplink channels' RNG positions
  // (advanced by jitter/loss draws): edge channels in node order, then
  // regional channels. Accumulators and shards live only within a round.
  std::vector<util::RngState> channel_states() const;
  void set_channel_states(std::span<const util::RngState> states);

 private:
  /// One uplink send with bounded retransmits (mirrors
  /// net::RoundProtocol::send_with_retries; aggregator nodes cannot die).
  struct LinkDelivery {
    bool delivered = false;
    bool deadline_missed = false;
    double settle_s = 0.0;
    std::size_t bytes_on_wire = 0;
    int retransmits = 0;
    int lost_frames = 0;
  };
  LinkDelivery send_link(net::SimulatedChannel& chan, std::size_t bytes,
                         double ready_at, double deadline_abs_s);

  TreeTopology topo_;
  const ModelGeometry* geo_;
  MergeCodec codec_ = MergeCodec::kF64;
  std::vector<StreamingAccumulator> edges_;
  std::vector<StreamingAccumulator> regionals_;
  StreamingAccumulator root_;
  std::vector<net::SimulatedChannel> edge_channels_;
  std::vector<net::SimulatedChannel> regional_channels_;
  /// Per-edge staged (device, U^ij shard) pairs, concatenated into
  /// contributions_ at the end of fold.
  std::vector<std::vector<std::pair<int, std::vector<double>>>> staged_;
  std::vector<std::pair<int, std::vector<double>>> contributions_;
  std::vector<TierStats> stats_;
  /// True once relay() ran this round: wire bytes were then accounted by the
  /// relay and collapse must not double-count them.
  bool relay_ran_ = false;
};

}  // namespace helios::agg
