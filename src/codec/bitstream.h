// LSB-first bitstream packing for codec payloads.
//
// Values are appended least-significant-bit first into a growing byte
// vector, so a width-8 stream is byte-identical to plain bytes and a
// width-16 stream to little-endian u16s — the packed layout stays
// platform-stable regardless of host endianness or how the widths mix.
// The reader throws CodecError on overrun, never reads past its span, and
// exposes its byte position so framing layers can verify exact consumption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace helios::codec {

/// Malformed codec input: NaN/Inf payloads, unknown codec ids, truncated or
/// oversized packed streams.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Appends the low `bits` bits of `value`, LSB first. bits in [1, 64].
  void put(std::uint64_t value, unsigned bits) {
    for (unsigned b = 0; b < bits; ++b) {
      if (fill_ == 0) {
        out_.push_back(0);
        at_ = out_.size() - 1;
      }
      if ((value >> b) & 1U) {
        out_[at_] |= static_cast<std::uint8_t>(1U << fill_);
      }
      fill_ = (fill_ + 1) % 8;
    }
  }

  /// Pads the current byte with zero bits (no-op when already aligned).
  void align() { fill_ = 0; }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t at_ = 0;
  unsigned fill_ = 0;  // bits already used in out_[at_]
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `bits` bits, LSB first. Throws CodecError past the end.
  std::uint64_t get(unsigned bits) {
    std::uint64_t v = 0;
    for (unsigned b = 0; b < bits; ++b) {
      if (at_ >= bytes_.size()) {
        throw CodecError("codec: packed stream truncated");
      }
      if ((bytes_[at_] >> fill_) & 1U) v |= std::uint64_t{1} << b;
      fill_ = (fill_ + 1) % 8;
      if (fill_ == 0) ++at_;
    }
    return v;
  }

  /// Skips any partial byte (mirror of BitWriter::align).
  void align() {
    if (fill_ != 0) {
      fill_ = 0;
      ++at_;
    }
  }

  /// Bytes fully or partially consumed so far.
  std::size_t consumed() const { return at_ + (fill_ != 0 ? 1 : 0); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  unsigned fill_ = 0;
};

}  // namespace helios::codec
