#include "codec/codec.h"

#include <bit>
#include <cmath>
#include <string>

namespace helios::codec {
namespace {

constexpr std::uint8_t kZeroEscape = 0x80;  // -128: never a clamped q
constexpr int kZeroRunMin = 3;              // shortest run worth escaping
constexpr int kZeroRunMax = 255;            // u8 run length

const CodecInfo kCodecs[] = {
    {CodecId::kFp32, "fp32", 32, false, false, false},
    {CodecId::kFp16, "fp16", 16, false, false, false},
    {CodecId::kInt8PerTensor, "int8", 8, true, false, true},
    {CodecId::kInt8PerNeuron, "int8pn", 8, true, true, true},
};

std::uint32_t group_of(std::span<const std::uint32_t> groups, std::size_t i) {
  return groups.empty() ? 0U : groups[i];
}

/// clamp(lround(v / s), -127, +127) in double — half-away-from-zero, the
/// platform-stable rounding rule the header documents. s == 0 (an all-zero
/// group) maps everything to 0.
int int8_quantize(float v, float s) {
  if (!(s > 0.0f)) return 0;
  const long q =
      std::lround(static_cast<double>(v) / static_cast<double>(s));
  return q > 127 ? 127 : (q < -127 ? -127 : static_cast<int>(q));
}

float int8_dequantize(int q, float s) {
  return static_cast<float>(static_cast<double>(q) * static_cast<double>(s));
}

void check_plan(const QuantPlan& plan, std::span<const float> values,
                std::span<const std::uint32_t> groups) {
  const CodecInfo& info = codec_info(plan.id);
  if (!groups.empty() && groups.size() != values.size()) {
    throw CodecError("codec: group tags do not match the value stream");
  }
  if (info.scaled) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (group_of(groups, i) >= plan.scale_bits.size()) {
        throw CodecError("codec: value tagged with an unknown group");
      }
    }
  }
}

}  // namespace

const CodecInfo& codec_info(CodecId id) {
  for (const CodecInfo& c : kCodecs) {
    if (c.id == id) return c;
  }
  throw CodecError("codec: unknown codec id " +
                   std::to_string(static_cast<std::uint32_t>(id)));
}

bool codec_known(std::uint32_t raw) {
  for (const CodecInfo& c : kCodecs) {
    if (static_cast<std::uint32_t>(c.id) == raw) return true;
  }
  return false;
}

CodecId codec_from_name(std::string_view name) {
  if (name == "auto") return CodecId::kAuto;
  for (const CodecInfo& c : kCodecs) {
    if (name == c.name) return c.id;
  }
  throw CodecError("codec: unknown codec name \"" + std::string(name) + "\"");
}

const char* codec_name(CodecId id) {
  if (id == CodecId::kAuto) return "auto";
  return codec_info(id).name;
}

std::uint16_t fp16_from_float(float v) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000U);
  const std::uint32_t abs = bits & 0x7FFFFFFFU;
  const std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
  const std::uint32_t mant = abs & 0x007FFFFFU;
  if (exp > 15) {
    // Inf/NaN (rejected upstream) and everything past the fp16 range
    // saturate to the largest finite half, +-65504.
    return static_cast<std::uint16_t>(sign | 0x7BFFU);
  }
  std::uint32_t h;
  if (exp >= -14) {
    // Normal half: drop 13 mantissa bits with round-to-nearest-even; a
    // mantissa carry rolls into the exponent field arithmetically.
    const std::uint32_t lsb = (mant >> 13) & 1U;
    const std::uint32_t round = (mant >> 12) & 1U;
    const bool sticky = (mant & 0x0FFFU) != 0;
    std::uint32_t hm = mant >> 13;
    if (round && (sticky || lsb)) ++hm;
    h = (static_cast<std::uint32_t>(exp + 15) << 10) + hm;
    if (h >= 0x7C00U) h = 0x7BFFU;  // rounded up into Inf: saturate
  } else if (exp >= -25) {
    // Subnormal half: the implicit bit becomes explicit and the whole
    // significand shifts right, still rounding to nearest-even.
    const std::uint32_t m = mant | 0x00800000U;
    const unsigned shift = static_cast<unsigned>(13 + (-14 - exp));
    std::uint32_t hm = m >> shift;
    const std::uint32_t round = (m >> (shift - 1)) & 1U;
    const bool sticky = (m & ((1U << (shift - 1)) - 1U)) != 0;
    if (round && (sticky || (hm & 1U))) ++hm;
    h = hm;  // a carry lands exactly on the smallest normal half
  } else {
    h = 0;  // underflows to (signed) zero
  }
  return static_cast<std::uint16_t>(sign | h);
}

float fp16_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  std::uint32_t mant = h & 0x03FFU;
  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // +-0
    } else {
      // Subnormal half: renormalize into a float.
      unsigned shift = 0;
      while ((mant & 0x0400U) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x03FFU;
      f = sign | ((113U - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1FU) {
    f = sign | 0x7F800000U | (mant << 13);  // Inf/NaN (never emitted here)
  } else {
    f = sign | ((exp + 112U) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

void reject_non_finite(std::span<const float> values, const char* what) {
  for (float v : values) {
    if (!std::isfinite(v)) {
      throw CodecError(std::string("codec: non-finite value in ") + what);
    }
  }
}

QuantPlan plan_quantization(CodecId id, std::span<const float> values,
                            std::span<const std::uint32_t> groups,
                            std::size_t group_count) {
  const CodecInfo& info = codec_info(id);
  if (!groups.empty() && groups.size() != values.size()) {
    throw CodecError("codec: group tags do not match the value stream");
  }
  reject_non_finite(values, "payload");
  QuantPlan plan;
  plan.id = id;
  if (!info.scaled) return plan;
  if (group_count == 0 && !values.empty()) {
    throw CodecError("codec: scaled codec needs at least one group");
  }
  std::vector<float> max_abs(group_count, 0.0f);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint32_t g = group_of(groups, i);
    if (g >= group_count) {
      throw CodecError("codec: value tagged with an unknown group");
    }
    const float a = std::fabs(values[i]);
    if (a > max_abs[g]) max_abs[g] = a;
  }
  plan.scale_bits.resize(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    // The fp16-rounded scale is the canonical one — quantization and
    // dequantization both use the exact value that crosses the wire.
    plan.scale_bits[g] = fp16_from_float(
        static_cast<float>(static_cast<double>(max_abs[g]) / 127.0));
  }
  return plan;
}

std::size_t encode_values(const QuantPlan& plan, std::span<const float> values,
                          std::span<const std::uint32_t> groups,
                          std::vector<std::uint8_t>& out) {
  check_plan(plan, values, groups);
  const CodecInfo& info = codec_info(plan.id);
  const std::size_t start = out.size();
  BitWriter w(out);
  if (info.zero_rle) {
    int run = 0;
    auto flush = [&] {
      while (run >= kZeroRunMin) {
        const int chunk = run < kZeroRunMax ? run : kZeroRunMax;
        w.put(kZeroEscape, 8);
        w.put(static_cast<std::uint64_t>(chunk), 8);
        run -= chunk;
      }
      for (; run > 0; --run) w.put(0, 8);
    };
    for (std::size_t i = 0; i < values.size(); ++i) {
      const int q =
          int8_quantize(values[i], plan.scale(group_of(groups, i)));
      if (q == 0) {
        ++run;
        continue;
      }
      flush();
      w.put(static_cast<std::uint8_t>(q), 8);
    }
    flush();
  } else if (plan.id == CodecId::kFp16) {
    for (float v : values) w.put(fp16_from_float(v), 16);
  } else {  // kFp32
    for (float v : values) w.put(std::bit_cast<std::uint32_t>(v), 32);
  }
  w.align();
  return out.size() - start;
}

std::vector<float> decode_values(const QuantPlan& plan,
                                 std::span<const std::uint8_t> payload,
                                 std::span<const std::uint32_t> groups,
                                 std::size_t count) {
  if (!groups.empty() && groups.size() != count) {
    throw CodecError("codec: group tags do not match the value stream");
  }
  const CodecInfo& info = codec_info(plan.id);
  std::vector<float> values;
  values.reserve(count);
  BitReader r(payload);
  if (info.zero_rle) {
    while (values.size() < count) {
      const auto b = static_cast<std::uint8_t>(r.get(8));
      if (b == kZeroEscape) {
        const auto run = static_cast<std::size_t>(r.get(8));
        if (run < static_cast<std::size_t>(kZeroRunMin) ||
            values.size() + run > count) {
          throw CodecError("codec: corrupt zero run");
        }
        values.insert(values.end(), run, 0.0f);
        continue;
      }
      const int q = static_cast<std::int8_t>(b);
      const std::uint32_t g = group_of(groups, values.size());
      if (g >= plan.scale_bits.size()) {
        throw CodecError("codec: value tagged with an unknown group");
      }
      values.push_back(int8_dequantize(q, plan.scale(g)));
    }
  } else if (plan.id == CodecId::kFp16) {
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(
          fp16_to_float(static_cast<std::uint16_t>(r.get(16))));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(
          std::bit_cast<float>(static_cast<std::uint32_t>(r.get(32))));
    }
  }
  r.align();
  if (r.consumed() != payload.size()) {
    throw CodecError("codec: packed stream has trailing bytes");
  }
  return values;
}

float dequantize_one(const QuantPlan& plan, float value, std::uint32_t group) {
  const CodecInfo& info = codec_info(plan.id);
  if (info.scaled) {
    if (group >= plan.scale_bits.size()) {
      throw CodecError("codec: value tagged with an unknown group");
    }
    const float s = plan.scale(group);
    return int8_dequantize(int8_quantize(value, s), s);
  }
  if (plan.id == CodecId::kFp16) return fp16_to_float(fp16_from_float(value));
  return value;  // kFp32
}

std::vector<float> dequantized_values(const QuantPlan& plan,
                                      std::span<const float> values,
                                      std::span<const std::uint32_t> groups) {
  check_plan(plan, values, groups);
  std::vector<float> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(dequantize_one(plan, values[i], group_of(groups, i)));
  }
  return out;
}

std::size_t payload_bytes(const QuantPlan& plan, std::span<const float> values,
                          std::span<const std::uint32_t> groups) {
  check_plan(plan, values, groups);
  const CodecInfo& info = codec_info(plan.id);
  if (!info.zero_rle) {
    return (values.size() * info.value_bits + 7) / 8;
  }
  std::size_t bytes = 0;
  int run = 0;
  auto flush = [&] {
    while (run >= kZeroRunMin) {
      const int chunk = run < kZeroRunMax ? run : kZeroRunMax;
      bytes += 2;
      run -= chunk;
    }
    bytes += static_cast<std::size_t>(run);
    run = 0;
  };
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (int8_quantize(values[i], plan.scale(group_of(groups, i))) == 0) {
      ++run;
    } else {
      flush();
      ++bytes;
    }
  }
  flush();
  return bytes;
}

}  // namespace helios::codec
