// Payload codecs for the wire formats: per-tensor and per-neuron scaled
// int8 and fp16 encodings of a float value stream.
//
// The layer sits between tensor and net: it knows nothing about frames,
// models or masks — callers hand it a flat value stream where each value is
// tagged with a dense *group* id (the wire layer derives groups from the
// model layout: one group per owning neuron plus a common group, or a
// single group for per-tensor codecs), and the codec quantizes each group
// against its own scale.
//
// Determinism contract (the reason every rounding rule is spelled out):
// encode -> decode is an exact function of the inputs on every platform the
// project targets, so the sender can predict the receiver's dequantized
// values bit-for-bit — which is what the error-feedback accumulators and
// the crash/resume bit-identity tests rely on.
//
//   * fp16 — software IEEE754 binary16 conversion, round-to-nearest-even,
//     saturating at +-65504 (no F16C / hardware dependence).
//   * int8 — per-group scale s = fp16(max|v| / 127) (the scale itself is
//     stored and applied as the fp16-rounded value, so both sides use the
//     identical grid); q = clamp(lround(v / s), -127, +127) evaluated in
//     double (half-away-from-zero, the C standard's lround); dequantized
//     value = float(q * s) in double arithmetic. q = 0 whenever s == 0
//     (an all-zero group).
//
// int8 payloads ride a zero-run escape: the byte 0x80 (never a valid q —
// the clamp is symmetric) followed by a u8 run length encodes a run of
// >= 3 zero values, so the frequent exact-zero deltas of a training update
// compress without any expansion in the worst case.
//
// NaN/Inf inputs are rejected with CodecError — a quantized frame must
// never launder a non-finite value into the aggregation path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "codec/bitstream.h"

namespace helios::codec {

/// Registry of payload codecs. Fixed ids — they appear in wire frames.
enum class CodecId : std::uint32_t {
  kFp32 = 0,           // raw IEEE754 bits; the v1 wire format's encoding
  kFp16 = 1,           // binary16, round-to-nearest-even
  kInt8PerTensor = 2,  // one scale for the whole payload
  kInt8PerNeuron = 3,  // one scale per owning neuron (+ the common group)
  /// Dispatch-time only: pick whichever concrete codec yields the smallest
  /// frame. Never appears on the wire.
  kAuto = 0xFFFFFFFFU,
};

struct CodecInfo {
  CodecId id = CodecId::kFp32;
  const char* name = "";
  /// Packed payload bits per value (before zero-run coding).
  unsigned value_bits = 32;
  /// Carries per-group fp16 scales.
  bool scaled = false;
  /// Scale groups follow neuron ownership (else a single group).
  bool per_neuron_groups = false;
  /// Payload uses the zero-run escape coding.
  bool zero_rle = false;
};

/// Codec metadata; throws CodecError for kAuto or an unknown id.
const CodecInfo& codec_info(CodecId id);
/// True when `raw` names a concrete (wire-encodable) codec.
bool codec_known(std::uint32_t raw);
/// Parses "fp32" / "fp16" / "int8" / "int8pn" / "auto" (bench/CLI surface).
CodecId codec_from_name(std::string_view name);
/// Short name for reports ("fp32", "fp16", "int8", "int8pn", "auto").
const char* codec_name(CodecId id);

// ---- fp16 ------------------------------------------------------------------

/// float -> binary16 bits, round-to-nearest-even, saturating at +-65504.
std::uint16_t fp16_from_float(float v);
/// binary16 bits -> float (exact).
float fp16_to_float(std::uint16_t h);

/// Throws CodecError when any value is NaN or +-Inf.
void reject_non_finite(std::span<const float> values, const char* what);

// ---- Group-scaled quantization ---------------------------------------------

/// The per-group scales of one encoded payload. For unscaled codecs
/// (fp32/fp16) the scale list is empty.
struct QuantPlan {
  CodecId id = CodecId::kFp32;
  /// Per dense-group fp16 scale bit patterns, group 0 first. The fp16 bits
  /// are the canonical form — they are what crosses the wire.
  std::vector<std::uint16_t> scale_bits;

  float scale(std::size_t group) const {
    return fp16_to_float(scale_bits.at(group));
  }
};

/// Computes the quantization plan for a tagged value stream: values[i]
/// belongs to dense group groups[i] (an empty `groups` span means all
/// values are group 0). Rejects NaN/Inf values. `group_count` sizes the
/// scale list for scaled codecs.
QuantPlan plan_quantization(CodecId id, std::span<const float> values,
                            std::span<const std::uint32_t> groups,
                            std::size_t group_count);

/// Appends the packed payload of `values` under `plan` to `out`; returns
/// the number of bytes appended. The packing is byte-aligned at the end.
std::size_t encode_values(const QuantPlan& plan, std::span<const float> values,
                          std::span<const std::uint32_t> groups,
                          std::vector<std::uint8_t>& out);

/// Decodes exactly `count` values, consuming all of `payload` (throws
/// CodecError on a short or oversized stream).
std::vector<float> decode_values(const QuantPlan& plan,
                                 std::span<const std::uint8_t> payload,
                                 std::span<const std::uint32_t> groups,
                                 std::size_t count);

/// The dequantized values an encode -> decode round trip would produce,
/// without serializing — the sender-side mirror the error-feedback
/// accumulators difference against.
std::vector<float> dequantized_values(const QuantPlan& plan,
                                      std::span<const float> values,
                                      std::span<const std::uint32_t> groups);

/// Exact encoded payload size of `values` under `plan` (zero-run coding
/// makes this value-dependent for the int8 codecs).
std::size_t payload_bytes(const QuantPlan& plan, std::span<const float> values,
                          std::span<const std::uint32_t> groups);

/// One dequantized value (the decoder's exact arithmetic): fp16 round trip
/// for kFp16, scale-grid snap for the int8 codecs, identity for kFp32.
float dequantize_one(const QuantPlan& plan, float value, std::uint32_t group);

}  // namespace helios::codec
