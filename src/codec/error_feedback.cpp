#include "codec/error_feedback.h"

#include <cmath>
#include <utility>

#include "codec/bitstream.h"  // CodecError

namespace helios::codec {

std::vector<float>& ErrorFeedback::residual(int client_id,
                                            std::size_t param_count) {
  auto [it, inserted] = residuals_.try_emplace(client_id);
  if (inserted) {
    it->second.assign(param_count, 0.0f);
  } else if (it->second.size() != param_count) {
    throw CodecError("error feedback: residual length mismatch");
  }
  return it->second;
}

const std::vector<float>* ErrorFeedback::find(int client_id) const {
  const auto it = residuals_.find(client_id);
  return it == residuals_.end() ? nullptr : &it->second;
}

double ErrorFeedback::l2_norm(int client_id) const {
  const std::vector<float>* r = find(client_id);
  if (r == nullptr) return 0.0;
  double sq = 0.0;
  for (float v : *r) sq += static_cast<double>(v) * v;
  return std::sqrt(sq);
}

void ErrorFeedback::assign(int client_id, std::vector<float> residual) {
  residuals_[client_id] = std::move(residual);
}

}  // namespace helios::codec
