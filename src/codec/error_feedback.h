// Client-side error-feedback accumulators for quantized uploads.
//
// Quantization drops the sub-grid part of every update; error feedback
// carries that dropped part forward instead of losing it. Before encoding,
// a client adds its carried residual to the update delta; after encoding it
// stores the new residual
//
//   residual' = compensated_delta - dequant(quant(compensated_delta))
//
// so the quantization error of round t is re-submitted in round t+1 and the
// long-run average of what the server sees converges to the uncompressed
// updates (the EF-SGD line of work the compression extensions follow).
//
// The bank keys residuals by client id in an ordered map, so iteration —
// and therefore checkpoint serialization — is deterministic. Entries only
// exist for clients that have shipped a quantized frame; a residual is
// full-parameter-length but only the entries the client actually shipped
// ever become non-zero (unshipped neurons carry their residual forward
// untouched). The fl layer wraps the bank in a Checkpointable adapter so
// crash/resume restores every residual bit-identically.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace helios::codec {

class ErrorFeedback {
 public:
  bool empty() const { return residuals_.empty(); }
  std::size_t clients() const { return residuals_.size(); }

  /// The client's residual vector, created zero-filled at `param_count` on
  /// first use. Throws CodecError if an existing residual has a different
  /// length (the bank outlived an architecture change).
  std::vector<float>& residual(int client_id, std::size_t param_count);

  /// The client's residual, or nullptr if it never shipped quantized.
  const std::vector<float>* find(int client_id) const;

  /// L2 norm of the client's carried residual (0 when absent) — the
  /// telemetry gauge's value.
  double l2_norm(int client_id) const;

  /// Ordered view for serialization.
  const std::map<int, std::vector<float>>& all() const { return residuals_; }

  /// Replaces a client's residual (checkpoint restore).
  void assign(int client_id, std::vector<float> residual);

  void clear() { residuals_.clear(); }

 private:
  std::map<int, std::vector<float>> residuals_;
};

}  // namespace helios::codec
