#include "core/convergence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace helios::core {

std::vector<double> selection_probabilities(std::span<const double> magnitudes,
                                            double budget) {
  const std::size_t n = magnitudes.size();
  if (n == 0) throw std::invalid_argument("selection_probabilities: empty");
  if (budget <= 0.0 || budget > static_cast<double>(n)) {
    throw std::invalid_argument("selection_probabilities: bad budget");
  }
  for (double g : magnitudes) {
    if (g < 0.0) {
      throw std::invalid_argument("selection_probabilities: negative magnitude");
    }
  }
  // Solve sum(min(1, lambda * g_i)) = budget for lambda by bisection over
  // the sorted magnitudes: as lambda grows, more entries saturate at 1.
  std::vector<double> sorted(magnitudes.begin(), magnitudes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  auto mass = [&](double lambda) {
    double s = 0.0;
    for (double g : sorted) s += std::min(1.0, lambda * g);
    return s;
  };
  double lo = 0.0, hi = 1.0;
  while (mass(hi) < budget && hi < 1e18) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass(mid) < budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = hi;
  std::vector<double> p(n);
  const double floor_p = std::min(1.0, budget / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = std::max(floor_p * 1e-3,
                    std::min(1.0, lambda * magnitudes[i]));
  }
  return p;
}

double variance_inflation(std::span<const double> magnitudes,
                          std::span<const double> probabilities) {
  if (magnitudes.size() != probabilities.size()) {
    throw std::invalid_argument("variance_inflation: size mismatch");
  }
  double dense = 0.0, sparse = 0.0;
  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    const double g2 = magnitudes[i] * magnitudes[i];
    dense += g2;
    if (g2 > 0.0) {
      if (probabilities[i] <= 0.0) {
        throw std::invalid_argument(
            "variance_inflation: zero probability on a live gradient");
      }
      sparse += g2 / probabilities[i];
    }
  }
  if (dense == 0.0) return 1.0;
  return sparse / dense;
}

double expected_l0(std::span<const double> probabilities) {
  double s = 0.0;
  for (double p : probabilities) s += p;
  return s;
}

int count_certain(std::span<const double> probabilities) {
  int v = 0;
  for (double p : probabilities) v += (p >= 1.0);
  return v;
}

double l0_bound(int v, double rho) {
  if (v < 0 || rho < 0.0) throw std::invalid_argument("l0_bound: bad args");
  return (1.0 + rho) * v;
}

}  // namespace helios::core
