// Convergence analysis of soft-training (paper Sec. V-B, following Wangni
// et al. [19]).
//
// Soft-training trains neuron i with probability p_i and (conceptually)
// scales its gradient by 1/p_i for unbiasedness (Eq. 5). The resulting
// gradient variance is sum(g_i^2 / p_i) (Eq. 6); keeping it within
// (1 + eps) * sum(g_i^2) while minimizing the expected number of trained
// neurons sum(p_i) (Eq. 7) yields the optimal probabilities
//     p_i = min(1, lambda * |g_i|)
// with lambda chosen to meet the budget — the highest-contribution neurons
// get p_i = 1 (the paper's top-P_s picks) and the expected L0 is bounded by
// (1 + rho) * v (Eq. 9). These utilities make that analysis executable and
// testable.
#pragma once

#include <span>
#include <vector>

namespace helios::core {

/// Optimal selection probabilities p_i = min(1, lambda * |g_i|) such that
/// sum(p_i) ~= budget (Wangni et al.'s gradient sparsification). Requires
/// 0 < budget <= g.size(); zero-magnitude entries get probability
/// budget / n as a floor (no neuron may be inactive forever — Sec. VI-A).
std::vector<double> selection_probabilities(std::span<const double> magnitudes,
                                            double budget);

/// Variance of the sparsified gradient relative to the dense one:
/// sum(g_i^2 / p_i) / sum(g_i^2) (Eq. 6 normalized). 1.0 means no inflation
/// (all p_i = 1); the convergence condition is inflation <= 1 + eps.
double variance_inflation(std::span<const double> magnitudes,
                          std::span<const double> probabilities);

/// Expected number of trained neurons, sum(p_i) (the left side of Eq. 9).
double expected_l0(std::span<const double> probabilities);

/// Number of neurons with p_i == 1 (the paper's v — the top-contribution
/// set C_v that provides the primary convergence guarantee).
int count_certain(std::span<const double> probabilities);

/// Eq. 9's bound: with v certain neurons and variance slack rho, the
/// expected L0 of the sparsified gradient is at most (1 + rho) * v.
double l0_bound(int v, double rho);

}  // namespace helios::core
