#include "core/helios_strategy.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "fl/hierarchy.h"
#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::core {

HeliosStrategy::HeliosStrategy(HeliosConfig config) : config_(config) {}

std::string HeliosStrategy::name() const {
  return config_.hetero_aggregation ? "Helios" : "S.T. Only";
}

void HeliosStrategy::set_cycle_hook(
    std::function<void(fl::Fleet&, int)> hook) {
  cycle_hook_ = std::move(hook);
}

HeliosStrategy::StragglerState& HeliosStrategy::state_for(fl::Client& client) {
  auto it = state_.find(client.id());
  if (it == state_.end()) {
    StragglerState st;
    SoftTrainerConfig cfg;
    cfg.keep_ratio = client.volume();
    cfg.ps = config_.ps;
    cfg.seed = config_.seed + static_cast<std::uint64_t>(client.id()) * 7919;
    // Architecture-only queries: the estimation model avoids materializing
    // a hibernated client's replica just to read the neuron index.
    st.trainer = std::make_unique<SoftTrainer>(client.estimation_model(), cfg);
    st.regulator = std::make_unique<RotationRegulator>(
        client.estimation_model().neuron_total(), st.trainer->budget_total());
    it = state_.emplace(client.id(), std::move(st)).first;
  }
  return it->second;
}

void HeliosStrategy::run_range(fl::Fleet& fleet, fl::RunResult& result,
                               int begin, int end) {
  fl::AggOptions opts;
  opts.hetero_volume_weights = config_.hetero_aggregation;
  opts.per_neuron_merge = config_.hetero_aggregation;
  opts.alpha_damping = config_.alpha_damping;
  if (begin == 0) state_.clear();

  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = begin; cycle < end; ++cycle) {
    HELIOS_TRACE_SPAN("helios.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    if (cycle_hook_) cycle_hook_(fleet, cycle);

    // Phase 1: choose each straggler's submodel for this cycle.
    struct Planned {
      fl::Client* client;
      std::vector<std::uint8_t> mask;  // empty = full model
      int forced = 0;                  // rotation-forced neuron count
    };
    std::vector<Planned> plan;
    plan.reserve(fleet.size());
    {
      HELIOS_TRACE_SPAN("helios.select_submodels", {{"cycle", cycle}});
      for (fl::Client* client : fleet.round_roster(cycle)) {
        Planned p{client, {}, 0};
        if (client->is_straggler() && client->volume() < 1.0) {
          StragglerState& st = state_for(*client);
          std::vector<int> forced;
          if (config_.rotation_regulation) forced = st.regulator->overdue();
          p.forced = static_cast<int>(forced.size());
          p.mask = st.trainer->select_mask(forced);
        }
        plan.push_back(std::move(p));
      }
    }

    // Phase 2: local training (synchronous round; virtual times from the
    // cost model, round length = slowest participant). The masks were all
    // chosen in phase 1, so the cycles are independent and fan out across
    // the pool; the updates come back in plan order.
    const std::vector<float> global_before(fleet.server().global());
    const std::vector<float> buffers_before(fleet.server().global_buffers());
    std::vector<fl::Client*> roster;
    roster.reserve(plan.size());
    for (Planned& p : plan) roster.push_back(p.client);
    std::vector<fl::ClientUpdate> updates = fl::Fleet::parallel_train(
        roster, [&](fl::Client& client, std::size_t i) {
          return client.run_cycle(global_before, buffers_before, plan[i].mask);
        });
    // The network (if any) decides which updates arrive, each device's
    // actual communication time, and the round length; without a session
    // this is the analytic max(train + upload) closure.
    fl::NetDelivery net =
        fl::deliver_round(fleet, updates, global_before);
    double capable_pace = 0.0;
    double loss = 0.0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const double cycle_seconds =
          updates[i].train_seconds + net.comm_seconds[i];
      if (!plan[i].client->is_straggler()) {
        capable_pace = std::max(capable_pace, cycle_seconds);
      }
      loss += updates[i].mean_loss;
    }
    fleet.clock().advance(net.round_seconds);

    // Phase 3: contribution updates + rotation bookkeeping + aggregation.
    // Only *delivered* updates count: if a straggler's frame was dropped,
    // the server never saw its parameters, so crediting contributions and
    // advancing the C_s rotation counters would drift the soft-training
    // state away from what actually aggregated. In the extreme case — the
    // whole cohort lost before the deadline — the round must close as a
    // clean no-op (Server::aggregate already skips an empty span).
    // With an aggregator tree attached, the U^ij statistics are computed by
    // the edge nodes while folding (stage_bookkeeping arms that), so the
    // aggregation runs first and the loop below adopts each device's
    // root-merged shard — bit-identical to computing it here, because the
    // edges run agg::neuron_change_means on the decoded (bit-exact) params
    // against the same base snapshot. Devices are partitioned across edges,
    // so the root's merge of the shards is an exact disjoint union, and the
    // C_s rotation counters stay per-device (disjoint by construction).
    fl::HierarchySession* hier = fleet.hierarchy();
    const bool sharded_bookkeeping = hier != nullptr && hier->active();
    if (sharded_bookkeeping) {
      hier->stage_bookkeeping(global_before);
      fleet.server().aggregate(net.aggregate_span(updates), opts);
    }
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (plan[i].mask.empty()) continue;
      if (!net.pass_through && !net.delivered[i]) continue;
      StragglerState& st = state_for(*plan[i].client);
      const std::vector<double>* shard =
          sharded_bookkeeping
              ? hier->contributions_for(plan[i].client->id())
              : nullptr;
      if (shard != nullptr) {
        st.trainer->apply_contributions(plan[i].mask, *shard);
      } else {
        st.trainer->update_contributions(global_before, updates[i].params,
                                         plan[i].mask);
      }
      st.regulator->record_cycle(plan[i].mask);
      if (tel) {
        // Skipped-cycle distribution: neurons with C_s = 0 / 1 / 2 / >= 3.
        std::array<int, 4> cs{0, 0, 0, 0};
        const int m = st.regulator->neuron_total();
        for (int j = 0; j < m; ++j) {
          cs[static_cast<std::size_t>(
              std::min(st.regulator->skipped_cycles(j), 3))]++;
        }
        tel->record_rotation(plan[i].client->id(), plan[i].forced, cs);
      }
    }
    if (!sharded_bookkeeping) {
      fleet.server().aggregate(net.aggregate_span(updates), opts);
    }

    // Phase 4: pace adaptation during the first cycles (Sec. V-A Step 1 —
    // "Helios needs first few training cycles to finalize the stragglers
    // and model volumes"). Uses the *observed* per-device times, so under a
    // simulated network the wire (retries included) drives the volumes.
    if (cycle < config_.pace_adaptation_cycles && capable_pace > 0.0) {
      for (std::size_t i = 0; i < plan.size(); ++i) {
        fl::Client& c = *plan[i].client;
        if (plan[i].mask.empty()) continue;
        if (!c.active()) continue;  // died this round
        const double t =
            updates[i].train_seconds + net.comm_seconds[i];
        const double ratio = t / capable_pace;
        // Outside a 10% band, rescale the volume toward the pace.
        if (ratio > 1.1 || ratio < 0.9) {
          const double next = std::clamp(c.volume() / ratio,
                                         config_.min_volume, 1.0);
          c.set_volume(next);
          StragglerState& st = state_for(c);
          st.trainer->set_keep_ratio(next);
          st.regulator->set_budget_total(st.trainer->budget_total());
        }
      }
    }

    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, plan.size())),
         net.upload_mb});
    if (tel) {
      const fl::RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
}

void HeliosStrategy::save_state(const fl::Fleet& fleet,
                                fl::CheckpointWriter& w) const {
  (void)fleet;
  std::vector<int> ids;
  ids.reserve(state_.size());
  for (const auto& [id, st] : state_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (int id : ids) {
    const StragglerState& st = state_.at(id);
    w.i32(id);
    w.f64(st.trainer->keep_ratio());
    w.vec_f64(st.trainer->contributions());
    w.rng(st.trainer->rng_state());
    w.vec_i32(st.regulator->skipped());
  }
}

void HeliosStrategy::load_state(fl::Fleet& fleet, fl::CheckpointReader& r) {
  state_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const int id = r.i32();
    const double keep_ratio = r.f64();
    std::vector<double> contributions = r.vec_f64();
    const util::RngState rng = r.rng();
    std::vector<int> skipped = r.vec_i32();
    fl::Client* client = fleet.find_client(id);
    if (client == nullptr) {
      throw fl::CheckpointError(
          "HeliosStrategy: checkpointed straggler id not in fleet");
    }
    // state_for rebuilds geometry from the estimation model; overlay the
    // carried state on top.
    StragglerState& st = state_for(*client);
    st.trainer->set_keep_ratio(keep_ratio);
    st.trainer->set_contributions(std::move(contributions));
    st.trainer->set_rng_state(rng);
    st.regulator->set_budget_total(st.trainer->budget_total());
    st.regulator->set_skipped(std::move(skipped));
  }
}

}  // namespace helios::core
