// The full Helios orchestration (paper Secs. III-VI): synchronous
// aggregation where every straggler trains a soft-training submodel at its
// expected volume, with contribution tracking, rotation regulation,
// heterogeneity-weighted aggregation (Eq. 10) and first-cycles pace
// adaptation of the volumes.
//
// Ablation switches reproduce the paper's "S.T. Only" variant
// (hetero_aggregation = false) and support rotation / pace studies.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/rotation.h"
#include "core/soft_training.h"
#include "fl/strategy.h"

namespace helios::core {

struct HeliosConfig {
  /// P_s — top-contribution share of the kept budget (Sec. VI-A: 0.05-0.1).
  double ps = 0.1;
  /// Sec. VI-B aggregation optimization: participant-aware per-neuron
  /// merging plus Eq. 10 volume weights. Off = the paper's "S.T. Only"
  /// ablation, which merges partial models naively (stale parameters of
  /// skipped neurons dilute the aggregate).
  bool hetero_aggregation = true;
  /// Damping d of the Eq. 10 weight, alpha_n = (1-d) + d*r_n (see
  /// fl::AggOptions::alpha_damping); 1.0 is the literal paper formula.
  double alpha_damping = 0.25;
  /// Rotation regulation (Sec. VI-A); off only for ablation studies.
  bool rotation_regulation = true;
  /// Number of initial cycles during which straggler volumes are adapted to
  /// the collaboration pace (Sec. V-A, Step 1).
  int pace_adaptation_cycles = 3;
  /// Hard floor for adapted volumes.
  double min_volume = 0.05;
  std::uint64_t seed = 31;
};

class HeliosStrategy final : public fl::Strategy {
 public:
  explicit HeliosStrategy(HeliosConfig config = {});

  std::string name() const override;
  void run_range(fl::Fleet& fleet, fl::RunResult& result, int begin,
                 int end) override;

  /// Cross-cycle soft-training state, per straggler: keep ratio, per-neuron
  /// contributions U^ij, the mask-drawing RNG position, and the C_s
  /// rotation counters. Serialized sorted by client id.
  void save_state(const fl::Fleet& fleet,
                  fl::CheckpointWriter& w) const override;
  void load_state(fl::Fleet& fleet, fl::CheckpointReader& r) override;

  /// Invoked at the start of every cycle — used by the scalability example
  /// to admit devices mid-collaboration. Soft-training state for new
  /// stragglers is created lazily.
  void set_cycle_hook(std::function<void(fl::Fleet&, int)> hook);

  const HeliosConfig& config() const { return config_; }

 private:
  struct StragglerState {
    std::unique_ptr<SoftTrainer> trainer;
    std::unique_ptr<RotationRegulator> regulator;
  };
  StragglerState& state_for(fl::Client& client);

  HeliosConfig config_;
  std::unordered_map<int, StragglerState> state_;
  std::function<void(fl::Fleet&, int)> cycle_hook_;
};

}  // namespace helios::core
