#include "core/rotation.h"

#include <stdexcept>

#include "obs/trace.h"

namespace helios::core {

RotationRegulator::RotationRegulator(int neuron_total, int budget_total)
    : skipped_(static_cast<std::size_t>(neuron_total), 0) {
  if (neuron_total <= 0) {
    throw std::invalid_argument("RotationRegulator: no neurons");
  }
  set_budget_total(budget_total);
}

void RotationRegulator::set_budget_total(int budget_total) {
  if (budget_total <= 0) {
    throw std::invalid_argument("RotationRegulator: bad budget");
  }
  threshold_ = 1.0 + static_cast<double>(skipped_.size()) /
                         static_cast<double>(budget_total);
}

void RotationRegulator::record_cycle(
    std::span<const std::uint8_t> trained_mask) {
  HELIOS_TRACE_SPAN("rotation.record_cycle", {{"neurons", skipped_.size()}});
  if (trained_mask.empty()) {
    for (int& s : skipped_) s = 0;
    return;
  }
  if (trained_mask.size() != skipped_.size()) {
    throw std::invalid_argument("RotationRegulator: mask size mismatch");
  }
  for (std::size_t j = 0; j < skipped_.size(); ++j) {
    if (trained_mask[j]) {
      skipped_[j] = 0;
    } else {
      ++skipped_[j];
    }
  }
}

std::vector<int> RotationRegulator::overdue() const {
  std::vector<int> out;
  for (std::size_t j = 0; j < skipped_.size(); ++j) {
    if (static_cast<double>(skipped_[j]) >= threshold_) {
      out.push_back(static_cast<int>(j));
    }
  }
  return out;
}

int RotationRegulator::skipped_cycles(int neuron) const {
  return skipped_.at(static_cast<std::size_t>(neuron));
}

}  // namespace helios::core
