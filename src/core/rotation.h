// Neuron-rotation regulation (paper Sec. VI-A).
//
// The server records, per straggler, how many aggregation cycles each neuron
// has been skipped (C_s). When C_s exceeds the threshold
//     1 + m / sum(P_i n_i)
// the neuron is reported "overdue" and the straggler must pull it back into
// the next training cycle — this keeps every selection probability p_i
// strictly positive, the condition the convergence proof (Proposition 2)
// rests on, and prevents stale-parameter buildup.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace helios::core {

class RotationRegulator {
 public:
  /// `neuron_total` is m; `budget_total` is sum(P_i n_i) for this straggler.
  RotationRegulator(int neuron_total, int budget_total);

  /// Threshold 1 + m / sum(P_i n_i), in whole skipped cycles.
  double threshold() const { return threshold_; }

  /// Records one aggregation cycle's trained mask (empty = all trained):
  /// trained neurons reset to 0, skipped neurons age by 1.
  void record_cycle(std::span<const std::uint8_t> trained_mask);

  /// Neurons whose skipped-cycle count has reached the threshold.
  std::vector<int> overdue() const;

  /// Budget changes (pace adaptation) re-derive the threshold.
  void set_budget_total(int budget_total);

  int skipped_cycles(int neuron) const;

  int neuron_total() const { return static_cast<int>(skipped_.size()); }

  // Checkpoint hooks: C_s is the whole cross-cycle state (the threshold is
  // derived from the budget, which the caller re-applies on restore).
  const std::vector<int>& skipped() const { return skipped_; }
  void set_skipped(std::vector<int> s) {
    if (s.size() != skipped_.size()) {
      throw std::invalid_argument("RotationRegulator: C_s size mismatch");
    }
    skipped_ = std::move(s);
  }

 private:
  std::vector<int> skipped_;
  double threshold_ = 0.0;
};

}  // namespace helios::core
