#include "core/scalability.h"

#include <algorithm>
#include <stdexcept>

namespace helios::core {

ScalabilityManager::ScalabilityManager(bool use_profiling, double pace_factor,
                                       double min_volume)
    : use_profiling_(use_profiling),
      pace_factor_(pace_factor),
      min_volume_(min_volume) {
  if (pace_factor <= 1.0) {
    throw std::invalid_argument("ScalabilityManager: pace_factor <= 1");
  }
  if (min_volume <= 0.0 || min_volume > 1.0) {
    throw std::invalid_argument("ScalabilityManager: bad min_volume");
  }
}

AdmissionResult ScalabilityManager::admit(fl::Fleet& fleet, int client_id) {
  fl::Client* joining = nullptr;
  for (auto& c : fleet.clients()) {
    if (c->id() == client_id) joining = c.get();
  }
  if (!joining) throw std::invalid_argument("admit: unknown client");

  // Collaboration pace: the slowest *capable* existing device.
  double pace = 0.0;
  for (auto& c : fleet.clients()) {
    if (c->id() == client_id || c->is_straggler()) continue;
    pace = std::max(pace, use_profiling_
                              ? c->estimate_cycle_seconds({})
                              : c->testbench_seconds(5));
  }
  AdmissionResult result;
  result.client_id = client_id;
  result.pace_seconds = pace;
  result.estimated_cycle_seconds =
      use_profiling_ ? joining->estimate_cycle_seconds({})
                     : joining->testbench_seconds(5);
  if (pace <= 0.0) {
    // First device, or all existing devices straggle: joins as capable.
    return result;
  }

  if (result.estimated_cycle_seconds > pace_factor_ * pace) {
    result.straggler = true;
    joining->set_straggler(true);
    // Profiled target determination against the measured pace — only the
    // joining device's volume is (re)assigned.
    result.volume =
        TargetDeterminer::profile_volume(*joining, pace, min_volume_);
    joining->set_volume(result.volume);
  }
  return result;
}

}  // namespace helios::core
