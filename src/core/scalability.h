// Collaboration-scalability optimization (paper Sec. VI-C): admitting
// devices that join mid-collaboration.
//
// A joining device is identified against the current collaboration pace —
// by resource profiling when a profiling budget is available, otherwise by
// the time-based test bench — and, if it would straggle, receives an
// expected model volume before its first cycle.
#pragma once

#include "core/straggler_id.h"
#include "core/target.h"
#include "fl/fleet.h"

namespace helios::core {

struct AdmissionResult {
  int client_id = -1;
  bool straggler = false;
  double volume = 1.0;
  double estimated_cycle_seconds = 0.0;
  double pace_seconds = 0.0;
};

class ScalabilityManager {
 public:
  /// `use_profiling` selects resource-based profiling (white box) over the
  /// time-based test bench (black box) for the admission decision.
  explicit ScalabilityManager(bool use_profiling = true,
                              double pace_factor = 1.5,
                              double min_volume = 0.05);

  /// Admits the already-added client `client_id` of `fleet`: estimates its
  /// cycle time, compares with the pace of the existing capable devices,
  /// flags it and assigns a volume if it straggles.
  AdmissionResult admit(fl::Fleet& fleet, int client_id);

 private:
  bool use_profiling_;
  double pace_factor_;
  double min_volume_;
};

}  // namespace helios::core
