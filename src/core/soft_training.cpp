#include "core/soft_training.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "agg/accumulator.h"
#include "obs/trace.h"

namespace helios::core {

SoftTrainer::SoftTrainer(nn::Model& model, SoftTrainerConfig config)
    : config_(config),
      ranges_(fl::layer_ranges(model)),
      neurons_(model.neurons()),
      u_(static_cast<std::size_t>(model.neuron_total()), 0.0),
      rng_(config.seed) {
  if (config_.keep_ratio <= 0.0 || config_.keep_ratio > 1.0) {
    throw std::invalid_argument("SoftTrainer: keep_ratio out of (0, 1]");
  }
  if (config_.ps <= 0.0 || config_.ps > 1.0) {
    throw std::invalid_argument("SoftTrainer: ps out of (0, 1]");
  }
}

void SoftTrainer::set_keep_ratio(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("SoftTrainer: keep_ratio out of (0, 1]");
  }
  config_.keep_ratio = p;
}

int SoftTrainer::budget_total() const {
  const auto budgets = fl::layer_budgets(ranges_, config_.keep_ratio);
  return std::accumulate(budgets.begin(), budgets.end(), 0);
}

std::vector<std::uint8_t> SoftTrainer::select_mask(
    std::span<const int> forced) {
  HELIOS_TRACE_SPAN("soft_training.select_mask",
                    {{"neurons", u_.size()}, {"forced", forced.size()}});
  std::vector<std::uint8_t> mask(u_.size(), 0);
  const auto budgets = fl::layer_budgets(ranges_, config_.keep_ratio);

  // Mark forced neurons first (rotation regulation, Sec. VI-A).
  std::vector<std::uint8_t> is_forced(u_.size(), 0);
  for (int id : forced) {
    if (id < 0 || static_cast<std::size_t>(id) >= u_.size()) {
      throw std::out_of_range("SoftTrainer: forced neuron out of range");
    }
    is_forced[static_cast<std::size_t>(id)] = 1;
    mask[static_cast<std::size_t>(id)] = 1;
  }

  for (std::size_t r = 0; r < ranges_.size(); ++r) {
    const int begin = ranges_[r].begin;
    const int count = ranges_[r].count;
    const int budget = budgets[r];
    int chosen = 0;
    for (int j = 0; j < count; ++j) chosen += mask[static_cast<std::size_t>(begin + j)];

    // Top-U picks: ceil(ps * budget), at least 1 (Eq. 2's K = Ps*Pi*ni).
    const int top_quota = std::min(
        budget, std::max(1, static_cast<int>(std::ceil(config_.ps * budget))));
    std::vector<int> order(static_cast<std::size_t>(count));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return u_[static_cast<std::size_t>(begin + a)] >
             u_[static_cast<std::size_t>(begin + b)];
    });
    int top_taken = 0;
    for (int j : order) {
      if (chosen >= budget || top_taken >= top_quota) break;
      auto& bit = mask[static_cast<std::size_t>(begin + j)];
      if (bit) {
        // Already forced in; still counts toward the top quota if it is a
        // top-U neuron.
        ++top_taken;
        continue;
      }
      bit = 1;
      ++chosen;
      ++top_taken;
    }

    // Random fill from the remaining (lower-contribution) neurons.
    std::vector<int> rest;
    rest.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) {
      if (!mask[static_cast<std::size_t>(begin + j)]) rest.push_back(j);
    }
    while (chosen < budget && !rest.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(rest.size())));
      mask[static_cast<std::size_t>(begin + rest[pick])] = 1;
      rest[pick] = rest.back();
      rest.pop_back();
      ++chosen;
    }
  }
  return mask;
}

void SoftTrainer::update_contributions(
    std::span<const float> before, std::span<const float> after,
    std::span<const std::uint8_t> trained_mask) {
  HELIOS_TRACE_SPAN("soft_training.update_contributions",
                    {{"neurons", neurons_.size()}});
  if (before.size() != after.size()) {
    throw std::invalid_argument("update_contributions: size mismatch");
  }
  if (!trained_mask.empty() && trained_mask.size() != u_.size()) {
    throw std::invalid_argument("update_contributions: bad mask size");
  }
  // The shared agg-layer statistic: the same slice order and double sums the
  // inline loop used, so the refactor is bit-identical — and edge aggregators
  // computing shards remotely match this trainer exactly.
  const std::vector<double> means =
      agg::neuron_change_means(neurons_, before, after, trained_mask);
  for (std::size_t j = 0; j < neurons_.size(); ++j) {
    if (!trained_mask.empty() && !trained_mask[j]) continue;
    u_[j] = means[j];
  }
}

void SoftTrainer::apply_contributions(std::span<const std::uint8_t> trained_mask,
                                      std::span<const double> values) {
  if (values.size() != u_.size()) {
    throw std::invalid_argument("apply_contributions: size mismatch");
  }
  if (!trained_mask.empty() && trained_mask.size() != u_.size()) {
    throw std::invalid_argument("apply_contributions: bad mask size");
  }
  for (std::size_t j = 0; j < u_.size(); ++j) {
    if (!trained_mask.empty() && !trained_mask[j]) continue;
    u_[j] = values[j];
  }
}

}  // namespace helios::core
