// Soft-training neuron selection (paper Sec. V).
//
// Per straggler, per cycle, the submodel is the union of
//   * the top P_s fraction of the layer budget by collaboration
//     contribution U^ij — the neurons whose parameters changed most in the
//     cycles they last trained (Eq. 1, primary convergence guarantee), and
//   * a uniformly random draw from the remaining neurons (Eq. 2, rotation
//     for model integrity),
// with any rotation-regulation "overdue" neurons force-included first
// (Sec. VI-A), keeping every selection probability p_i > 0 as the
// convergence proof (Proposition 2) requires.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "fl/submodel.h"
#include "nn/model.h"
#include "util/rng.h"

namespace helios::core {

struct SoftTrainerConfig {
  /// Expected model volume P (keep ratio per layer).
  double keep_ratio = 0.5;
  /// P_s — fraction of the kept budget reserved for top-contribution
  /// neurons; the paper recommends 0.05-0.1 of the full layer (we apply it
  /// to the kept budget, clamped to at least one neuron).
  double ps = 0.1;
  std::uint64_t seed = 1;
};

class SoftTrainer {
 public:
  /// `model` provides the neuron geometry (layer ranges, slices); the
  /// trainer keeps per-neuron contribution state across cycles.
  SoftTrainer(nn::Model& model, SoftTrainerConfig config);

  /// Chooses the next cycle's submodel mask. `forced` lists global neuron
  /// ids that must be included (rotation regulation); they count against the
  /// layer budget but may overflow it if the regulator demands more than
  /// the budget allows.
  std::vector<std::uint8_t> select_mask(std::span<const int> forced = {});

  /// Updates contributions after a cycle: U_j <- mean |after - before| over
  /// neuron j's parameters, for the neurons that trained (others retain
  /// their previous U).
  void update_contributions(std::span<const float> before,
                            std::span<const float> after,
                            std::span<const std::uint8_t> trained_mask);

  /// Adopts contribution values computed elsewhere (an edge aggregator's
  /// U^ij shard): U_j <- values[j] for the neurons set in `trained_mask`
  /// (every neuron when the mask is empty). Bit-identical to
  /// update_contributions when the values came from
  /// agg::neuron_change_means over the same before/after pair.
  void apply_contributions(std::span<const std::uint8_t> trained_mask,
                           std::span<const double> values);

  const std::vector<double>& contributions() const { return u_; }
  double keep_ratio() const { return config_.keep_ratio; }
  /// Pace adaptation can adjust the volume between cycles.
  void set_keep_ratio(double p);
  int neuron_total() const { return static_cast<int>(u_.size()); }
  /// Total per-cycle budget sum(P_i n_i) at the current volume.
  int budget_total() const;

  // Checkpoint hooks: cross-cycle state is (contributions, rng position,
  // keep ratio — already settable above). Geometry (ranges/neurons) is
  // derived from the model and rebuilt at construction.
  void set_contributions(std::vector<double> u) {
    if (u.size() != u_.size()) {
      throw std::invalid_argument("SoftTrainer: contribution size mismatch");
    }
    u_ = std::move(u);
  }
  util::RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const util::RngState& s) { rng_ = util::Rng::from_state(s); }

 private:
  SoftTrainerConfig config_;
  std::vector<fl::LayerNeuronRange> ranges_;
  std::vector<nn::NeuronInfo> neurons_;  // copies of slice info
  std::vector<double> u_;                // U^ij per global neuron
  util::Rng rng_;
};

}  // namespace helios::core
