#include "core/straggler_id.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace helios::core {

std::vector<int> StragglerReport::straggler_ids() const {
  std::vector<int> out;
  for (const auto& t : timings) {
    if (t.straggler) out.push_back(t.client_id);
  }
  return out;
}

namespace {

StragglerReport build_report(std::vector<DeviceTiming> timings) {
  // Slowest first — the paper's index T with T_1 the longest time cost.
  std::sort(timings.begin(), timings.end(),
            [](const DeviceTiming& a, const DeviceTiming& b) {
              return a.seconds > b.seconds;
            });
  StragglerReport report;
  report.timings = std::move(timings);
  return report;
}

void fill_pace(StragglerReport& report) {
  report.pace_seconds = 0.0;
  for (const auto& t : report.timings) {
    if (!t.straggler) {
      report.pace_seconds = std::max(report.pace_seconds, t.seconds);
    }
  }
}

}  // namespace

StragglerReport StragglerIdentifier::time_based(fl::Fleet& fleet, int top_k,
                                                int testbench_iterations) {
  if (fleet.size() == 0) throw std::logic_error("time_based: empty fleet");
  if (top_k < 0 || static_cast<std::size_t>(top_k) >= fleet.size()) {
    throw std::invalid_argument(
        "time_based: top_k must leave at least one capable device");
  }
  std::vector<DeviceTiming> timings;
  for (auto& c : fleet.clients()) {
    timings.push_back({c->id(), c->testbench_seconds(testbench_iterations),
                       false});
  }
  StragglerReport report = build_report(std::move(timings));
  for (int i = 0; i < top_k; ++i) {
    report.timings[static_cast<std::size_t>(i)].straggler = true;
  }
  fill_pace(report);
  return report;
}

StragglerReport StragglerIdentifier::resource_based(fl::Fleet& fleet,
                                                    double pace_factor) {
  if (fleet.size() == 0) throw std::logic_error("resource_based: empty fleet");
  if (pace_factor <= 1.0) {
    throw std::invalid_argument("resource_based: pace_factor must be > 1");
  }
  std::vector<DeviceTiming> timings;
  double fastest = std::numeric_limits<double>::infinity();
  for (auto& c : fleet.clients()) {
    const double t = c->estimate_cycle_seconds({});
    fastest = std::min(fastest, t);
    timings.push_back({c->id(), t, false});
  }
  StragglerReport report = build_report(std::move(timings));
  for (auto& t : report.timings) {
    t.straggler = t.seconds > pace_factor * fastest;
  }
  // Degenerate guard: never flag every device.
  if (std::all_of(report.timings.begin(), report.timings.end(),
                  [](const DeviceTiming& t) { return t.straggler; })) {
    report.timings.back().straggler = false;  // fastest device stays capable
  }
  fill_pace(report);
  return report;
}

void StragglerIdentifier::apply(fl::Fleet& fleet,
                                const StragglerReport& report) {
  for (const auto& t : report.timings) {
    for (auto& c : fleet.clients()) {
      if (c->id() == t.client_id) c->set_straggler(t.straggler);
    }
  }
}

}  // namespace helios::core
