// Potential-straggler identification (paper Sec. IV-B).
//
// Two approaches for two deployment contexts:
//  * time-based approximation (black box): run a lightweight test bench on
//    every device, rank by measured time, flag the slowest;
//  * resource-based profiling (white box): evaluate the analytic cost model
//    Te = W/C_cpu + M/V_mc + M/B_n on each device's resource profile and
//    flag devices whose full-cycle time exceeds the collaboration pace.
#pragma once

#include <vector>

#include "fl/fleet.h"

namespace helios::core {

struct DeviceTiming {
  int client_id = -1;
  double seconds = 0.0;  // test-bench or profiled full-cycle time
  bool straggler = false;
};

struct StragglerReport {
  /// Sorted slowest-first (the paper's index T, T_1 = longest).
  std::vector<DeviceTiming> timings;
  /// The pace the collaboration would run at without the stragglers
  /// (max full-cycle time among non-stragglers).
  double pace_seconds = 0.0;

  std::vector<int> straggler_ids() const;
};

class StragglerIdentifier {
 public:
  /// Black box: rank clients by the virtual cost of `testbench_iterations`
  /// mini-batches and flag the `top_k` slowest as potential stragglers.
  static StragglerReport time_based(fl::Fleet& fleet, int top_k,
                                    int testbench_iterations = 5);

  /// White box: profile each client's full local cycle with the cost model
  /// and flag every device slower than `pace_factor` x the fastest device.
  static StragglerReport resource_based(fl::Fleet& fleet,
                                        double pace_factor = 1.5);

  /// Writes the report's straggler flags onto the fleet's clients.
  static void apply(fl::Fleet& fleet, const StragglerReport& report);
};

}  // namespace helios::core
