#include "core/target.h"

#include <algorithm>
#include <stdexcept>

#include "device/cost_model.h"
#include "fl/submodel.h"

namespace helios::core {

const std::vector<double>& TargetDeterminer::default_levels() {
  static const std::vector<double> levels{0.5, 0.35, 0.25, 0.2};
  return levels;
}

void TargetDeterminer::assign_predefined(fl::Fleet& fleet,
                                         const StragglerReport& report,
                                         const std::vector<double>& levels) {
  if (levels.empty()) {
    throw std::invalid_argument("assign_predefined: no levels");
  }
  // report.timings is slowest-first; the slowest straggler gets the
  // smallest feasible level ordering: levels are listed strongest-straggler
  // -volume first, so walk stragglers slowest-first through the levels from
  // the back.
  std::vector<int> straggler_order;  // slowest first
  for (const auto& t : report.timings) {
    if (t.straggler) straggler_order.push_back(t.client_id);
  }
  for (std::size_t rank = 0; rank < straggler_order.size(); ++rank) {
    // Slowest straggler -> most aggressive (last) level.
    const std::size_t level_idx =
        levels.size() - 1 -
        std::min(rank, levels.size() - 1);
    for (auto& c : fleet.clients()) {
      if (c->id() == straggler_order[rank]) {
        c->set_volume(levels[level_idx]);
      }
    }
  }
}

double TargetDeterminer::cycle_seconds_at_volume(fl::Client& client,
                                                 double volume) {
  if (volume >= 1.0) return client.estimate_cycle_seconds({});
  // FLOP and upload accounting depend only on how many neurons per layer are
  // active, not which; take the first k_i of each layer deterministically.
  // Architecture-only, so the estimation model serves hibernated clients.
  nn::Model& model = client.estimation_model();
  const auto ranges = fl::layer_ranges(model);
  const auto budgets = fl::layer_budgets(ranges, volume);
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(model.neuron_total()), 0);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (int j = 0; j < budgets[i]; ++j) {
      mask[static_cast<std::size_t>(ranges[i].begin + j)] = 1;
    }
  }
  return client.estimate_cycle_seconds(mask);
}

double TargetDeterminer::profile_volume(fl::Client& client,
                                        double pace_seconds,
                                        double min_volume) {
  if (min_volume <= 0.0 || min_volume > 1.0) {
    throw std::invalid_argument("profile_volume: bad min_volume");
  }
  if (pace_seconds <= 0.0) {
    throw std::invalid_argument("profile_volume: non-positive pace");
  }
  // Binary-search the largest feasible volume; cost is monotone in P.
  double lo = min_volume, hi = 1.0;
  if (cycle_seconds_at_volume(client, lo) > pace_seconds) {
    return min_volume;  // even the smallest volume misses the pace
  }
  for (int iter = 0; iter < 20; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (cycle_seconds_at_volume(client, mid) <= pace_seconds) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Memory constraint: shrink further while the peak footprint overflows.
  double chosen = lo;
  while (chosen > min_volume &&
         device::peak_memory_mb(client.estimation_model(),
                                client.config().batch_size) *
                 chosen >
             client.profile().memory_mb) {
    chosen = std::max(min_volume, chosen - 0.05);
  }
  return chosen;
}

std::vector<double> TargetDeterminer::assign_profiled(
    fl::Fleet& fleet, const StragglerReport& report, double min_volume) {
  if (report.pace_seconds <= 0.0) {
    throw std::invalid_argument("assign_profiled: report has no pace");
  }
  std::vector<double> volumes(fleet.size(), 1.0);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    fl::Client& c = fleet.client(i);
    if (!c.is_straggler()) continue;
    const double chosen =
        profile_volume(c, report.pace_seconds, min_volume);
    c.set_volume(chosen);
    volumes[i] = chosen;
  }
  return volumes;
}

}  // namespace helios::core
