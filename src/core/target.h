// Optimization-target determination (paper Sec. IV-C): the expected model
// volume (keep ratio P) for each straggler.
//
// Two modes, matching the paper:
//  * pre-defined volume levels assigned by straggler rank (the volume is
//    then refined during the first cycles by HeliosStrategy's pace
//    adaptation);
//  * profiled volumes: binary-search the largest P whose cost-model cycle
//    time fits the collaboration pace and whose peak memory fits the
//    device's capacity.
#pragma once

#include <vector>

#include "core/straggler_id.h"
#include "fl/fleet.h"

namespace helios::core {

class TargetDeterminer {
 public:
  /// Default volume levels, strongest straggler first.
  static const std::vector<double>& default_levels();

  /// Assigns `levels[rank]` (clamped to the last level) to each straggler in
  /// slowest-first order and writes the volumes onto the clients.
  static void assign_predefined(fl::Fleet& fleet,
                                const StragglerReport& report,
                                const std::vector<double>& levels);

  /// Profiled determination: for each straggler, the largest keep ratio P in
  /// [min_volume, 1] such that the masked cost-model cycle time is at most
  /// `report.pace_seconds` and peak memory fits. Writes volumes onto
  /// clients; returns the chosen volumes in fleet order (1.0 for capable).
  static std::vector<double> assign_profiled(fl::Fleet& fleet,
                                             const StragglerReport& report,
                                             double min_volume = 0.05);

  /// Cost-model cycle time of `client` at volume P (uniform per-layer mask).
  static double cycle_seconds_at_volume(fl::Client& client, double volume);

  /// Largest keep ratio in [min_volume, 1] fitting `pace_seconds` and the
  /// device's memory capacity (the per-client kernel of assign_profiled).
  static double profile_volume(fl::Client& client, double pace_seconds,
                               double min_volume = 0.05);
};

}  // namespace helios::core
