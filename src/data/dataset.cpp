#include <algorithm>

#include "data/dataset.h"

#include <stdexcept>

namespace helios::data {

void Dataset::validate() const {
  if (images.ndim() != 4) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W]");
  }
  if (static_cast<int>(labels.size()) != images.dim(0)) {
    throw std::invalid_argument("Dataset: label count mismatch");
  }
  if (num_classes <= 0) throw std::invalid_argument("Dataset: no classes");
  for (int y : labels) {
    if (y < 0 || y >= num_classes) {
      throw std::out_of_range("Dataset: label out of range");
    }
  }
}

Dataset subset(const Dataset& src, std::span<const std::size_t> indices) {
  const std::size_t sample =
      static_cast<std::size_t>(src.channels()) * src.height() * src.width();
  Dataset out;
  out.num_classes = src.num_classes;
  out.images = Tensor({static_cast<int>(indices.size()), src.channels(),
                       src.height(), src.width()});
  out.labels.reserve(indices.size());
  float* dst = out.images.data();
  const float* base = src.images.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    if (idx >= static_cast<std::size_t>(src.size())) {
      throw std::out_of_range("subset: index out of range");
    }
    std::copy_n(base + idx * sample, sample, dst + i * sample);
    out.labels.push_back(src.labels[idx]);
  }
  return out;
}

std::vector<int> class_histogram(const Dataset& d) {
  std::vector<int> hist(static_cast<std::size_t>(d.num_classes), 0);
  for (int y : d.labels) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

}  // namespace helios::data
