// In-memory labeled image dataset ([N, C, H, W] + class labels).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace helios::data {

using tensor::Tensor;

/// Value-type dataset; cheap to subset by index list.
struct Dataset {
  Tensor images;            // [N, C, H, W]
  std::vector<int> labels;  // length N, values in [0, num_classes)
  int num_classes = 0;

  int size() const { return images.empty() ? 0 : images.dim(0); }
  int channels() const { return images.dim(1); }
  int height() const { return images.dim(2); }
  int width() const { return images.dim(3); }

  /// Throws if shapes/labels are inconsistent.
  void validate() const;
};

/// New dataset containing `indices` of `src`, in the given order.
Dataset subset(const Dataset& src, std::span<const std::size_t> indices);

/// Per-class sample counts (length num_classes).
std::vector<int> class_histogram(const Dataset& d);

}  // namespace helios::data
