#include <algorithm>

#include "data/loader.h"

#include <numeric>
#include <stdexcept>

namespace helios::data {

DataLoader::DataLoader(const Dataset& dataset, int batch_size, util::Rng rng,
                       bool drop_last)
    : dataset_(dataset),
      batch_size_(batch_size),
      drop_last_(drop_last),
      rng_(rng),
      order_(static_cast<std::size_t>(dataset.size())) {
  if (batch_size <= 0) throw std::invalid_argument("DataLoader: batch <= 0");
  if (dataset.size() == 0) throw std::invalid_argument("DataLoader: empty dataset");
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  shuffle_order();
}

void DataLoader::shuffle_order() {
  rng_.shuffle(std::span<std::size_t>(order_));
  cursor_ = 0;
}

int DataLoader::batches_per_epoch() const {
  const int n = dataset_.size();
  if (drop_last_) return n / batch_size_;
  return (n + batch_size_ - 1) / batch_size_;
}

void DataLoader::reset() { shuffle_order(); }

void DataLoader::restore(const util::RngState& rng,
                         std::vector<std::size_t> order, std::size_t cursor) {
  if (order.size() != order_.size()) {
    throw std::invalid_argument("DataLoader::restore: order size mismatch");
  }
  if (cursor > order.size()) {
    throw std::invalid_argument("DataLoader::restore: cursor out of range");
  }
  rng_ = util::Rng::from_state(rng);
  order_ = std::move(order);
  cursor_ = cursor;
}

Batch DataLoader::next() {
  const std::size_t n = order_.size();
  if (cursor_ >= n ||
      (drop_last_ && cursor_ + static_cast<std::size_t>(batch_size_) > n)) {
    shuffle_order();
  }
  const std::size_t take =
      std::min(static_cast<std::size_t>(batch_size_), n - cursor_);
  Batch b;
  const std::size_t sample = static_cast<std::size_t>(dataset_.channels()) *
                             dataset_.height() * dataset_.width();
  b.images = Tensor({static_cast<int>(take), dataset_.channels(),
                     dataset_.height(), dataset_.width()});
  b.labels.reserve(take);
  float* dst = b.images.data();
  const float* src = dataset_.images.data();
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t idx = order_[cursor_ + i];
    std::copy_n(src + idx * sample, sample, dst + i * sample);
    b.labels.push_back(dataset_.labels[idx]);
  }
  cursor_ += take;
  return b;
}

}  // namespace helios::data
