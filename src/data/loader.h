// Shuffling mini-batch iterator over a Dataset.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace helios::data {

/// One mini-batch: images [B, C, H, W] plus labels.
struct Batch {
  Tensor images;
  std::vector<int> labels;
  int size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Iterates a dataset in shuffled mini-batches; reshuffles every epoch.
/// Holds a reference to the dataset — keep the dataset alive.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, int batch_size, util::Rng rng,
             bool drop_last = false);

  /// Number of batches per epoch.
  int batches_per_epoch() const;

  /// Next batch; starts a new (re-shuffled) epoch automatically.
  Batch next();

  /// Resets to the start of a fresh epoch.
  void reset();

  int batch_size() const { return batch_size_; }
  const Dataset& dataset() const { return dataset_; }

  // Checkpoint hooks. The full iteration state is (rng, order, cursor):
  // shuffle_order() permutes the *existing* order in place, so the order
  // vector's content feeds into every future shuffle and must round-trip
  // alongside the rng position for bit-identical resume.
  util::RngState rng_state() const { return rng_.state(); }
  const std::vector<std::size_t>& order() const { return order_; }
  std::size_t cursor() const { return cursor_; }
  /// Restores a snapshotted iteration position; `order` must be a
  /// permutation of the dataset indices (size-checked).
  void restore(const util::RngState& rng, std::vector<std::size_t> order,
               std::size_t cursor);

 private:
  const Dataset& dataset_;
  int batch_size_;
  bool drop_last_;
  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;

  void shuffle_order();
};

/// Full-dataset accuracy of `logits_fn` style models is provided at the FL
/// layer; here we expose simple batched iteration only.
}  // namespace helios::data
