#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace helios::data {

Partition partition_iid(std::size_t n_samples, std::size_t n_clients,
                        util::Rng& rng) {
  if (n_clients == 0) throw std::invalid_argument("partition_iid: no clients");
  std::vector<std::size_t> order(n_samples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));
  Partition out(n_clients);
  for (std::size_t i = 0; i < n_samples; ++i) {
    out[i % n_clients].push_back(order[i]);
  }
  return out;
}

Partition partition_shards(std::span<const int> labels,
                           std::size_t n_clients,
                           std::size_t shards_per_client, util::Rng& rng) {
  if (n_clients == 0 || shards_per_client == 0) {
    throw std::invalid_argument("partition_shards: bad arity");
  }
  const std::size_t n = labels.size();
  const std::size_t n_shards = n_clients * shards_per_client;
  if (n < n_shards) {
    throw std::invalid_argument("partition_shards: fewer samples than shards");
  }
  // Stable sort by label keeps determinism independent of input order noise.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return labels[a] < labels[b];
  });
  // Deal shard ids randomly to clients.
  std::vector<std::size_t> shard_ids(n_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(shard_ids));
  const std::size_t shard_size = n / n_shards;
  Partition out(n_clients);
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::size_t client = s / shards_per_client;
    const std::size_t shard = shard_ids[s];
    const std::size_t begin = shard * shard_size;
    // Last shard absorbs the divisibility remainder.
    const std::size_t end = (shard + 1 == n_shards) ? n : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) {
      out[client].push_back(order[i]);
    }
  }
  return out;
}

Partition partition_dirichlet(std::span<const int> labels,
                              std::size_t n_clients, int num_classes,
                              double beta, util::Rng& rng) {
  if (n_clients == 0 || num_classes <= 0 || beta <= 0.0) {
    throw std::invalid_argument("partition_dirichlet: bad arguments");
  }
  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int y = labels[i];
    if (y < 0 || y >= num_classes) {
      throw std::out_of_range("partition_dirichlet: label out of range");
    }
    by_class[static_cast<std::size_t>(y)].push_back(i);
  }
  Partition out(n_clients);
  // Dirichlet via normalized Gamma(beta, 1) draws; Gamma sampled with the
  // Marsaglia-Tsang method (with the alpha<1 boost).
  auto gamma_draw = [&rng](double alpha) {
    double boost = 1.0;
    if (alpha < 1.0) {
      boost = std::pow(rng.uniform() + 1e-12, 1.0 / alpha);
      alpha += 1.0;
    }
    const double d = alpha - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, v;
      do {
        x = rng.normal();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = rng.uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (std::log(u + 1e-300) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return boost * d * v;
      }
    }
  };
  for (auto& members : by_class) {
    if (members.empty()) continue;
    rng.shuffle(std::span<std::size_t>(members));
    std::vector<double> props(n_clients);
    double total = 0.0;
    for (double& p : props) {
      p = gamma_draw(beta);
      total += p;
    }
    // Cumulative cut points over the shuffled class members.
    std::size_t start = 0;
    double acc = 0.0;
    for (std::size_t c = 0; c < n_clients; ++c) {
      acc += props[c] / total;
      const std::size_t end =
          (c + 1 == n_clients)
              ? members.size()
              : std::min(members.size(),
                         static_cast<std::size_t>(std::llround(
                             acc * static_cast<double>(members.size()))));
      for (std::size_t i = start; i < end; ++i) {
        out[c].push_back(members[i]);
      }
      start = std::max(start, end);
    }
  }
  return out;
}

bool is_exact_partition(const Partition& p, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& part : p) {
    for (std::size_t idx : part) {
      if (idx >= n) return false;
      if (++seen[idx] > 1) return false;
    }
  }
  for (int s : seen) {
    if (s != 1) return false;
  }
  return true;
}

}  // namespace helios::data
