// Federated data partitioners: IID, shard-based Non-IID (Zhao et al. [1] /
// McMahan et al.), and Dirichlet label-skew.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace helios::data {

/// Index lists, one per client; every source index appears exactly once
/// across clients (up to divisibility remainders, which go to early clients).
using Partition = std::vector<std::vector<std::size_t>>;

/// Uniform random split into `n_clients` near-equal parts.
Partition partition_iid(std::size_t n_samples, std::size_t n_clients,
                        util::Rng& rng);

/// Sort-by-label, cut into `n_clients * shards_per_client` shards, deal
/// `shards_per_client` random shards to each client. With 2 shards/client and
/// 10 classes each client sees ~2 classes — the paper's Non-IID setting [1].
Partition partition_shards(std::span<const int> labels,
                           std::size_t n_clients,
                           std::size_t shards_per_client, util::Rng& rng);

/// Label-skew via per-class Dirichlet(beta) allocation across clients.
/// Smaller beta = more skew; beta -> inf approaches IID.
Partition partition_dirichlet(std::span<const int> labels,
                              std::size_t n_clients, int num_classes,
                              double beta, util::Rng& rng);

/// Sanity check: every index in [0, n) appears exactly once.
bool is_exact_partition(const Partition& p, std::size_t n);

}  // namespace helios::data
