#include "data/synthetic.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace helios::data {
namespace {

/// Bilinearly upsamples a coarse grid[gh][gw] to out_h x out_w.
void upsample_bilinear(const std::vector<float>& grid, int gh, int gw,
                       float* out, int out_h, int out_w) {
  for (int y = 0; y < out_h; ++y) {
    const float fy = (out_h == 1) ? 0.0F
                                  : static_cast<float>(y) * (gh - 1) /
                                        static_cast<float>(out_h - 1);
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, gh - 1);
    const float wy = fy - static_cast<float>(y0);
    for (int x = 0; x < out_w; ++x) {
      const float fx = (out_w == 1) ? 0.0F
                                    : static_cast<float>(x) * (gw - 1) /
                                          static_cast<float>(out_w - 1);
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, gw - 1);
      const float wx = fx - static_cast<float>(x0);
      const float v00 = grid[static_cast<std::size_t>(y0) * gw + x0];
      const float v01 = grid[static_cast<std::size_t>(y0) * gw + x1];
      const float v10 = grid[static_cast<std::size_t>(y1) * gw + x0];
      const float v11 = grid[static_cast<std::size_t>(y1) * gw + x1];
      out[static_cast<std::size_t>(y) * out_w + x] =
          (1 - wy) * ((1 - wx) * v00 + wx * v01) +
          wy * ((1 - wx) * v10 + wx * v11);
    }
  }
}

/// Smooth random field: coarse i.i.d. normals upsampled to full resolution.
void smooth_field(util::Rng& rng, int grid, float scale, float* out,
                  int out_h, int out_w) {
  std::vector<float> coarse(static_cast<std::size_t>(grid) * grid);
  for (float& v : coarse) v = static_cast<float>(rng.normal()) * scale;
  upsample_bilinear(coarse, grid, grid, out, out_h, out_w);
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec, util::Rng& rng) {
  if (spec.samples <= 0 || spec.channels <= 0 || spec.height <= 0 ||
      spec.width <= 0 || spec.classes <= 0 || spec.prototype_grid < 2) {
    throw std::invalid_argument("make_synthetic: bad spec");
  }
  const std::size_t plane =
      static_cast<std::size_t>(spec.height) * spec.width;
  const std::size_t sample_numel =
      static_cast<std::size_t>(spec.channels) * plane;

  // One smooth prototype per (class, channel).
  std::vector<float> prototypes(static_cast<std::size_t>(spec.classes) *
                                sample_numel);
  util::Rng proto_rng(spec.prototype_seed);
  for (int c = 0; c < spec.classes; ++c) {
    for (int ch = 0; ch < spec.channels; ++ch) {
      smooth_field(proto_rng, spec.prototype_grid, 1.0F,
                   prototypes.data() +
                       static_cast<std::size_t>(c) * sample_numel + ch * plane,
                   spec.height, spec.width);
    }
  }

  Dataset out;
  out.num_classes = spec.classes;
  out.images = Tensor({spec.samples, spec.channels, spec.height, spec.width});
  out.labels.resize(static_cast<std::size_t>(spec.samples));
  float* img = out.images.data();
  std::vector<float> deform(plane);
  for (int i = 0; i < spec.samples; ++i) {
    const int label = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(spec.classes)));
    out.labels[static_cast<std::size_t>(i)] = label;
    const float* proto =
        prototypes.data() + static_cast<std::size_t>(label) * sample_numel;
    const float brightness =
        static_cast<float>(rng.normal()) * 0.1F;  // global jitter
    float* dst = img + static_cast<std::size_t>(i) * sample_numel;
    for (int ch = 0; ch < spec.channels; ++ch) {
      smooth_field(rng, spec.prototype_grid, spec.deform, deform.data(),
                   spec.height, spec.width);
      const float* p = proto + static_cast<std::size_t>(ch) * plane;
      float* d = dst + static_cast<std::size_t>(ch) * plane;
      for (std::size_t px = 0; px < plane; ++px) {
        d[px] = p[px] + deform[px] +
                static_cast<float>(rng.normal()) * spec.noise + brightness;
      }
    }
  }
  return out;
}

SyntheticSpec mnist_like_spec(int samples) {
  SyntheticSpec s;
  s.samples = samples;
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.classes = 10;
  return s;
}

SyntheticSpec cifar10_like_spec(int samples) {
  SyntheticSpec s;
  s.samples = samples;
  s.channels = 3;
  s.height = 32;
  s.width = 32;
  s.classes = 10;
  s.noise = 0.5F;
  return s;
}

SyntheticSpec cifar100_like_spec(int samples) {
  SyntheticSpec s;
  s.samples = samples;
  s.channels = 3;
  s.height = 16;
  s.width = 16;
  s.classes = 100;
  s.noise = 0.4F;
  return s;
}

}  // namespace helios::data
