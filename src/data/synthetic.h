// Procedural stand-ins for MNIST / CIFAR-10 / CIFAR-100.
//
// The paper's datasets cannot be downloaded in this environment, so we
// synthesize image classification tasks with the property that matters for
// the Helios experiments: each class has localized, learnable structure
// (a smooth spatial prototype), so a CNN genuinely has to learn per-class
// features and a Non-IID partition genuinely concentrates unique
// information on some clients. Samples are prototype + smooth per-sample
// deformation + white noise + brightness jitter.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace helios::data {

struct SyntheticSpec {
  int samples = 1000;
  int channels = 1;
  int height = 28;
  int width = 28;
  int classes = 10;
  /// White-noise standard deviation added per pixel (task difficulty knob).
  float noise = 0.45F;
  /// Resolution of the low-frequency random field that defines each class
  /// prototype (smaller = smoother, easier class structure).
  int prototype_grid = 4;
  /// Per-sample smooth deformation strength (intra-class variability).
  float deform = 0.35F;
  /// Seed of the class prototypes — the "task identity". Two generations
  /// with the same spec share prototypes (e.g. train and test splits, or
  /// per-client shards of one federated task), regardless of the sample rng.
  std::uint64_t prototype_seed = 42;
};

/// Generates `spec.samples` labeled images with a balanced label marginal
/// (labels drawn uniformly). Same seed -> identical dataset.
Dataset make_synthetic(const SyntheticSpec& spec, util::Rng& rng);

/// Convenience presets mirroring the paper's three tasks.
SyntheticSpec mnist_like_spec(int samples);
SyntheticSpec cifar10_like_spec(int samples);
/// CIFAR-100 stand-in; spatially reduced to 16x16 to fit the CPU budget
/// (documented substitution — see DESIGN.md).
SyntheticSpec cifar100_like_spec(int samples);

}  // namespace helios::data
