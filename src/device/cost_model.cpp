#include "device/cost_model.h"

#include <stdexcept>

namespace helios::device {
namespace {
constexpr double kBytesPerParam = 4.0;  // float32
constexpr double kMb = 1.0e6;
}  // namespace

WorkloadEstimate estimate_workload(nn::Model& model, int samples_per_epoch,
                                   int local_epochs) {
  if (samples_per_epoch < 0 || local_epochs < 0) {
    throw std::invalid_argument("estimate_workload: negative counts");
  }
  const double steps =
      static_cast<double>(samples_per_epoch) * local_epochs;
  WorkloadEstimate w;
  w.train_gflops = model.train_flops_per_sample() * steps / 1.0e9;

  const double param_bytes =
      static_cast<double>(model.param_count()) * kBytesPerParam;
  const double act_bytes =
      model.activation_numel_per_sample() * kBytesPerParam;
  // Each sample streams its activations forward and backward; parameters are
  // re-read once per cycle for the optimizer update.
  w.mem_traffic_mb = (act_bytes * 2.0 * steps + param_bytes) / kMb;

  // Upload only the parameters of neurons that actually trained. The frozen
  // flat mask is non-empty exactly when a submodel mask is installed.
  const auto& frozen = model.frozen_flat_mask();
  std::size_t uploaded = model.param_count();
  if (!frozen.empty()) {
    std::size_t frozen_count = 0;
    for (auto b : frozen) frozen_count += (b != 0);
    uploaded -= frozen_count;
  }
  w.upload_mb = static_cast<double>(uploaded) * kBytesPerParam / kMb;
  return w;
}

double training_cycle_seconds(const ResourceProfile& p,
                              const WorkloadEstimate& w) {
  if (!p.valid()) throw std::invalid_argument("cost model: invalid profile");
  return w.train_gflops / p.compute_gflops +
         w.mem_traffic_mb / p.mem_bandwidth_mbps;
}

double upload_seconds(const ResourceProfile& p, const WorkloadEstimate& w) {
  if (!p.valid()) throw std::invalid_argument("cost model: invalid profile");
  return w.upload_mb / p.net_bandwidth_mbps;
}

double total_cycle_seconds(const ResourceProfile& p,
                           const WorkloadEstimate& w) {
  return training_cycle_seconds(p, w) + upload_seconds(p, w);
}

WorkloadEstimate paper_alexnet_cycle_workload(double memory_usage_mb) {
  // ~0.7 GFLOP/sample forward, x3 for training, 2000 local samples x 2
  // epochs => ~8400 GFLOP per local cycle. The memory usage column of
  // Table I is per-device, so it is a parameter here; the whole per-cycle
  // memory footprint transits the memory bus and (as a stale-parameter
  // sync) the network once per cycle in the paper's formulation.
  WorkloadEstimate w;
  w.train_gflops = 8400.0;
  w.mem_traffic_mb = memory_usage_mb;
  w.upload_mb = memory_usage_mb;
  return w;
}

double peak_memory_mb(nn::Model& model, int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("peak_memory_mb: batch <= 0");
  const double param_bytes =
      static_cast<double>(model.param_count()) * kBytesPerParam;
  const double act_bytes = model.activation_numel_per_sample() *
                           kBytesPerParam * batch_size;
  // params + grads + activations (+ activation grads in flight ~ 1x).
  return (2.0 * param_bytes + 2.0 * act_bytes) / kMb;
}

}  // namespace helios::device
