// Analytic training-cost model (paper Sec. IV-B, resource-based profiling):
//     Te = W / C_cpu + M / V_mc + M / B_n
// where W is the training compute workload, M the memory traffic, and the
// denominators come from the device's ResourceProfile. The same model drives
// (a) straggler identification, (b) optimization-target determination, and
// (c) the event-driven virtual clock of every simulated experiment.
#pragma once

#include "device/resource.h"
#include "nn/model.h"

namespace helios::device {

/// Per-cycle workload of local training, in device-independent units.
struct WorkloadEstimate {
  /// W — total training compute for the cycle, GFLOP.
  double train_gflops = 0.0;
  /// M — memory traffic for the cycle (parameters + activations), MB.
  double mem_traffic_mb = 0.0;
  /// Parameter upload volume at aggregation (only trained neurons), MB.
  double upload_mb = 0.0;
};

/// Estimates one local training cycle of `model` under its *current* mask:
/// `samples_per_epoch * local_epochs` optimization steps' worth of compute.
WorkloadEstimate estimate_workload(nn::Model& model, int samples_per_epoch,
                                   int local_epochs);

/// Te for the training part (W/C + M/V), seconds of virtual time.
double training_cycle_seconds(const ResourceProfile& p,
                              const WorkloadEstimate& w);

/// Upload time at aggregation (M_upload / B_n), seconds of virtual time.
double upload_seconds(const ResourceProfile& p, const WorkloadEstimate& w);

/// Full cycle: training + upload.
double total_cycle_seconds(const ResourceProfile& p,
                           const WorkloadEstimate& w);

/// Paper-scale AlexNet/CIFAR-10 cycle workload used by the Table I
/// reproduction (the lite models in this repo are width-scaled, so Table I's
/// absolute minutes are reproduced from the paper-scale figure instead).
WorkloadEstimate paper_alexnet_cycle_workload(double memory_usage_mb);

/// Estimated peak training memory (parameters + gradients + activations for
/// one batch), MB — compared against ResourceProfile::memory_mb when
/// determining optimization targets.
double peak_memory_mb(nn::Model& model, int batch_size);

}  // namespace helios::device
