#include "device/resource.h"

namespace helios::device {

// The bandwidth figures below are tuned so that, with the paper-scale
// AlexNet/CIFAR-10 training cycle (~8400 GFLOP — see cost_model.h), the
// analytic cost model lands on Table I's cycle times:
//   Nano(CPU) 20.6 min, Raspberry 23.8 min, DeepLens(GPU) 27.2 min,
//   DeepLens(CPU) 34 min.

ResourceProfile jetson_nano_cpu() {
  return {"Nano (CPU)", 7.0, 126.0, 7.4, 252.0};
}

ResourceProfile raspberry_pi() {
  return {"Raspberry", 6.0, 50.0, 6.0, 150.0};
}

ResourceProfile deeplens_gpu() {
  return {"DeepLen (GPU)", 5.5, 20.0, 1.0, 100.0};
}

ResourceProfile deeplens_cpu() {
  return {"DeepLen (CPU)", 4.5, 30.0, 0.65, 110.0};
}

// Capable (non-straggler) devices. Their compute advantage over the Table I
// stragglers is kept at the paper's scale (Fig. 1 shows a ~3.3x cycle gap):
// roughly 2-4x, so that profiled expected volumes land in the 0.2-0.5 band
// the soft-training analysis targets rather than degenerate slivers.
ResourceProfile jetson_nano_gpu() {
  return {"Nano (GPU)", 15.0, 400.0, 12.0, 4096.0};
}

ResourceProfile edge_server() {
  return {"EdgeServer", 20.0, 800.0, 25.0, 8192.0};
}

std::vector<ResourceProfile> table1_stragglers() {
  return {jetson_nano_cpu(), raspberry_pi(), deeplens_gpu(), deeplens_cpu()};
}

ResourceProfile sim_scaled(ResourceProfile p, double factor) {
  p.name += " [sim]";
  p.mem_bandwidth_mbps *= factor;
  p.net_bandwidth_mbps *= factor;
  return p;
}

}  // namespace helios::device
