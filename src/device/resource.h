// Edge-device resource descriptions (the paper's Table I, plus capable
// reference devices).
//
// The paper simulates heterogeneous edge devices by throttling Jetson Nano
// boards to the profiles of weaker hardware (Sec. VII-A); we do the same one
// level up, describing each device by its effective compute bandwidth,
// memory-transfer speed and network bandwidth, and driving an event-driven
// virtual clock from the analytic cost model (Sec. IV-B):
//     Te = W / C_cpu + M / V_mc + M / B_n.
#pragma once

#include <string>
#include <vector>

namespace helios::device {

struct ResourceProfile {
  std::string name;
  /// C_cpu — effective training compute bandwidth, GFLOP/s.
  double compute_gflops = 10.0;
  /// V_mc — memory/data transfer speed, MB/s.
  double mem_bandwidth_mbps = 2000.0;
  /// B_n — network bandwidth, MB/s.
  double net_bandwidth_mbps = 10.0;
  /// Memory capacity, MB (optimization-target constraint).
  double memory_mb = 4096.0;

  bool valid() const {
    return compute_gflops > 0 && mem_bandwidth_mbps > 0 &&
           net_bandwidth_mbps > 0 && memory_mb > 0;
  }
};

/// Table I straggler presets (effective bandwidths tuned so the analytic
/// cost model reproduces the paper's per-cycle times for AlexNet/CIFAR-10).
ResourceProfile jetson_nano_cpu();   // "Nano (CPU)"
ResourceProfile raspberry_pi();      // "Raspberry"
ResourceProfile deeplens_gpu();      // "DeepLen (GPU)"
ResourceProfile deeplens_cpu();      // "DeepLen (CPU)"

/// Capable (non-straggler) reference devices.
ResourceProfile jetson_nano_gpu();   // strong collaborator in Fig. 1
ResourceProfile edge_server();       // even stronger aggregator-class node

/// The four Table I stragglers, in paper order.
std::vector<ResourceProfile> table1_stragglers();

/// Rescales a profile's bandwidth terms for the width-scaled "lite" models
/// used in simulation. The lite models shrink compute by roughly 26x more
/// than parameter volume relative to the paper-scale AlexNet, so running the
/// paper-calibrated profiles unmodified would make every cycle
/// communication-bound; multiplying the memory/network bandwidths by
/// `factor` (default 25) restores the paper's compute-bound cycle shape
/// while preserving the compute ratios between devices.
ResourceProfile sim_scaled(ResourceProfile p, double factor = 25.0);

}  // namespace helios::device
