// VirtualClock is header-only; this translation unit anchors the library.
#include "device/virtual_clock.h"
