// Event-driven virtual time.
//
// Experiments never rely on wall-clock time: every simulated device reports
// its cycle duration through the cost model, and the orchestration
// strategies advance this clock (synchronous rounds advance by the max over
// participants; asynchronous strategies order completion events).
#pragma once

#include <stdexcept>

namespace helios::device {

class VirtualClock {
 public:
  double now() const { return now_; }

  /// Advances by `dt` seconds (dt >= 0).
  void advance(double dt) {
    if (dt < 0.0) throw std::invalid_argument("VirtualClock: negative dt");
    now_ += dt;
  }

  /// Moves to an absolute timestamp (must not go backwards).
  void advance_to(double t) {
    if (t < now_) throw std::invalid_argument("VirtualClock: time reversal");
    now_ = t;
  }

  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace helios::device
