#include "fl/afo.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {

Afo::Afo(double alpha, double staleness_exponent)
    : alpha_(alpha), staleness_exponent_(staleness_exponent) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Afo: alpha out of (0, 1]");
  }
  if (staleness_exponent < 0.0) {
    throw std::invalid_argument("Afo: negative staleness exponent");
  }
}

// Stays sequential by design (like AsyncFL's fully-async mode): each
// completion event applies a staleness-discounted update to the evolving
// global model before the next one starts, so there is never a batch of
// independent cycles to hand to Fleet::parallel_train. Intra-op kernel
// parallelism still applies inside each run_cycle.
RunResult Afo::run(Fleet& fleet, int cycles) {
  RunResult result;
  result.method = name();
  if (fleet.size() == 0) throw std::logic_error("Afo: empty fleet");

  auto capable = fleet.capable();
  int reference_id =
      capable.empty() ? fleet.client(0).id() : capable.front()->id();

  // Per-client: the global snapshot and version it started training from.
  struct InFlight {
    Client* client = nullptr;
    std::vector<float> base;
    std::vector<float> base_buffers;
    long started_version = 0;
  };
  struct Event {
    double time;
    int client_index;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<InFlight> inflight(fleet.size());

  long version = 0;
  int recorded = 0;
  // Same cohort gating as AsyncFL's fully-async mode: unselected clients
  // park (hibernated) until a later recorded round samples them; the
  // reference device always runs so recording progresses.
  const RosterSampler* sampler = fleet.sampler();
  std::vector<std::uint8_t> parked(fleet.size(), 0);
  auto start_client = [&](std::size_t i, double now) {
    Client& c = fleet.client(i);
    if (!c.active()) return;  // dead device: never rescheduled
    if (sampler && c.id() != reference_id &&
        !sampler->selected(c.id(), recorded)) {
      parked[i] = 1;
      c.hibernate();
      return;
    }
    parked[i] = 0;
    inflight[i].client = &c;
    inflight[i].base.assign(fleet.server().global().begin(),
                            fleet.server().global().end());
    inflight[i].base_buffers.assign(fleet.server().global_buffers().begin(),
                                    fleet.server().global_buffers().end());
    inflight[i].started_version = version;
    queue.push({now + c.estimate_cycle_seconds({}), static_cast<int>(i)});
  };
  auto sweep_parked = [&] {
    if (!sampler) return;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (parked[i]) start_client(i, fleet.clock().now());
    }
  };
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    start_client(i, fleet.clock().now());
  }

  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();
  double loss_acc = 0.0;
  double upload_acc = 0.0;
  int loss_count = 0;
  while (recorded < cycles && !queue.empty()) {
    HELIOS_TRACE_SPAN("afo.completion", {{"cycle", recorded}});
    const Event ev = queue.top();
    queue.pop();
    if (ev.time > fleet.clock().now()) fleet.clock().advance_to(ev.time);
    auto& fl = inflight[static_cast<std::size_t>(ev.client_index)];
    if (tel) {
      tel->set_virtual_time(
          std::max(0.0, ev.time - fl.client->estimate_cycle_seconds({})));
    }

    ClientUpdate update =
        fl.client->run_cycle(fl.base, fl.base_buffers, {});
    const bool is_reference = fl.client->id() == reference_id;
    bool accepted = true;
    if (session != nullptr) {
      NetworkSession::SingleDelivery sd = session->deliver_update(
          update, fl.base, ev.time - update.upload_seconds);
      if (sd.delivered) {
        if (sd.settle_s > fleet.clock().now()) {
          fleet.clock().advance_to(sd.settle_s);
        }
        update = std::move(sd.update);
      } else {
        accepted = false;
      }
      if (sd.died && is_reference) {
        auto active = fleet.active_clients();
        auto cap = fleet.capable();
        if (!cap.empty()) {
          reference_id = cap.front()->id();
        } else if (!active.empty()) {
          reference_id = active.front()->id();
        } else {
          break;  // everyone is dead; nothing left to record
        }
        sweep_parked();  // the new reference may be parked — wake it
      }
    }
    if (accepted) {
      const long staleness = version - fl.started_version;
      const double mix_alpha =
          alpha_ * std::pow(1.0 + static_cast<double>(staleness),
                            -staleness_exponent_);
      fleet.server().mix(update, mix_alpha);
      ++version;
      loss_acc += update.mean_loss;
      upload_acc += update.upload_mb;
      ++loss_count;
    }

    if (is_reference && fl.client->active()) {
      result.rounds.push_back({recorded, fleet.clock().now(), fleet.evaluate(),
                               loss_count ? loss_acc / loss_count : 0.0,
                               upload_acc});
      if (tel) {
        const RoundRecord& r = result.rounds.back();
        tel->record_cycle_result(result.method, recorded, r.virtual_time,
                                 r.test_accuracy, r.mean_train_loss,
                                 r.upload_mb);
      }
      ++recorded;
      loss_acc = 0.0;
      upload_acc = 0.0;
      loss_count = 0;
      sweep_parked();  // round advanced: re-draw the parked clients
    }
    start_client(static_cast<std::size_t>(ev.client_index),
                 fleet.clock().now());
  }
  return result;
}

}  // namespace helios::fl
