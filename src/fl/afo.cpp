#include "fl/afo.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "fl/checkpoint.h"
#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {

Afo::Afo(double alpha, double staleness_exponent)
    : alpha_(alpha), staleness_exponent_(staleness_exponent) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Afo: alpha out of (0, 1]");
  }
  if (staleness_exponent < 0.0) {
    throw std::invalid_argument("Afo: negative staleness exponent");
  }
}

// Stays sequential by design (like AsyncFL's fully-async mode): each
// completion event applies a staleness-discounted update to the evolving
// global model before the next one starts, so there is never a batch of
// independent cycles to hand to Fleet::parallel_train. Intra-op kernel
// parallelism still applies inside each run_cycle.
void Afo::run_range(Fleet& fleet, RunResult& result, int begin, int end) {
  if (fleet.size() == 0) throw std::logic_error("Afo: empty fleet");

  // Same cohort gating as AsyncFL's fully-async mode: unselected clients
  // park (hibernated) until a later recorded round samples them; the
  // reference device always runs so recording progresses.
  const RosterSampler* sampler = fleet.sampler();
  auto start_client = [&](std::size_t i, double now) {
    Client& c = fleet.client(i);
    if (!c.active()) return;  // dead device: never rescheduled
    if (sampler && c.id() != reference_id_ &&
        !sampler->selected(c.id(), recorded_)) {
      parked_[i] = 1;
      c.hibernate();
      return;
    }
    parked_[i] = 0;
    inflight_[i].base.assign(fleet.server().global().begin(),
                             fleet.server().global().end());
    inflight_[i].base_buffers.assign(fleet.server().global_buffers().begin(),
                                     fleet.server().global_buffers().end());
    inflight_[i].started_version = version_;
    events_.push_back({now + c.estimate_cycle_seconds({}),
                       static_cast<int>(i)});
    std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
  };
  auto sweep_parked = [&] {
    if (!sampler) return;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (parked_[i]) start_client(i, fleet.clock().now());
    }
  };

  if (begin == 0) {
    auto capable = fleet.capable();
    reference_id_ =
        capable.empty() ? fleet.client(0).id() : capable.front()->id();
    events_.clear();
    inflight_.assign(fleet.size(), InFlight{});
    parked_.assign(fleet.size(), 0);
    version_ = 0;
    recorded_ = 0;
    loss_acc_ = 0.0;
    upload_acc_ = 0.0;
    loss_count_ = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      start_client(i, fleet.clock().now());
    }
  } else if (begin != recorded_) {
    throw std::logic_error("Afo: run_range begin != engine progress");
  }

  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();
  while (recorded_ < end && !events_.empty()) {
    HELIOS_TRACE_SPAN("afo.completion", {{"cycle", recorded_}});
    std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
    const Event ev = events_.back();
    events_.pop_back();
    if (ev.time > fleet.clock().now()) fleet.clock().advance_to(ev.time);
    Client& client = fleet.client(static_cast<std::size_t>(ev.client_index));
    auto& fl = inflight_[static_cast<std::size_t>(ev.client_index)];
    if (tel) {
      tel->set_virtual_time(
          std::max(0.0, ev.time - client.estimate_cycle_seconds({})));
    }

    ClientUpdate update = client.run_cycle(fl.base, fl.base_buffers, {});
    const bool is_reference = client.id() == reference_id_;
    bool accepted = true;
    if (session != nullptr) {
      NetworkSession::SingleDelivery sd = session->deliver_update(
          update, fl.base, ev.time - update.upload_seconds);
      if (sd.delivered) {
        if (sd.settle_s > fleet.clock().now()) {
          fleet.clock().advance_to(sd.settle_s);
        }
        update = std::move(sd.update);
      } else {
        accepted = false;
      }
      if (sd.died && is_reference) {
        auto active = fleet.active_clients();
        auto cap = fleet.capable();
        if (!cap.empty()) {
          reference_id_ = cap.front()->id();
        } else if (!active.empty()) {
          reference_id_ = active.front()->id();
        } else {
          break;  // everyone is dead; nothing left to record
        }
        sweep_parked();  // the new reference may be parked — wake it
      }
    }
    if (accepted) {
      const long staleness = version_ - fl.started_version;
      const double mix_alpha =
          alpha_ * std::pow(1.0 + static_cast<double>(staleness),
                            -staleness_exponent_);
      fleet.server().mix(update, mix_alpha);
      ++version_;
      loss_acc_ += update.mean_loss;
      upload_acc_ += update.upload_mb;
      ++loss_count_;
    }

    if (is_reference && client.active()) {
      result.rounds.push_back({recorded_, fleet.clock().now(),
                               fleet.evaluate(),
                               loss_count_ ? loss_acc_ / loss_count_ : 0.0,
                               upload_acc_});
      if (tel) {
        const RoundRecord& r = result.rounds.back();
        tel->record_cycle_result(result.method, recorded_, r.virtual_time,
                                 r.test_accuracy, r.mean_train_loss,
                                 r.upload_mb);
      }
      ++recorded_;
      loss_acc_ = 0.0;
      upload_acc_ = 0.0;
      loss_count_ = 0;
      sweep_parked();  // round advanced: re-draw the parked clients
    }
    start_client(static_cast<std::size_t>(ev.client_index),
                 fleet.clock().now());
  }
}

void Afo::save_state(const Fleet& fleet, CheckpointWriter& w) const {
  (void)fleet;
  w.i64(static_cast<std::int64_t>(version_));
  w.i32(reference_id_);
  w.i32(recorded_);
  w.f64(loss_acc_);
  w.f64(upload_acc_);
  w.i32(loss_count_);
  w.vec_u8(parked_);
  w.u32(static_cast<std::uint32_t>(events_.size()));
  for (const Event& ev : events_) {
    w.f64(ev.time);
    w.i32(ev.client_index);
  }
  w.u32(static_cast<std::uint32_t>(inflight_.size()));
  for (const InFlight& fl : inflight_) {
    w.vec_f32(fl.base);
    w.vec_f32(fl.base_buffers);
    w.i64(static_cast<std::int64_t>(fl.started_version));
  }
}

void Afo::load_state(Fleet& fleet, CheckpointReader& r) {
  version_ = static_cast<long>(r.i64());
  reference_id_ = r.i32();
  recorded_ = r.i32();
  loss_acc_ = r.f64();
  upload_acc_ = r.f64();
  loss_count_ = r.i32();
  parked_ = r.vec_u8();
  events_.clear();
  const std::uint32_t n_events = r.u32();
  events_.reserve(n_events);
  for (std::uint32_t i = 0; i < n_events; ++i) {
    Event ev;
    ev.time = r.f64();
    ev.client_index = r.i32();
    events_.push_back(ev);
  }
  inflight_.clear();
  const std::uint32_t n_inflight = r.u32();
  if (n_inflight != fleet.size()) {
    throw CheckpointError("Afo: in-flight table does not match fleet size");
  }
  inflight_.resize(n_inflight);
  for (std::uint32_t i = 0; i < n_inflight; ++i) {
    inflight_[i].base = r.vec_f32();
    inflight_[i].base_buffers = r.vec_f32();
    inflight_[i].started_version = static_cast<long>(r.i64());
  }
  if (parked_.size() != fleet.size()) {
    throw CheckpointError("Afo: parked table does not match fleet size");
  }
}

}  // namespace helios::fl
