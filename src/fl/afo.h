// Baseline 3: AFO — asynchronous federated optimization (Xie et al. [6]).
//
// Fully event-driven: whenever any device finishes a local cycle, the server
// mixes its model into the global one with a staleness-decayed weight
//     alpha_t = alpha * (1 + staleness)^(-a)
// (polynomial staleness function), and the device immediately restarts from
// the fresh global model. Metrics are recorded once per completion of the
// first capable device, aligning the cycle axis with the other strategies.
#pragma once

#include "fl/strategy.h"

namespace helios::fl {

class Afo final : public Strategy {
 public:
  explicit Afo(double alpha = 0.9, double staleness_exponent = 0.8);

  std::string name() const override { return "AFO"; }
  RunResult run(Fleet& fleet, int cycles) override;

 private:
  double alpha_;
  double staleness_exponent_;
};

}  // namespace helios::fl
