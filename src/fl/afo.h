// Baseline 3: AFO — asynchronous federated optimization (Xie et al. [6]).
//
// Fully event-driven: whenever any device finishes a local cycle, the server
// mixes its model into the global one with a staleness-decayed weight
//     alpha_t = alpha * (1 + staleness)^(-a)
// (polynomial staleness function), and the device immediately restarts from
// the fresh global model. Metrics are recorded once per completion of the
// first capable device, aligning the cycle axis with the other strategies.
//
// Engine state (event heap, in-flight snapshots, model version counter)
// lives in members so a run can be checkpointed at any round boundary and
// resumed bit-identically via save_state/load_state.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/strategy.h"

namespace helios::fl {

class Afo final : public Strategy {
 public:
  explicit Afo(double alpha = 0.9, double staleness_exponent = 0.8);

  std::string name() const override { return "AFO"; }
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

  /// Event heap, in-flight base snapshots + started versions, accumulators.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  /// Serialized as the plain heap array (std::push_heap/std::pop_heap):
  /// restoring the same vector reproduces the identical pop order.
  struct Event {
    double time = 0.0;
    int client_index = 0;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  /// The global snapshot and version a device started training from.
  /// Addressed by fleet index so the state survives serialization.
  struct InFlight {
    std::vector<float> base;
    std::vector<float> base_buffers;
    long started_version = 0;
  };

  double alpha_;
  double staleness_exponent_;

  std::vector<Event> events_;  // min-heap via std::greater<Event>
  std::vector<InFlight> inflight_;
  std::vector<std::uint8_t> parked_;
  long version_ = 0;
  int reference_id_ = -1;
  int recorded_ = 0;
  double loss_acc_ = 0.0;
  double upload_acc_ = 0.0;
  int loss_count_ = 0;
};

}  // namespace helios::fl
