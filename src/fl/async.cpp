#include "fl/async.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {

AsyncFL::AsyncFL(int straggler_period, double mix_beta)
    : straggler_period_(straggler_period), mix_beta_(mix_beta) {
  if (straggler_period < 0) {
    throw std::invalid_argument("AsyncFL: negative period");
  }
  if (mix_beta <= 0.0 || mix_beta > 1.0) {
    throw std::invalid_argument("AsyncFL: mix_beta out of (0, 1]");
  }
}

std::string AsyncFL::name() const {
  if (straggler_period_ == 0) return "Asyn. FL";
  return "Asyn. FL (period " + std::to_string(straggler_period_) + ")";
}

RunResult AsyncFL::run(Fleet& fleet, int cycles) {
  return straggler_period_ == 0 ? run_fully_async(fleet, cycles)
                                : run_period(fleet, cycles);
}

// Stays sequential by design: every completion event trains against the
// global model as mutated by all earlier completions, so there is no batch
// of independent cycles to fan out. Intra-op kernel parallelism still
// applies inside each run_cycle.
RunResult AsyncFL::run_fully_async(Fleet& fleet, int cycles) {
  RunResult result;
  result.method = name();
  if (fleet.size() == 0) throw std::logic_error("AsyncFL: empty fleet");
  auto capable = fleet.capable();
  if (capable.empty()) throw std::logic_error("AsyncFL: no capable devices");
  int reference_id = capable.front()->id();

  struct InFlight {
    Client* client = nullptr;
    std::vector<float> base;
    std::vector<float> base_buffers;
  };
  struct Event {
    double time;
    int client_index;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<InFlight> inflight(fleet.size());

  int recorded = 0;
  // Population sampling in the event-driven mode: the recorded-round index
  // plays the cohort round. An unselected client parks (hibernated) instead
  // of rescheduling and is re-examined whenever a round completes. The
  // reference device always participates so recording progresses.
  const RosterSampler* sampler = fleet.sampler();
  std::vector<std::uint8_t> parked(fleet.size(), 0);
  auto start_client = [&](std::size_t i, double now) {
    Client& c = fleet.client(i);
    if (!c.active()) return;  // dead device: never rescheduled
    if (sampler && c.id() != reference_id &&
        !sampler->selected(c.id(), recorded)) {
      parked[i] = 1;
      c.hibernate();
      return;
    }
    parked[i] = 0;
    inflight[i].client = &c;
    inflight[i].base.assign(fleet.server().global().begin(),
                            fleet.server().global().end());
    inflight[i].base_buffers.assign(fleet.server().global_buffers().begin(),
                                    fleet.server().global_buffers().end());
    queue.push({now + c.estimate_cycle_seconds({}), static_cast<int>(i)});
  };
  auto sweep_parked = [&] {
    if (!sampler) return;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (parked[i]) start_client(i, fleet.clock().now());
    }
  };
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    start_client(i, fleet.clock().now());
  }

  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();
  double loss_acc = 0.0;
  double upload_acc = 0.0;
  int loss_count = 0;
  while (recorded < cycles && !queue.empty()) {
    HELIOS_TRACE_SPAN("async.completion", {{"cycle", recorded}});
    const Event ev = queue.top();
    queue.pop();
    if (ev.time > fleet.clock().now()) fleet.clock().advance_to(ev.time);
    auto& fl = inflight[static_cast<std::size_t>(ev.client_index)];
    // The device finished *at* ev.time; backdate the sink so the Gantt slab
    // covers the cycle it just spent training.
    if (tel) {
      tel->set_virtual_time(std::max(0.0, ev.time - fl.client->estimate_cycle_seconds({})));
    }

    // Fixed-weight mixing, no staleness discount — the stale update of a
    // straggler overwrites recent progress proportionally to beta.
    ClientUpdate update = fl.client->run_cycle(fl.base, fl.base_buffers, {});
    const bool is_reference = fl.client->id() == reference_id;
    bool mixed = true;
    if (session != nullptr) {
      // ev.time already contains the analytic upload; the frame leaves the
      // device when training ends.
      NetworkSession::SingleDelivery sd = session->deliver_update(
          update, fl.base, ev.time - update.upload_seconds);
      if (sd.delivered) {
        if (sd.settle_s > fleet.clock().now()) {
          fleet.clock().advance_to(sd.settle_s);
        }
        update = std::move(sd.update);
      } else {
        mixed = false;  // lost after retries or the device died mid-upload
      }
      if (sd.died && is_reference) {
        // Re-anchor recording on a surviving device so the run completes.
        auto active = fleet.active_clients();
        auto cap = fleet.capable();
        if (!cap.empty()) {
          reference_id = cap.front()->id();
        } else if (!active.empty()) {
          reference_id = active.front()->id();
        } else {
          break;  // everyone is dead; nothing left to record
        }
        sweep_parked();  // the new reference may be parked — wake it
      }
    }
    if (mixed) {
      fleet.server().mix(update, mix_beta_);
      loss_acc += update.mean_loss;
      upload_acc += update.upload_mb;
      ++loss_count;
    }

    if (is_reference && fl.client->active()) {
      result.rounds.push_back({recorded, fleet.clock().now(), fleet.evaluate(),
                               loss_count ? loss_acc / loss_count : 0.0,
                               upload_acc});
      if (tel) {
        const RoundRecord& r = result.rounds.back();
        tel->record_cycle_result(result.method, recorded, r.virtual_time,
                                 r.test_accuracy, r.mean_train_loss,
                                 r.upload_mb);
      }
      ++recorded;
      loss_acc = 0.0;
      upload_acc = 0.0;
      loss_count = 0;
      sweep_parked();  // round advanced: re-draw the parked clients
    }
    start_client(static_cast<std::size_t>(ev.client_index),
                 fleet.clock().now());
  }
  return result;
}

RunResult AsyncFL::run_period(Fleet& fleet, int cycles) {
  RunResult result;
  result.method = name();
  AggOptions opts;

  if (fleet.capable().empty()) {
    throw std::logic_error("AsyncFL: no capable devices");
  }

  // Straggler background-training state: the global snapshot it started
  // from and the cycle its update is due.
  struct StragglerState {
    std::vector<float> base;
    std::vector<float> base_buffers;
    bool busy = false;
    int started_cycle = 0;
  };
  std::unordered_map<int, StragglerState> state;
  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();

  for (int cycle = 0; cycle < cycles; ++cycle) {
    HELIOS_TRACE_SPAN("async.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Rosters are re-derived per cycle so churn (deaths, joins) takes
    // effect; identical to the loop-invariant lists absent churn. With a
    // population sampler, only the cycle's cohort participates: unsampled
    // capables sit out, unsampled idle stragglers don't start, and a busy
    // straggler's due update waits until it is sampled again.
    std::vector<Client*> capable;
    std::vector<Client*> stragglers;
    for (Client* c : fleet.round_roster(cycle)) {
      (c->is_straggler() ? stragglers : capable).push_back(c);
    }
    // Start any idle straggler on the current global snapshot.
    for (Client* s : stragglers) {
      auto& st = state[s->id()];
      if (!st.busy) {
        st.base.assign(fleet.server().global().begin(),
                       fleet.server().global().end());
        st.base_buffers.assign(fleet.server().global_buffers().begin(),
                               fleet.server().global_buffers().end());
        st.busy = true;
        st.started_cycle = cycle;
      }
    }

    // Capable devices train synchronously among themselves; their cycles
    // are independent and fan out across the pool.
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        capable, [&](Client& c, std::size_t) {
          return c.run_cycle(fleet.server().global(),
                             fleet.server().global_buffers(), {});
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    std::size_t trained_count = updates.size();
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    double upload = net.upload_mb;

    // What the server aggregates this cycle: the capable arrivals...
    std::vector<ClientUpdate> agg = net.pass_through
                                        ? std::move(updates)
                                        : std::move(net.arrived);

    // ...plus straggler updates whose period elapsed. Each trains from the
    // stale snapshot it started on (not the live global), so the due batch
    // is independent too and fans out; appending in `stragglers` order
    // keeps aggregation order identical to the sequential path.
    std::vector<Client*> due;
    for (Client* s : stragglers) {
      auto& st = state[s->id()];
      if (!st.busy) continue;
      if (cycle - st.started_cycle + 1 < straggler_period_) continue;
      due.push_back(s);
    }
    std::vector<ClientUpdate> straggler_updates = Fleet::parallel_train(
        due, [&](Client& s, std::size_t) {
          auto& st = state.at(s.id());  // at(): no concurrent map mutation
          return s.run_cycle(st.base, st.base_buffers, {});
        });
    trained_count += due.size();
    for (std::size_t i = 0; i < due.size(); ++i) {
      StragglerState& st = state[due[i]->id()];
      loss += straggler_updates[i].mean_loss;
      st.busy = false;
      if (session != nullptr) {
        // The straggler's frame crosses the network on its own (it is not
        // part of the round's deadline scope — the period already absorbs
        // its lateness); a lost frame or a death drops the update.
        NetworkSession::SingleDelivery sd = session->deliver_update(
            straggler_updates[i], st.base, fleet.clock().now());
        if (sd.delivered) {
          upload += sd.update.upload_mb;
          agg.push_back(std::move(sd.update));
        }
      } else {
        upload += straggler_updates[i].upload_mb;
        agg.push_back(std::move(straggler_updates[i]));
      }
    }

    fleet.server().aggregate(agg, opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, trained_count)),
         upload});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
  return result;
}

}  // namespace helios::fl
