#include "fl/async.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "fl/checkpoint.h"
#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {

AsyncFL::AsyncFL(int straggler_period, double mix_beta)
    : straggler_period_(straggler_period), mix_beta_(mix_beta) {
  if (straggler_period < 0) {
    throw std::invalid_argument("AsyncFL: negative period");
  }
  if (mix_beta <= 0.0 || mix_beta > 1.0) {
    throw std::invalid_argument("AsyncFL: mix_beta out of (0, 1]");
  }
}

std::string AsyncFL::name() const {
  if (straggler_period_ == 0) return "Asyn. FL";
  return "Asyn. FL (period " + std::to_string(straggler_period_) + ")";
}

void AsyncFL::run_range(Fleet& fleet, RunResult& result, int begin, int end) {
  if (straggler_period_ == 0) {
    run_fully_async(fleet, result, begin, end);
  } else {
    run_period(fleet, result, begin, end);
  }
}

// Stays sequential by design: every completion event trains against the
// global model as mutated by all earlier completions, so there is no batch
// of independent cycles to fan out. Intra-op kernel parallelism still
// applies inside each run_cycle.
void AsyncFL::run_fully_async(Fleet& fleet, RunResult& result, int begin,
                              int end) {
  if (fleet.size() == 0) throw std::logic_error("AsyncFL: empty fleet");

  // Population sampling in the event-driven mode: the recorded-round index
  // plays the cohort round. An unselected client parks (hibernated) instead
  // of rescheduling and is re-examined whenever a round completes. The
  // reference device always participates so recording progresses.
  const RosterSampler* sampler = fleet.sampler();
  auto start_client = [&](std::size_t i, double now) {
    Client& c = fleet.client(i);
    if (!c.active()) return;  // dead device: never rescheduled
    if (sampler && c.id() != reference_id_ &&
        !sampler->selected(c.id(), recorded_)) {
      parked_[i] = 1;
      c.hibernate();
      return;
    }
    parked_[i] = 0;
    inflight_[i].base.assign(fleet.server().global().begin(),
                             fleet.server().global().end());
    inflight_[i].base_buffers.assign(fleet.server().global_buffers().begin(),
                                     fleet.server().global_buffers().end());
    events_.push_back({now + c.estimate_cycle_seconds({}),
                       static_cast<int>(i)});
    std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
  };
  auto sweep_parked = [&] {
    if (!sampler) return;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (parked_[i]) start_client(i, fleet.clock().now());
    }
  };

  if (begin == 0) {
    auto capable = fleet.capable();
    if (capable.empty()) throw std::logic_error("AsyncFL: no capable devices");
    reference_id_ = capable.front()->id();
    events_.clear();
    inflight_.assign(fleet.size(), InFlight{});
    parked_.assign(fleet.size(), 0);
    recorded_ = 0;
    loss_acc_ = 0.0;
    upload_acc_ = 0.0;
    loss_count_ = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      start_client(i, fleet.clock().now());
    }
  } else if (begin != recorded_) {
    // The engine's carried state encodes progress through `recorded_`
    // rounds; a mismatched begin means the caller and the engine disagree
    // about where the run stands.
    throw std::logic_error("AsyncFL: run_range begin != engine progress");
  }

  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();
  while (recorded_ < end && !events_.empty()) {
    HELIOS_TRACE_SPAN("async.completion", {{"cycle", recorded_}});
    std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
    const Event ev = events_.back();
    events_.pop_back();
    if (ev.time > fleet.clock().now()) fleet.clock().advance_to(ev.time);
    Client& client = fleet.client(static_cast<std::size_t>(ev.client_index));
    auto& fl = inflight_[static_cast<std::size_t>(ev.client_index)];
    // The device finished *at* ev.time; backdate the sink so the Gantt slab
    // covers the cycle it just spent training.
    if (tel) {
      tel->set_virtual_time(
          std::max(0.0, ev.time - client.estimate_cycle_seconds({})));
    }

    // Fixed-weight mixing, no staleness discount — the stale update of a
    // straggler overwrites recent progress proportionally to beta.
    ClientUpdate update = client.run_cycle(fl.base, fl.base_buffers, {});
    const bool is_reference = client.id() == reference_id_;
    bool mixed = true;
    if (session != nullptr) {
      // ev.time already contains the analytic upload; the frame leaves the
      // device when training ends.
      NetworkSession::SingleDelivery sd = session->deliver_update(
          update, fl.base, ev.time - update.upload_seconds);
      if (sd.delivered) {
        if (sd.settle_s > fleet.clock().now()) {
          fleet.clock().advance_to(sd.settle_s);
        }
        update = std::move(sd.update);
      } else {
        mixed = false;  // lost after retries or the device died mid-upload
      }
      if (sd.died && is_reference) {
        // Re-anchor recording on a surviving device so the run completes.
        auto active = fleet.active_clients();
        auto cap = fleet.capable();
        if (!cap.empty()) {
          reference_id_ = cap.front()->id();
        } else if (!active.empty()) {
          reference_id_ = active.front()->id();
        } else {
          break;  // everyone is dead; nothing left to record
        }
        sweep_parked();  // the new reference may be parked — wake it
      }
    }
    if (mixed) {
      fleet.server().mix(update, mix_beta_);
      loss_acc_ += update.mean_loss;
      upload_acc_ += update.upload_mb;
      ++loss_count_;
    }

    if (is_reference && client.active()) {
      result.rounds.push_back({recorded_, fleet.clock().now(),
                               fleet.evaluate(),
                               loss_count_ ? loss_acc_ / loss_count_ : 0.0,
                               upload_acc_});
      if (tel) {
        const RoundRecord& r = result.rounds.back();
        tel->record_cycle_result(result.method, recorded_, r.virtual_time,
                                 r.test_accuracy, r.mean_train_loss,
                                 r.upload_mb);
      }
      ++recorded_;
      loss_acc_ = 0.0;
      upload_acc_ = 0.0;
      loss_count_ = 0;
      sweep_parked();  // round advanced: re-draw the parked clients
    }
    start_client(static_cast<std::size_t>(ev.client_index),
                 fleet.clock().now());
  }
}

void AsyncFL::run_period(Fleet& fleet, RunResult& result, int begin,
                         int end) {
  AggOptions opts;

  if (fleet.capable().empty()) {
    throw std::logic_error("AsyncFL: no capable devices");
  }
  if (begin == 0) period_state_.clear();

  NetworkSession* session = fleet.network();
  obs::TelemetrySink* tel = fleet.telemetry();

  for (int cycle = begin; cycle < end; ++cycle) {
    HELIOS_TRACE_SPAN("async.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Rosters are re-derived per cycle so churn (deaths, joins) takes
    // effect; identical to the loop-invariant lists absent churn. With a
    // population sampler, only the cycle's cohort participates: unsampled
    // capables sit out, unsampled idle stragglers don't start, and a busy
    // straggler's due update waits until it is sampled again.
    std::vector<Client*> capable;
    std::vector<Client*> stragglers;
    for (Client* c : fleet.round_roster(cycle)) {
      (c->is_straggler() ? stragglers : capable).push_back(c);
    }
    // Start any idle straggler on the current global snapshot.
    for (Client* s : stragglers) {
      auto& st = period_state_[s->id()];
      if (!st.busy) {
        st.base.assign(fleet.server().global().begin(),
                       fleet.server().global().end());
        st.base_buffers.assign(fleet.server().global_buffers().begin(),
                               fleet.server().global_buffers().end());
        st.busy = true;
        st.started_cycle = cycle;
      }
    }

    // Capable devices train synchronously among themselves; their cycles
    // are independent and fan out across the pool.
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        capable, [&](Client& c, std::size_t) {
          return c.run_cycle(fleet.server().global(),
                             fleet.server().global_buffers(), {});
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    std::size_t trained_count = updates.size();
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    double upload = net.upload_mb;

    // What the server aggregates this cycle: the capable arrivals...
    std::vector<ClientUpdate> agg = net.pass_through
                                        ? std::move(updates)
                                        : std::move(net.arrived);

    // ...plus straggler updates whose period elapsed. Each trains from the
    // stale snapshot it started on (not the live global), so the due batch
    // is independent too and fans out; appending in `stragglers` order
    // keeps aggregation order identical to the sequential path.
    std::vector<Client*> due;
    for (Client* s : stragglers) {
      auto& st = period_state_[s->id()];
      if (!st.busy) continue;
      if (cycle - st.started_cycle + 1 < straggler_period_) continue;
      due.push_back(s);
    }
    std::vector<ClientUpdate> straggler_updates = Fleet::parallel_train(
        due, [&](Client& s, std::size_t) {
          // at(): no concurrent map mutation
          auto& st = period_state_.at(s.id());
          return s.run_cycle(st.base, st.base_buffers, {});
        });
    trained_count += due.size();
    for (std::size_t i = 0; i < due.size(); ++i) {
      PeriodState& st = period_state_[due[i]->id()];
      loss += straggler_updates[i].mean_loss;
      st.busy = false;
      if (session != nullptr) {
        // The straggler's frame crosses the network on its own (it is not
        // part of the round's deadline scope — the period already absorbs
        // its lateness); a lost frame or a death drops the update.
        NetworkSession::SingleDelivery sd = session->deliver_update(
            straggler_updates[i], st.base, fleet.clock().now());
        if (sd.delivered) {
          upload += sd.update.upload_mb;
          agg.push_back(std::move(sd.update));
        }
      } else {
        upload += straggler_updates[i].upload_mb;
        agg.push_back(std::move(straggler_updates[i]));
      }
    }

    fleet.server().aggregate(agg, opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, trained_count)),
         upload});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
}

void AsyncFL::save_state(const Fleet& fleet, CheckpointWriter& w) const {
  (void)fleet;
  if (straggler_period_ == 0) {
    w.i32(reference_id_);
    w.i32(recorded_);
    w.f64(loss_acc_);
    w.f64(upload_acc_);
    w.i32(loss_count_);
    w.vec_u8(parked_);
    // The heap array verbatim: restoring the same vector reproduces the
    // identical pop order.
    w.u32(static_cast<std::uint32_t>(events_.size()));
    for (const Event& ev : events_) {
      w.f64(ev.time);
      w.i32(ev.client_index);
    }
    w.u32(static_cast<std::uint32_t>(inflight_.size()));
    for (const InFlight& fl : inflight_) {
      w.vec_f32(fl.base);
      w.vec_f32(fl.base_buffers);
    }
  } else {
    w.u32(static_cast<std::uint32_t>(period_state_.size()));
    for (const auto& [id, st] : period_state_) {
      w.i32(id);
      w.vec_f32(st.base);
      w.vec_f32(st.base_buffers);
      w.boolean(st.busy);
      w.i32(st.started_cycle);
    }
  }
}

void AsyncFL::load_state(Fleet& fleet, CheckpointReader& r) {
  if (straggler_period_ == 0) {
    reference_id_ = r.i32();
    recorded_ = r.i32();
    loss_acc_ = r.f64();
    upload_acc_ = r.f64();
    loss_count_ = r.i32();
    parked_ = r.vec_u8();
    events_.clear();
    const std::uint32_t n_events = r.u32();
    events_.reserve(n_events);
    for (std::uint32_t i = 0; i < n_events; ++i) {
      Event ev;
      ev.time = r.f64();
      ev.client_index = r.i32();
      events_.push_back(ev);
    }
    inflight_.clear();
    const std::uint32_t n_inflight = r.u32();
    if (n_inflight != fleet.size()) {
      throw CheckpointError(
          "AsyncFL: in-flight table does not match fleet size");
    }
    inflight_.resize(n_inflight);
    for (std::uint32_t i = 0; i < n_inflight; ++i) {
      inflight_[i].base = r.vec_f32();
      inflight_[i].base_buffers = r.vec_f32();
    }
    if (parked_.size() != fleet.size()) {
      throw CheckpointError("AsyncFL: parked table does not match fleet size");
    }
  } else {
    period_state_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const int id = r.i32();
      PeriodState st;
      st.base = r.vec_f32();
      st.base_buffers = r.vec_f32();
      st.busy = r.boolean();
      st.started_cycle = r.i32();
      period_state_.emplace(id, std::move(st));
    }
  }
}

}  // namespace helios::fl
