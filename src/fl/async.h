// Baseline 2: asynchronous FL (Asyn. FL).
//
// Default mode (straggler_period == 0): fully asynchronous, as in the
// paper's baseline — whenever any device (capable or straggler) finishes a
// local cycle, its model is immediately mixed into the global one with a
// fixed weight and *no staleness control*:
//     global <- (1 - beta) * global + beta * local.
// A straggler's update was computed from a many-cycles-old snapshot, so each
// merge drags the global model back toward stale parameters — the
// information-degradation / stale-update failure mode of Sec. II-B (AFO is
// this engine plus a polynomial staleness discount).
//
// Period mode (straggler_period == k > 0): capable devices aggregate among
// themselves every cycle; each straggler's update is merged every k cycles
// from the snapshot it started on — the "aggregation cycle = 2 / 3 epochs"
// settings of Fig. 2.
#pragma once

#include "fl/strategy.h"

namespace helios::fl {

class AsyncFL final : public Strategy {
 public:
  explicit AsyncFL(int straggler_period = 0, double mix_beta = 0.5);

  std::string name() const override;
  RunResult run(Fleet& fleet, int cycles) override;

 private:
  RunResult run_fully_async(Fleet& fleet, int cycles);
  RunResult run_period(Fleet& fleet, int cycles);

  int straggler_period_;
  double mix_beta_;
};

}  // namespace helios::fl
