// Baseline 2: asynchronous FL (Asyn. FL).
//
// Default mode (straggler_period == 0): fully asynchronous, as in the
// paper's baseline — whenever any device (capable or straggler) finishes a
// local cycle, its model is immediately mixed into the global one with a
// fixed weight and *no staleness control*:
//     global <- (1 - beta) * global + beta * local.
// A straggler's update was computed from a many-cycles-old snapshot, so each
// merge drags the global model back toward stale parameters — the
// information-degradation / stale-update failure mode of Sec. II-B (AFO is
// this engine plus a polynomial staleness discount).
//
// Period mode (straggler_period == k > 0): capable devices aggregate among
// themselves every cycle; each straggler's update is merged every k cycles
// from the snapshot it started on — the "aggregation cycle = 2 / 3 epochs"
// settings of Fig. 2.
//
// All engine state (event heap, in-flight snapshots, straggler background
// state) lives in members so a run can be checkpointed at any round boundary
// and resumed bit-identically via save_state/load_state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fl/strategy.h"

namespace helios::fl {

class AsyncFL final : public Strategy {
 public:
  explicit AsyncFL(int straggler_period = 0, double mix_beta = 0.5);

  std::string name() const override;
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

  /// Engine state for the active mode: the event heap + in-flight base
  /// snapshots (fully async) or the straggler background map (period mode).
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  /// A device-finishes-training event. The heap is kept as a plain vector
  /// (std::push_heap/std::pop_heap) so it serializes verbatim: the same
  /// array produces the identical pop order after a resume.
  struct Event {
    double time = 0.0;
    int client_index = 0;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  /// The global snapshot a device trains against while its event is queued.
  /// Clients are addressed by fleet index, not pointer, so the state
  /// survives serialization.
  struct InFlight {
    std::vector<float> base;
    std::vector<float> base_buffers;
  };
  /// Period mode: the snapshot a straggler started from and when. Ordered
  /// map — checkpoint bytes must not depend on hash iteration order.
  struct PeriodState {
    std::vector<float> base;
    std::vector<float> base_buffers;
    bool busy = false;
    int started_cycle = 0;
  };

  void run_fully_async(Fleet& fleet, RunResult& result, int begin, int end);
  void run_period(Fleet& fleet, RunResult& result, int begin, int end);

  int straggler_period_;
  double mix_beta_;

  // --- fully-async engine state (straggler_period_ == 0) ---
  std::vector<Event> events_;  // min-heap via std::greater<Event>
  std::vector<InFlight> inflight_;
  std::vector<std::uint8_t> parked_;
  int reference_id_ = -1;
  int recorded_ = 0;
  double loss_acc_ = 0.0;
  double upload_acc_ = 0.0;
  int loss_count_ = 0;

  // --- period-mode state (straggler_period_ > 0) ---
  std::map<int, PeriodState> period_state_;
};

}  // namespace helios::fl
