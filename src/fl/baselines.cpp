#include "fl/baselines.h"

#include <algorithm>

#include "fl/submodel.h"
#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {
namespace {

/// Shared synchronous loop over cycles [begin, end): `mask_for(client,
/// cycle)` supplies each straggler's submodel mask (empty = full model).
template <typename MaskFn>
void run_sync_submodel(Fleet& fleet, RunResult& result, int begin, int end,
                       MaskFn mask_for) {
  AggOptions opts;  // sample weighting, no hetero weights for baselines
  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = begin; cycle < end; ++cycle) {
    HELIOS_TRACE_SPAN("baseline.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Masks are drawn sequentially first (mask_for may consume per-client
    // RNG state), then the independent training cycles fan out.
    std::vector<Client*> roster = fleet.round_roster(cycle);
    std::vector<std::vector<std::uint8_t>> masks;
    masks.reserve(roster.size());
    for (Client* client : roster) {
      masks.push_back(mask_for(*client, cycle));
    }
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        roster, [&](Client& client, std::size_t i) {
          return client.run_cycle(fleet.server().global(),
                                  fleet.server().global_buffers(), masks[i]);
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    fleet.server().aggregate(net.aggregate_span(updates), opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, roster.size())),
         net.upload_mb});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
}

}  // namespace

RandomSubmodel::RandomSubmodel(std::uint64_t seed) : seed_(seed) {}

void RandomSubmodel::run_range(Fleet& fleet, RunResult& result, int begin,
                               int end) {
  if (begin == 0) {
    util::Rng rng(seed_);
    client_rng_.clear();
    for (auto& c : fleet.clients()) {
      client_rng_.emplace(c->id(),
                          rng.fork(static_cast<std::uint64_t>(c->id())));
    }
  }
  run_sync_submodel(
      fleet, result, begin, end,
      [&](Client& client, int /*cycle*/) -> std::vector<std::uint8_t> {
        if (!client.is_straggler() || client.volume() >= 1.0) return {};
        return random_volume_mask(client.estimation_model(), client.volume(),
                                  client_rng_.at(client.id()));
      });
}

void RandomSubmodel::save_state(const Fleet& fleet,
                                CheckpointWriter& w) const {
  (void)fleet;
  w.u32(static_cast<std::uint32_t>(client_rng_.size()));
  for (const auto& [id, rng] : client_rng_) {
    w.i32(id);
    w.rng(rng.state());
  }
}

void RandomSubmodel::load_state(Fleet& fleet, CheckpointReader& r) {
  (void)fleet;
  client_rng_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const int id = r.i32();
    client_rng_.emplace(id, util::Rng::from_state(r.rng()));
  }
}

StaticPrune::StaticPrune(std::uint64_t seed) : seed_(seed) {}

void StaticPrune::run_range(Fleet& fleet, RunResult& result, int begin,
                            int end) {
  if (begin == 0) {
    util::Rng rng(seed_);
    // One fixed mask per straggler for the whole run.
    fixed_.clear();
    for (auto& c : fleet.clients()) {
      if (c->is_straggler() && c->volume() < 1.0) {
        util::Rng crng = rng.fork(static_cast<std::uint64_t>(c->id()));
        fixed_.emplace(c->id(), random_volume_mask(c->estimation_model(),
                                                   c->volume(), crng));
      }
    }
  }
  run_sync_submodel(
      fleet, result, begin, end,
      [&](Client& client, int /*cycle*/) -> std::vector<std::uint8_t> {
        auto it = fixed_.find(client.id());
        if (it == fixed_.end()) return {};
        return it->second;
      });
}

void StaticPrune::save_state(const Fleet& fleet, CheckpointWriter& w) const {
  (void)fleet;
  w.u32(static_cast<std::uint32_t>(fixed_.size()));
  for (const auto& [id, mask] : fixed_) {
    w.i32(id);
    w.vec_u8(mask);
  }
}

void StaticPrune::load_state(Fleet& fleet, CheckpointReader& r) {
  (void)fleet;
  fixed_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const int id = r.i32();
    fixed_.emplace(id, r.vec_u8());
  }
}

}  // namespace helios::fl
