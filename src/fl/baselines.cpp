#include "fl/baselines.h"

#include <algorithm>
#include <unordered_map>

#include "fl/submodel.h"
#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {
namespace {

/// Shared synchronous loop: `mask_for(client, cycle)` supplies each
/// straggler's submodel mask (empty = full model).
template <typename MaskFn>
RunResult run_sync_submodel(Fleet& fleet, int cycles, const char* method,
                            MaskFn mask_for) {
  RunResult result;
  result.method = method;
  AggOptions opts;  // sample weighting, no hetero weights for baselines
  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    HELIOS_TRACE_SPAN("baseline.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Masks are drawn sequentially first (mask_for may consume per-client
    // RNG state), then the independent training cycles fan out.
    std::vector<Client*> roster = fleet.round_roster(cycle);
    std::vector<std::vector<std::uint8_t>> masks;
    masks.reserve(roster.size());
    for (Client* client : roster) {
      masks.push_back(mask_for(*client, cycle));
    }
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        roster, [&](Client& client, std::size_t i) {
          return client.run_cycle(fleet.server().global(),
                                  fleet.server().global_buffers(), masks[i]);
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    fleet.server().aggregate(net.aggregate_span(updates), opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, roster.size())),
         net.upload_mb});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
  return result;
}

}  // namespace

RandomSubmodel::RandomSubmodel(std::uint64_t seed) : seed_(seed) {}

RunResult RandomSubmodel::run(Fleet& fleet, int cycles) {
  util::Rng rng(seed_);
  std::unordered_map<int, util::Rng> client_rng;
  for (auto& c : fleet.clients()) {
    client_rng.emplace(c->id(), rng.fork(static_cast<std::uint64_t>(c->id())));
  }
  return run_sync_submodel(
      fleet, cycles, "Random",
      [&](Client& client, int /*cycle*/) -> std::vector<std::uint8_t> {
        if (!client.is_straggler() || client.volume() >= 1.0) return {};
        return random_volume_mask(client.estimation_model(), client.volume(),
                                  client_rng.at(client.id()));
      });
}

StaticPrune::StaticPrune(std::uint64_t seed) : seed_(seed) {}

RunResult StaticPrune::run(Fleet& fleet, int cycles) {
  util::Rng rng(seed_);
  // One fixed mask per straggler for the whole run.
  std::unordered_map<int, std::vector<std::uint8_t>> fixed;
  for (auto& c : fleet.clients()) {
    if (c->is_straggler() && c->volume() < 1.0) {
      util::Rng crng = rng.fork(static_cast<std::uint64_t>(c->id()));
      fixed.emplace(c->id(), random_volume_mask(c->estimation_model(),
                                                c->volume(), crng));
    }
  }
  return run_sync_submodel(
      fleet, cycles, "Static Prune",
      [&](Client& client, int /*cycle*/) -> std::vector<std::uint8_t> {
        auto it = fixed.find(client.id());
        if (it == fixed.end()) return {};
        return it->second;
      });
}

}  // namespace helios::fl
