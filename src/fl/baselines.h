// Baselines 4 & 5: submodel training without Helios' contribution-aware
// rotation.
//
// RandomSubmodel (Caldas et al. [12]): every cycle each straggler trains a
// fresh uniformly random submodel at its expected volume. Synchronous
// aggregation; per-neuron averaging without heterogeneity weights.
//
// StaticPrune (Jiang et al. [14] style): each straggler trains a submodel
// chosen once and kept forever — the "permanent model structure loss" the
// paper argues against; pruned neurons never rejoin training.
#pragma once

#include "fl/strategy.h"

namespace helios::fl {

class RandomSubmodel final : public Strategy {
 public:
  explicit RandomSubmodel(std::uint64_t seed = 99);
  std::string name() const override { return "Random"; }
  RunResult run(Fleet& fleet, int cycles) override;

 private:
  std::uint64_t seed_;
};

class StaticPrune final : public Strategy {
 public:
  explicit StaticPrune(std::uint64_t seed = 99);
  std::string name() const override { return "Static Prune"; }
  RunResult run(Fleet& fleet, int cycles) override;

 private:
  std::uint64_t seed_;
};

}  // namespace helios::fl
