// Baselines 4 & 5: submodel training without Helios' contribution-aware
// rotation.
//
// RandomSubmodel (Caldas et al. [12]): every cycle each straggler trains a
// fresh uniformly random submodel at its expected volume. Synchronous
// aggregation; per-neuron averaging without heterogeneity weights.
//
// StaticPrune (Jiang et al. [14] style): each straggler trains a submodel
// chosen once and kept forever — the "permanent model structure loss" the
// paper argues against; pruned neurons never rejoin training.
#pragma once

#include <map>

#include "fl/strategy.h"
#include "util/rng.h"

namespace helios::fl {

class RandomSubmodel final : public Strategy {
 public:
  explicit RandomSubmodel(std::uint64_t seed = 99);
  std::string name() const override { return "Random"; }
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

  /// Cross-cycle state: each straggler's mask-drawing RNG position.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  std::uint64_t seed_;
  /// Per-client mask RNG, forked by id at cycle 0 (ordered map: checkpoint
  /// serialization must not depend on hash iteration order).
  std::map<int, util::Rng> client_rng_;
};

class StaticPrune final : public Strategy {
 public:
  explicit StaticPrune(std::uint64_t seed = 99);
  std::string name() const override { return "Static Prune"; }
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

  /// Cross-cycle state: the once-drawn permanent mask per straggler.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  std::uint64_t seed_;
  std::map<int, std::vector<std::uint8_t>> fixed_;
};

}  // namespace helios::fl
