#include "fl/checkpoint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "fl/fleet.h"
#include "fl/metrics.h"
#include "fl/strategy.h"
#include "fl/transport.h"
#include "net/wire.h"
#include "obs/telemetry.h"
#include "util/atomic_file.h"

namespace helios::fl {
namespace {

constexpr char kMagic[8] = {'H', 'E', 'L', 'I', 'O', 'S', 'F', 'K'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;  // magic, ver, size, crc

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(b, 8);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint32_t payload_crc(std::string_view payload) {
  return net::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()));
}

}  // namespace

// ---- CheckpointWriter -------------------------------------------------------

void CheckpointWriter::u32(std::uint32_t v) { put_u32(out_, v); }
void CheckpointWriter::u64(std::uint64_t v) { put_u64(out_, v); }

void CheckpointWriter::f32(float v) {
  std::uint32_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void CheckpointWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void CheckpointWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void CheckpointWriter::rng(const util::RngState& s) {
  for (int i = 0; i < 4; ++i) u64(s.words[i]);
  f64(s.cached_normal);
  boolean(s.has_cached_normal);
}

void CheckpointWriter::vec_f32(const std::vector<float>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) f32(x);
}

void CheckpointWriter::vec_f64(const std::vector<double>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) f64(x);
}

void CheckpointWriter::vec_i32(const std::vector<int>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) i32(x);
}

void CheckpointWriter::vec_u8(const std::vector<std::uint8_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::uint8_t x : v) u8(x);
}

void CheckpointWriter::vec_size(const std::vector<std::size_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::size_t x : v) u64(static_cast<std::uint64_t>(x));
}

void CheckpointWriter::blob(const std::string& bytes) {
  u64(bytes.size());
  out_.append(bytes);
}

// ---- CheckpointReader -------------------------------------------------------

const char* CheckpointReader::need(std::size_t n) {
  if (data_.size() - pos_ < n) {
    throw CheckpointError("checkpoint payload truncated: need " +
                          std::to_string(n) + " bytes at offset " +
                          std::to_string(pos_) + ", have " +
                          std::to_string(data_.size() - pos_));
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::uint8_t CheckpointReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}
std::uint32_t CheckpointReader::u32() { return get_u32(need(4)); }
std::uint64_t CheckpointReader::u64() { return get_u64(need(8)); }

float CheckpointReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

double CheckpointReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string CheckpointReader::str() {
  const std::uint32_t n = u32();
  return std::string(need(n), n);
}

util::RngState CheckpointReader::rng() {
  util::RngState s;
  for (int i = 0; i < 4; ++i) s.words[i] = u64();
  s.cached_normal = f64();
  s.has_cached_normal = boolean();
  return s;
}

std::vector<float> CheckpointReader::vec_f32() {
  const std::uint32_t n = u32();
  std::vector<float> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = f32();
  return v;
}

std::vector<double> CheckpointReader::vec_f64() {
  const std::uint32_t n = u32();
  std::vector<double> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = f64();
  return v;
}

std::vector<int> CheckpointReader::vec_i32() {
  const std::uint32_t n = u32();
  std::vector<int> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i32();
  return v;
}

std::vector<std::uint8_t> CheckpointReader::vec_u8() {
  const std::uint32_t n = u32();
  std::vector<std::uint8_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = u8();
  return v;
}

std::vector<std::size_t> CheckpointReader::vec_size() {
  const std::uint32_t n = u32();
  std::vector<std::size_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::size_t>(u64());
  }
  return v;
}

std::string CheckpointReader::blob() {
  const std::uint64_t n = u64();
  return std::string(need(static_cast<std::size_t>(n)),
                     static_cast<std::size_t>(n));
}

void CheckpointReader::expect_done(const char* what) const {
  if (!done()) {
    throw CheckpointError(std::string(what) + ": " +
                          std::to_string(remaining()) +
                          " unconsumed bytes (schema drift?)");
  }
}

// ---- File framing -----------------------------------------------------------

void write_checkpoint_file(const std::string& path, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic, sizeof kMagic);
  put_u32(frame, kCheckpointVersion);
  put_u64(frame, payload.size());
  put_u32(frame, payload_crc(payload));
  frame.append(payload);
  util::atomic_write_file(path, frame);
}

std::string read_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw CheckpointError("checkpoint missing or unreadable: " + path);
  }
  std::string data((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (data.size() < kHeaderBytes) {
    throw CheckpointError("checkpoint header truncated: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    throw CheckpointError("checkpoint has wrong magic (not a Helios "
                          "checkpoint): " + path);
  }
  const std::uint32_t version = get_u32(data.data() + 8);
  if (version != kCheckpointVersion) {
    throw CheckpointError("checkpoint schema version " +
                          std::to_string(version) + " unsupported (expected " +
                          std::to_string(kCheckpointVersion) + "): " + path);
  }
  const std::uint64_t size = get_u64(data.data() + 12);
  if (data.size() < kHeaderBytes + size) {
    throw CheckpointError("checkpoint payload truncated: " + path);
  }
  if (data.size() > kHeaderBytes + size) {
    throw CheckpointError("checkpoint has trailing bytes: " + path);
  }
  const std::uint32_t want = get_u32(data.data() + 20);
  const std::string_view payload(data.data() + kHeaderBytes,
                                 static_cast<std::size_t>(size));
  if (payload_crc(payload) != want) {
    throw CheckpointError("checkpoint CRC mismatch (corrupt file): " + path);
  }
  return std::string(payload);
}

namespace {

struct Meta {
  std::string spec_name;
  std::uint64_t param_count = 0;
  std::uint64_t buffer_count = 0;
  int neuron_total = 0;
  std::string method;
  int completed_cycles = 0;
  std::uint64_t journal_offset = 0;
  std::uint64_t journal_events = 0;
};

Meta read_meta(CheckpointReader& r) {
  Meta m;
  m.spec_name = r.str();
  m.param_count = r.u64();
  m.buffer_count = r.u64();
  m.neuron_total = r.i32();
  m.method = r.str();
  m.completed_cycles = r.i32();
  m.journal_offset = r.u64();
  m.journal_events = r.u64();
  return m;
}

}  // namespace

CheckpointInfo peek_checkpoint(const std::string& path) {
  const std::string payload = read_checkpoint_file(path);
  CheckpointReader r(payload);
  const Meta m = read_meta(r);
  CheckpointInfo info;
  info.spec_name = m.spec_name;
  info.method = m.method;
  info.completed_cycles = m.completed_cycles;
  info.journal_byte_offset = m.journal_offset;
  info.journal_events = m.journal_events;
  return info;
}

// ---- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(std::string base_path, int keep_last)
    : base_(std::move(base_path)), keep_last_(keep_last) {
  if (base_.empty()) {
    throw std::invalid_argument("CheckpointManager: empty base path");
  }
  if (keep_last_ < 1) {
    throw std::invalid_argument("CheckpointManager: keep_last must be >= 1");
  }
  const std::filesystem::path dir =
      std::filesystem::path(base_).parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
  }
}

std::string CheckpointManager::generation_path(long n) const {
  return base_ + ".gen" + std::to_string(n);
}

std::vector<long> CheckpointManager::generations() const {
  namespace fs = std::filesystem;
  const fs::path base(base_);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = base.filename().string() + ".gen";
  std::vector<long> gens;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (!std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      continue;
    }
    gens.push_back(std::stol(digits));
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::string CheckpointManager::save(std::string_view payload) {
  std::vector<long> gens = generations();
  const long next = gens.empty() ? 0 : gens.back() + 1;
  const std::string path = generation_path(next);
  write_checkpoint_file(path, payload);
  gens.push_back(next);
  // Prune oldest beyond keep_last — AFTER the new generation is durable, so
  // a crash inside save() never reduces the number of valid fallbacks.
  while (gens.size() > static_cast<std::size_t>(keep_last_)) {
    std::error_code ec;
    std::filesystem::remove(generation_path(gens.front()), ec);
    gens.erase(gens.begin());
  }
  return path;
}

std::optional<std::string> CheckpointManager::latest_valid(
    std::string* payload_out) const {
  const std::vector<long> gens = generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const std::string path = generation_path(*it);
    try {
      std::string payload = read_checkpoint_file(path);
      if (payload_out != nullptr) *payload_out = std::move(payload);
      return path;
    } catch (const CheckpointError&) {
      // Torn or corrupt (e.g. SIGKILL mid-write before the atomic rename,
      // or bit rot) — fall back to the previous generation.
      continue;
    }
  }
  return std::nullopt;
}

// ---- Full-state payloads ----------------------------------------------------

std::string make_checkpoint_payload(Fleet& fleet, const Strategy* strategy,
                                    const RunResult& partial) {
  CheckpointWriter w;

  // Meta. The journal position lives here so peek_checkpoint can hand it to
  // the resumed process before any fleet (or telemetry sink) exists.
  w.str(fleet.spec().name);
  w.u64(fleet.server().param_count());
  w.u64(fleet.server().global_buffers().size());
  w.i32(fleet.server().neuron_total());
  w.str(partial.method);
  w.i32(static_cast<int>(partial.rounds.size()));
  obs::TelemetrySink::JournalPosition jp;
  if (fleet.telemetry() != nullptr) {
    jp = fleet.telemetry()->journal_position();
  }
  w.u64(jp.byte_offset);
  w.u64(jp.events);

  // Registered components (e.g. churn) — saved before the client roster
  // because their load may re-add mid-run joiners to the rebuilt fleet.
  const auto& comps = fleet.checkpointables();
  w.u32(static_cast<std::uint32_t>(comps.size()));
  for (const auto& [name, comp] : comps) {
    w.str(name);
    CheckpointWriter sub;
    comp->save_state(fleet, sub);
    w.blob(sub.buffer());
  }

  // Client roster + per-client cross-round state. Replica parameters are
  // not stored: they are overwritten by the global snapshot at every cycle
  // start, so only the materialized flag (memory footprint fidelity) and
  // the genuinely cross-cycle pieces travel.
  w.u32(static_cast<std::uint32_t>(fleet.size()));
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    Client& c = fleet.client(i);
    w.i32(c.id());
    w.boolean(c.is_straggler());
    w.boolean(c.active());
    w.f64(c.volume());
    w.i32(c.cycles_completed());
    w.f32(c.config().proximal_mu);
    w.boolean(c.materialized());
    // Loader state is gated on validity: a fresh lazy client has no loader
    // yet (it is a pure function of the seed, rebuilt on first use), so
    // nothing needs to travel.
    const Client::LoaderState ls = c.loader_state();
    w.boolean(ls.valid);
    if (ls.valid) {
      w.rng(ls.rng);
      w.vec_size(ls.order);
      w.u64(static_cast<std::uint64_t>(ls.cursor));
    }
    w.vec_f32(c.optimizer().velocity());
  }

  // Virtual clock.
  w.f64(fleet.clock().now());

  // Server model.
  w.vec_f32(fleet.server().global());
  w.vec_f32(fleet.server().global_buffers());

  // Network session: per-device channel roster with config overrides, RNG
  // positions and scripted faults. The session object itself is rebuilt by
  // the resuming process; this section overlays its mutable state.
  NetworkSession* session = fleet.network();
  w.boolean(session != nullptr);
  if (session != nullptr) {
    w.boolean(session->simulated());
    net::RoundProtocol& proto = session->protocol();
    const auto& overrides = proto.overrides();
    w.u32(static_cast<std::uint32_t>(overrides.size()));
    for (const auto& [id, cfg] : overrides) {
      w.i32(id);
      w.f64(cfg.bandwidth_mbps);
      w.f64(cfg.latency_s);
      w.f64(cfg.jitter_s);
      w.f64(cfg.loss_prob);
    }
    const std::vector<int> ids = proto.device_ids();
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (int id : ids) {
      const net::SimulatedChannel& ch = proto.channel(id);
      w.i32(id);
      w.f64(ch.bandwidth_mbps());
      const net::ChannelConfig& cfg = ch.config();
      w.f64(cfg.bandwidth_mbps);
      w.f64(cfg.latency_s);
      w.f64(cfg.jitter_s);
      w.f64(cfg.loss_prob);
      w.rng(ch.rng_state());
      w.f64(ch.death_s());
      const auto& outages = ch.outages();
      w.u32(static_cast<std::uint32_t>(outages.size()));
      for (const auto& [start, end] : outages) {
        w.f64(start);
        w.f64(end);
      }
    }
  }

  // Partial RunResult.
  w.u32(static_cast<std::uint32_t>(partial.rounds.size()));
  for (const RoundRecord& rec : partial.rounds) {
    w.i32(rec.cycle);
    w.f64(rec.virtual_time);
    w.f64(rec.test_accuracy);
    w.f64(rec.mean_train_loss);
    w.f64(rec.upload_mb);
  }

  // Strategy state.
  w.boolean(strategy != nullptr);
  if (strategy != nullptr) {
    w.str(strategy->name());
    CheckpointWriter sub;
    strategy->save_state(fleet, sub);
    w.blob(sub.buffer());
  }

  return w.take();
}

RunResult restore_checkpoint_payload(Fleet& fleet, Strategy* strategy,
                                     std::string_view payload) {
  CheckpointReader r(payload);

  const Meta meta = read_meta(r);
  if (meta.spec_name != fleet.spec().name) {
    throw CheckpointError("checkpoint architecture mismatch: snapshot spec '" +
                          meta.spec_name + "' vs rebuilt fleet spec '" +
                          fleet.spec().name + "'");
  }
  if (meta.param_count != fleet.server().param_count() ||
      meta.buffer_count != fleet.server().global_buffers().size() ||
      meta.neuron_total != fleet.server().neuron_total()) {
    throw CheckpointError(
        "checkpoint architecture mismatch: snapshot has " +
        std::to_string(meta.param_count) + " params / " +
        std::to_string(meta.buffer_count) + " buffers / " +
        std::to_string(meta.neuron_total) + " neurons; the rebuilt fleet has " +
        std::to_string(fleet.server().param_count()) + " / " +
        std::to_string(fleet.server().global_buffers().size()) + " / " +
        std::to_string(fleet.server().neuron_total()));
  }

  // Components first: churn re-admits mid-run joiners here, so the roster
  // check below sees the full population.
  const auto& comps = fleet.checkpointables();
  const std::uint32_t comp_count = r.u32();
  if (comp_count != comps.size()) {
    throw CheckpointError(
        "checkpoint component count mismatch: snapshot has " +
        std::to_string(comp_count) + ", fleet registered " +
        std::to_string(comps.size()));
  }
  for (std::uint32_t i = 0; i < comp_count; ++i) {
    const std::string name = r.str();
    if (name != comps[i].first) {
      throw CheckpointError("checkpoint component mismatch at slot " +
                            std::to_string(i) + ": snapshot '" + name +
                            "' vs registered '" + comps[i].first + "'");
    }
    const std::string blob = r.blob();
    CheckpointReader sub(blob);
    comps[i].second->load_state(fleet, sub);
    sub.expect_done(("component '" + name + "'").c_str());
  }

  // Client roster + state.
  const std::uint32_t n_clients = r.u32();
  if (n_clients != fleet.size()) {
    throw CheckpointError("checkpoint roster mismatch: snapshot has " +
                          std::to_string(n_clients) +
                          " clients, the rebuilt fleet has " +
                          std::to_string(fleet.size()));
  }
  for (std::uint32_t i = 0; i < n_clients; ++i) {
    Client& c = fleet.client(i);
    const int id = r.i32();
    if (id != c.id()) {
      throw CheckpointError("checkpoint roster mismatch at index " +
                            std::to_string(i) + ": snapshot id " +
                            std::to_string(id) + " vs fleet id " +
                            std::to_string(c.id()));
    }
    c.set_straggler(r.boolean());
    c.set_active(r.boolean());
    c.set_volume(r.f64());
    c.set_cycles_completed(r.i32());
    c.set_proximal_mu(r.f32());
    const bool materialized = r.boolean();
    if (r.boolean()) {
      const util::RngState loader_rng = r.rng();
      std::vector<std::size_t> order = r.vec_size();
      const std::size_t cursor = static_cast<std::size_t>(r.u64());
      c.restore_loader_state(loader_rng, std::move(order), cursor);
    }
    c.optimizer().set_velocity(r.vec_f32());
    // Only the flag is restored: parameters are overwritten at cycle start.
    if (materialized) {
      c.model();
    } else {
      c.hibernate();
    }
  }

  // Virtual clock.
  fleet.clock().reset();
  fleet.clock().advance_to(r.f64());

  // Server model.
  fleet.server().set_global(r.vec_f32());
  fleet.server().set_global_buffers(r.vec_f32());

  // Network session.
  const bool had_session = r.boolean();
  NetworkSession* session = fleet.network();
  if (had_session && session == nullptr) {
    throw CheckpointError(
        "checkpoint has a network session but the rebuilt fleet has none "
        "(attach an identically configured NetworkSession before resume)");
  }
  if (!had_session && session != nullptr) {
    throw CheckpointError(
        "rebuilt fleet has a network session but the checkpoint has none");
  }
  if (had_session) {
    const bool was_simulated = r.boolean();
    if (was_simulated != session->simulated()) {
      throw CheckpointError(
          "checkpoint network mode mismatch (simulated vs ideal)");
    }
    net::RoundProtocol& proto = session->protocol();
    const std::uint32_t n_overrides = r.u32();
    for (std::uint32_t i = 0; i < n_overrides; ++i) {
      const int id = r.i32();
      net::ChannelConfig cfg;
      cfg.bandwidth_mbps = r.f64();
      cfg.latency_s = r.f64();
      cfg.jitter_s = r.f64();
      cfg.loss_prob = r.f64();
      proto.configure_device(id, cfg);
    }
    const std::uint32_t n_devices = r.u32();
    for (std::uint32_t i = 0; i < n_devices; ++i) {
      const int id = r.i32();
      const double resolved_bw = r.f64();
      net::ChannelConfig cfg;
      cfg.bandwidth_mbps = r.f64();
      cfg.latency_s = r.f64();
      cfg.jitter_s = r.f64();
      cfg.loss_prob = r.f64();
      const util::RngState rng = r.rng();
      const double death = r.f64();
      const std::uint32_t n_outages = r.u32();
      std::vector<std::pair<double, double>> outages;
      outages.reserve(n_outages);
      for (std::uint32_t k = 0; k < n_outages; ++k) {
        const double start = r.f64();
        const double end = r.f64();
        outages.emplace_back(start, end);
      }
      // Registration forks the protocol's seed rng purely by id, so a
      // device registered here gets the same base channel it had in the
      // crashed process; the snapshot then overlays the mutable state.
      if (!proto.has_device(id)) proto.add_device(id, resolved_bw);
      net::SimulatedChannel& ch = proto.channel(id);
      ch.set_config(cfg);
      ch.set_rng_state(rng);
      if (death >= 0.0) ch.set_death(death);
      ch.set_outages(std::move(outages));
    }
  }

  // Partial RunResult.
  RunResult result;
  result.method = meta.method;
  const std::uint32_t n_rounds = r.u32();
  result.rounds.reserve(n_rounds);
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    RoundRecord rec;
    rec.cycle = r.i32();
    rec.virtual_time = r.f64();
    rec.test_accuracy = r.f64();
    rec.mean_train_loss = r.f64();
    rec.upload_mb = r.f64();
    result.rounds.push_back(rec);
  }

  // Strategy state.
  const bool had_strategy = r.boolean();
  if (had_strategy && strategy == nullptr) {
    throw CheckpointError(
        "checkpoint carries strategy state but no strategy was supplied");
  }
  if (!had_strategy && strategy != nullptr) {
    throw CheckpointError(
        "a strategy was supplied but the checkpoint carries no strategy "
        "state");
  }
  if (had_strategy) {
    const std::string name = r.str();
    if (name != strategy->name()) {
      throw CheckpointError("checkpoint strategy mismatch: snapshot '" +
                            name + "' vs supplied '" + strategy->name() +
                            "'");
    }
    const std::string blob = r.blob();
    CheckpointReader sub(blob);
    strategy->load_state(fleet, sub);
    sub.expect_done("strategy state");
  }

  r.expect_done("checkpoint payload");
  return result;
}

// ---- Fleet glue -------------------------------------------------------------

void Fleet::register_checkpointable(std::string name,
                                    Checkpointable* component) {
  if (component == nullptr) {
    throw std::invalid_argument("register_checkpointable: null component");
  }
  checkpointables_.emplace_back(std::move(name), component);
}

void Fleet::save_checkpoint(const std::string& path, const Strategy* strategy,
                            const RunResult& result) {
  write_checkpoint_file(path, make_checkpoint_payload(*this, strategy,
                                                      result));
}

RunResult Fleet::resume(const std::string& path, Strategy* strategy) {
  return restore_checkpoint_payload(*this, strategy,
                                    read_checkpoint_file(path));
}

// ---- Resumable run driver ---------------------------------------------------

RunResult run_resumable(Fleet& fleet, Strategy& strategy, int cycles,
                        const ResumableOptions& opts) {
  if (opts.checkpoint_every < 1) {
    throw std::invalid_argument("run_resumable: checkpoint_every must be >= 1");
  }
  CheckpointManager manager(opts.base_path, opts.keep_last);

  RunResult result;
  int done = 0;
  std::string payload;
  if (manager.latest_valid(&payload).has_value()) {
    result = restore_checkpoint_payload(fleet, &strategy, payload);
    done = static_cast<int>(result.rounds.size());
  } else {
    result.method = strategy.name();
  }

  while (done < cycles) {
    const int chunk = std::min(opts.checkpoint_every, cycles - done);
    strategy.run_range(fleet, result, done, done + chunk);
    const int recorded = static_cast<int>(result.rounds.size());
    manager.save(make_checkpoint_payload(fleet, &strategy, result));
    // An event-driven strategy may exhaust legitimately before `cycles`
    // (e.g. every device died); no further progress is possible.
    if (recorded == done) break;
    done = recorded;
  }
  return result;
}

}  // namespace helios::fl
