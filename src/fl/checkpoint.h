// Crash-tolerant checkpoint/resume of the full collaboration state.
//
// A checkpoint is a versioned binary snapshot of *everything* a run needs
// to continue bit-identically after the process dies at a round boundary:
// the server's global parameters and buffers, the virtual clock, every
// client's cross-round state (optimizer velocity, data-loader position,
// volume, lr-decay counter, roster flags), the network session's channel
// roster with per-device RNG positions / scripted faults, the journal's
// byte offset, the partial RunResult recorded so far, and the strategy's
// own state (per-neuron contributions U^ij, C_s rotation counters, async
// event heaps, ...) via the Strategy save/load hooks.
//
// File format (schema v1):
//
//   magic "HELIOSFK" | u32 version | u64 payload_size | u32 crc32(payload)
//   | payload
//
// written atomically via util::atomic_write_file, so a reader sees either
// the complete previous generation or the complete new one — never a torn
// file. CheckpointManager keeps the last K generations (`<base>.gen<N>`)
// and falls back to generation K-1 when the newest file is truncated or
// corrupt.
//
// The resume contract: rebuild the identical setup (fleet from the same
// specs/seeds/datasets, same sampler, same NetworkSession options, a fresh
// strategy with the same config), then Fleet::resume(path, &strategy) and
// Strategy::run_range(fleet, partial, partial.rounds.size(), cycles). The
// static configuration — model architecture, datasets, profiles — is NOT in
// the snapshot; it is re-derived from code, which is what keeps hollow
// (hibernated) clients free: their replicas rebuild from the spec on first
// use. The checkpoint rejects mismatched architectures (spec name, param /
// buffer / neuron counts, client roster) with a clear error.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace helios::fl {

class Fleet;
struct RunResult;

/// Any checkpoint problem: framing (bad magic / version / CRC / length),
/// schema drift, or a state/architecture mismatch at restore.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// v2: per-client loader state gained a validity gate (lazy-data clients can
// be snapshotted while data-hibernated, with no loader built yet).
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Little-endian binary encoder for checkpoint payloads. All multi-byte
/// values are explicitly little-endian, so a snapshot is portable across
/// builds on the (LE) platforms the project targets.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void str(std::string_view s);
  void rng(const util::RngState& s);
  void vec_f32(const std::vector<float>& v);
  void vec_f64(const std::vector<double>& v);
  void vec_i32(const std::vector<int>& v);
  void vec_u8(const std::vector<std::uint8_t>& v);
  void vec_size(const std::vector<std::size_t>& v);
  /// A length-prefixed nested payload (component / strategy sections), so a
  /// reader can verify it consumed the section exactly.
  void blob(const std::string& bytes);

  const std::string& buffer() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Mirror decoder; every read throws CheckpointError on payload overrun, so
/// a truncated or trailing-garbage section cannot be silently accepted.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  bool boolean() { return u8() != 0; }
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  util::RngState rng();
  std::vector<float> vec_f32();
  std::vector<double> vec_f64();
  std::vector<int> vec_i32();
  std::vector<std::uint8_t> vec_u8();
  std::vector<std::size_t> vec_size();
  std::string blob();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws unless the payload was consumed exactly.
  void expect_done(const char* what) const;

 private:
  const char* need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// A component with cross-round state that rides inside the fleet snapshot
/// (e.g. sim::ChurnProcess). Registered by name via
/// Fleet::register_checkpointable; names and registration order must match
/// between the saving and the resuming process.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void save_state(const Fleet& fleet, CheckpointWriter& w) const = 0;
  /// Restores the snapshotted state. May mutate the fleet roster (churn
  /// re-admits its joiners here, before per-client state loads).
  virtual void load_state(Fleet& fleet, CheckpointReader& r) = 0;
};

// ---- File framing ---------------------------------------------------------

/// Frames `payload` (magic + version + size + CRC32) and replaces `path`
/// atomically (temp + fsync + rename). A crash at any instant leaves either
/// the previous complete file or the new complete file.
void write_checkpoint_file(const std::string& path, std::string_view payload);

/// Validates the framing of `path` and returns the payload. Throws
/// CheckpointError with a specific reason on a missing file, short header,
/// bad magic, unsupported version, truncated payload, trailing bytes, or a
/// CRC mismatch (bit flips anywhere in the file are caught).
std::string read_checkpoint_file(const std::string& path);

/// Cheap header probe of a checkpoint, readable before the fleet (or the
/// telemetry sink) for the resumed process exists. Used to reopen the
/// journal at the right byte offset and to size the remaining work.
struct CheckpointInfo {
  std::string spec_name;
  std::string method;
  int completed_cycles = 0;
  std::uint64_t journal_byte_offset = 0;
  std::uint64_t journal_events = 0;
};
CheckpointInfo peek_checkpoint(const std::string& path);

// ---- Generations ----------------------------------------------------------

/// Keeps the last K checkpoint generations under `<base>.gen<number>`.
/// save() writes the next generation atomically and prunes the oldest;
/// latest_valid() returns the newest generation whose framing validates,
/// silently skipping torn or corrupt files — the fallback that makes a
/// SIGKILL mid-checkpoint-write recoverable.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string base_path, int keep_last = 3);

  const std::string& base_path() const { return base_; }
  int keep_last() const { return keep_last_; }

  /// Existing generation numbers, ascending.
  std::vector<long> generations() const;
  std::string generation_path(long n) const;

  /// Writes `payload` as the next generation; returns its path.
  std::string save(std::string_view payload);

  /// Newest generation that validates; fills `payload_out` (when non-null)
  /// with its payload. std::nullopt when no valid generation exists.
  std::optional<std::string> latest_valid(std::string* payload_out) const;

 private:
  std::string base_;
  int keep_last_;
};

// ---- Full-state payloads ---------------------------------------------------

class Strategy;

/// Serializes the complete collaboration state of `fleet` (+ the strategy's
/// state when non-null, + every registered Checkpointable) together with the
/// partial RunResult recorded so far.
std::string make_checkpoint_payload(Fleet& fleet, const Strategy* strategy,
                                    const RunResult& partial);

/// Restores a payload into a freshly rebuilt `fleet` (and `strategy`);
/// returns the partial RunResult — resume running at cycle
/// partial.rounds.size(). Throws CheckpointError on any mismatch with the
/// rebuilt setup (architecture, roster, strategy name, component names).
RunResult restore_checkpoint_payload(Fleet& fleet, Strategy* strategy,
                                     std::string_view payload);

// ---- Resumable run driver --------------------------------------------------

struct ResumableOptions {
  /// Generation base path, e.g. "run/ckpt" -> run/ckpt.gen0, .gen1, ...
  std::string base_path;
  int keep_last = 3;
  /// Checkpoint every N completed rounds.
  int checkpoint_every = 1;
};

/// Runs `cycles` rounds with a checkpoint at every round boundary, resuming
/// from the newest valid generation if one exists (the strategy must be
/// freshly constructed with the same configuration). The returned RunResult
/// covers all `cycles` rounds — restored prefix plus freshly run suffix —
/// and is bit-identical to an uninterrupted Strategy::run of the same setup.
RunResult run_resumable(Fleet& fleet, Strategy& strategy, int cycles,
                        const ResumableOptions& opts);

}  // namespace helios::fl
