#include "fl/client.h"

#include "obs/telemetry.h"
#include "tensor/ops.h"

#include <algorithm>
#include <stdexcept>

namespace helios::fl {

double ClientUpdate::trained_fraction(int neuron_total) const {
  if (neuron_total <= 0) return 1.0;
  if (trained_mask.empty()) return 1.0;
  int active = 0;
  for (auto b : trained_mask) active += (b != 0);
  return static_cast<double>(active) / neuron_total;
}

Client::Client(int id, const models::ModelSpec& spec, data::Dataset local_data,
               ClientConfig config, device::ResourceProfile profile)
    : id_(id),
      data_(std::move(local_data)),
      config_(config),
      profile_(std::move(profile)),
      spec_(spec),
      opt_(config.lr, config.momentum, 0.0F, config.grad_clip),
      loader_(std::make_unique<data::DataLoader>(
          data_, config.batch_size, util::Rng(config.seed).fork(0x10AD))) {
  if (!profile_.valid()) throw std::invalid_argument("Client: invalid profile");
  data_.validate();
}

Client::Client(int id, const models::ModelSpec& spec, DataFactory data_factory,
               std::size_t nominal_samples, ClientConfig config,
               device::ResourceProfile profile)
    : id_(id),
      data_factory_(std::move(data_factory)),
      nominal_samples_(nominal_samples),
      config_(config),
      profile_(std::move(profile)),
      spec_(spec),
      opt_(config.lr, config.momentum, 0.0F, config.grad_clip) {
  if (!profile_.valid()) throw std::invalid_argument("Client: invalid profile");
  if (!data_factory_) throw std::invalid_argument("Client: null data factory");
}

nn::Model& Client::ensure_model() {
  if (!model_) {
    model_ = std::make_unique<nn::Model>(spec_.build(config_.seed));
    if (expected_params_ != 0 &&
        model_->param_count() != expected_params_) {
      throw std::logic_error("Client: client/server parameter count mismatch");
    }
  }
  return *model_;
}

nn::Model& Client::model() { return ensure_model(); }

nn::Model& Client::estimation_model() {
  if (model_) return *model_;
  if (estimation_model_) return *estimation_model_;
  return ensure_model();
}

data::DataLoader& Client::ensure_data() {
  if (loader_) return *loader_;
  if (data_factory_ && data_.size() == 0) {
    data_ = data_factory_();
    data_.validate();
  }
  // Same RNG stream as the eager constructor, so a lazy client's first epoch
  // order is bit-identical to an eager one's.
  loader_ = std::make_unique<data::DataLoader>(
      data_, config_.batch_size, util::Rng(config_.seed).fork(0x10AD));
  if (stash_.valid) {
    loader_->restore(stash_.rng, std::move(stash_.order), stash_.cursor);
    stash_ = LoaderState{};
  }
  return *loader_;
}

std::size_t Client::num_samples() const {
  if (loader_ || !data_factory_) return static_cast<std::size_t>(data_.size());
  // Data-hibernated: a stashed epoch order carries the exact shard size;
  // before first materialization only the nominal size is known.
  if (stash_.valid) return stash_.order.size();
  return nominal_samples_;
}

Client::LoaderState Client::loader_state() const {
  LoaderState s;
  if (loader_) {
    s.rng = loader_->rng_state();
    s.order = loader_->order();
    s.cursor = loader_->cursor();
    s.valid = true;
  } else if (stash_.valid) {
    s = stash_;
  }
  return s;
}

void Client::restore_loader_state(const util::RngState& rng,
                                  std::vector<std::size_t> order,
                                  std::size_t cursor) {
  if (loader_) {
    loader_->restore(rng, std::move(order), cursor);
    return;
  }
  stash_.rng = rng;
  stash_.order = std::move(order);
  stash_.cursor = cursor;
  stash_.valid = true;
}

void Client::hibernate() {
  // Momentum velocity is cross-cycle optimizer state; releasing it would
  // silently change training. Memory-bounded fleets require momentum == 0.
  if (config_.momentum != 0.0F) return;
  if (model_) {
    model_.reset();
    opt_ = nn::Sgd(config_.lr, config_.momentum, 0.0F, config_.grad_clip);
  }
  if (data_factory_ && loader_) {
    // Stash the loader's cross-epoch state so re-materialization resumes the
    // identical shuffle stream, then drop the shard.
    stash_.rng = loader_->rng_state();
    stash_.order = loader_->order();
    stash_.cursor = loader_->cursor();
    stash_.valid = true;
    loader_.reset();
    data_ = data::Dataset{};
  }
}

std::size_t Client::replica_bytes() const {
  if (!model_) return 0;
  // Params + grads (+ the optimizer's flat velocity when momentum is on),
  // plus buffers. Activations are transient and excluded.
  const std::size_t params = model_->param_count();
  const std::size_t per_param = config_.momentum != 0.0F ? 3 : 2;
  return (params * per_param + model_->buffer_count()) * sizeof(float);
}

ClientUpdate Client::run_cycle(std::span<const float> global_params,
                               std::span<const float> global_buffers,
                               std::span<const std::uint8_t> neuron_mask,
                               double work_scale) {
  if (work_scale <= 0.0 || work_scale > 1.0) {
    throw std::invalid_argument("run_cycle: work_scale out of (0, 1]");
  }
  HELIOS_TRACE_SPAN("client.run_cycle", {{"device", id_}});
  if (telemetry_) telemetry_->set_device(id_);
  nn::Model& model = ensure_model();
  data::DataLoader& loader = ensure_data();
  opt_.set_lr(current_lr());
  model.load_params(global_params);
  model.load_buffers(global_buffers);
  if (neuron_mask.empty()) {
    model.clear_neuron_mask();
  } else {
    model.set_neuron_mask(neuron_mask);
  }

  double loss_sum = 0.0;
  int batches = 0;
  int samples_processed = 0;
  {
    HELIOS_TRACE_SPAN("client.train",
                      {{"device", id_}, {"epochs", config_.local_epochs}});
    for (int epoch = 0; epoch < config_.local_epochs; ++epoch) {
      loader.reset();
      const int per_epoch = std::max(
          1, static_cast<int>(loader.batches_per_epoch() * work_scale));
      for (int b = 0; b < per_epoch; ++b) {
        data::Batch batch = loader.next();
        const nn::StepResult step = local_step(batch, global_params);
        loss_sum += step.loss;
        ++batches;
        samples_processed += batch.size();
      }
    }
  }

  // Cost-model the cycle while the mask is still installed, then clean up.
  const device::WorkloadEstimate workload = device::estimate_workload(
      model, samples_processed / std::max(1, config_.local_epochs),
      config_.local_epochs);

  ClientUpdate update;
  update.client_id = id_;
  update.params = model.params_flat();
  update.buffers = model.buffers_flat();
  update.trained_mask.assign(neuron_mask.begin(), neuron_mask.end());
  update.sample_count = num_samples();
  update.train_seconds = device::training_cycle_seconds(profile_, workload);
  update.upload_seconds = device::upload_seconds(profile_, workload);
  update.upload_mb = workload.upload_mb;
  update.mean_loss = batches > 0 ? loss_sum / batches : 0.0;

  model.clear_neuron_mask();
  ++cycles_completed_;

  if (telemetry_) {
    int trained = model.neuron_total();
    if (!neuron_mask.empty()) {
      trained = 0;
      for (auto b : neuron_mask) trained += (b != 0);
    }
    telemetry_->record_client_cycle(
        id_, profile_.name, straggler_, volume_, trained,
        model.neuron_total(), update.train_seconds, update.upload_seconds,
        update.upload_mb, update.mean_loss);
    telemetry_->set_device(-1);
  }
  return update;
}

float Client::current_lr() const {
  if (config_.lr_decay >= 1.0F) return config_.lr;
  float lr = config_.lr;
  for (int i = 0; i < cycles_completed_; ++i) lr *= config_.lr_decay;
  return lr;
}

nn::StepResult Client::local_step(const data::Batch& batch,
                                  std::span<const float> global_params) {
  nn::Model& model = *model_;  // materialized by run_cycle
  if (config_.proximal_mu <= 0.0F) {
    return nn::train_step(model, opt_, batch.images, batch.labels);
  }
  // FedProx: gradient of f_n(w) + mu/2 * ||w - w_global||^2.
  model.zero_grad();
  tensor::Tensor logits = model.forward(batch.images, /*training=*/true);
  tensor::Tensor dlogits;
  nn::StepResult result;
  result.loss =
      tensor::softmax_cross_entropy(logits, batch.labels, dlogits);
  result.correct = tensor::count_correct(logits, batch.labels);
  model.backward(dlogits);
  const float mu = config_.proximal_mu;
  for (const nn::ParamRef& ref : model.param_refs()) {
    float* g = ref.grad->data();
    const float* w = ref.param->data();
    const float* anchor = global_params.data() + ref.flat_offset;
    for (std::size_t i = 0; i < ref.param->numel(); ++i) {
      g[i] += mu * (w[i] - anchor[i]);
    }
  }
  opt_.step(model);
  return result;
}

double Client::estimate_cycle_seconds(
    std::span<const std::uint8_t> neuron_mask) {
  // Analytic only: uses the shared architecture twin when hibernated so
  // planning over a large population never materializes replicas.
  nn::Model& model = estimation_model();
  if (neuron_mask.empty()) {
    model.clear_neuron_mask();
  } else {
    model.set_neuron_mask(neuron_mask);
  }
  const device::WorkloadEstimate workload = device::estimate_workload(
      model, static_cast<int>(num_samples()), config_.local_epochs);
  model.clear_neuron_mask();
  return device::total_cycle_seconds(profile_, workload);
}

double Client::testbench_seconds(int iterations) {
  if (iterations <= 0) throw std::invalid_argument("testbench: iterations <= 0");
  nn::Model& model = estimation_model();
  model.clear_neuron_mask();
  const device::WorkloadEstimate workload = device::estimate_workload(
      model, iterations * config_.batch_size, /*local_epochs=*/1);
  return device::training_cycle_seconds(profile_, workload);
}

void Client::set_volume(double v) {
  if (v <= 0.0 || v > 1.0) {
    throw std::invalid_argument("Client: volume must be in (0, 1]");
  }
  volume_ = v;
}

void Client::set_proximal_mu(float mu) {
  if (mu < 0.0F) throw std::invalid_argument("Client: negative proximal mu");
  config_.proximal_mu = mu;
}

}  // namespace helios::fl
