// Federated client: a simulated edge device owning a local dataset, a model
// replica, and a resource profile that drives its virtual training time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "device/cost_model.h"
#include "device/resource.h"
#include "models/zoo.h"
#include "nn/sgd.h"

namespace helios::obs {
class TelemetrySink;
}

namespace helios::fl {

struct ClientConfig {
  int batch_size = 32;
  int local_epochs = 1;
  float lr = 0.05F;
  float momentum = 0.0F;
  /// Global gradient-norm clip (0 disables); stabilizes skewed local
  /// objectives under Non-IID splits.
  float grad_clip = 5.0F;
  /// FedProx proximal coefficient mu (0 = plain local SGD): adds
  /// mu * (w - w_global) to every gradient, anchoring local training to the
  /// global model (Li et al., 2020).
  float proximal_mu = 0.0F;
  /// Multiplicative learning-rate decay applied once per completed cycle:
  /// lr(cycle) = lr * lr_decay^cycle. 1.0 = constant rate.
  float lr_decay = 1.0F;
  std::uint64_t seed = 1;
};

/// What a client sends to the server after one local training cycle.
struct ClientUpdate {
  int client_id = -1;
  /// Full flat parameter vector after local training (frozen neurons are
  /// bit-identical to the global parameters the client received).
  std::vector<float> params;
  /// Non-learnable state after training (BatchNorm running statistics).
  std::vector<float> buffers;
  /// Per-neuron trained flags (empty = full model trained).
  std::vector<std::uint8_t> trained_mask;
  std::size_t sample_count = 0;
  double train_seconds = 0.0;   // virtual time, cost-model driven
  double upload_seconds = 0.0;  // virtual time
  double upload_mb = 0.0;       // communication volume of this update
  double mean_loss = 0.0;

  /// Fraction of neurons trained (r_n in the paper's Eq. 10).
  double trained_fraction(int neuron_total) const;
};

class Client {
 public:
  Client(int id, const models::ModelSpec& spec, data::Dataset local_data,
         ClientConfig config, device::ResourceProfile profile);

  /// One local training cycle: load the global parameters and buffers,
  /// install the submodel mask (empty = full model), run `local_epochs`
  /// epochs of SGD, and return the update together with its virtual-time
  /// costs. `work_scale` in (0, 1] processes only that fraction of each
  /// epoch's mini-batches — FedProx-style variable local work for weak
  /// devices (time scales accordingly).
  ClientUpdate run_cycle(std::span<const float> global_params,
                         std::span<const float> global_buffers,
                         std::span<const std::uint8_t> neuron_mask,
                         double work_scale = 1.0);

  /// Cost-model estimate of a cycle under `neuron_mask` without training.
  double estimate_cycle_seconds(std::span<const std::uint8_t> neuron_mask);

  /// Virtual cost of the lightweight identification test bench
  /// (`iterations` mini-batches of full-model training).
  double testbench_seconds(int iterations);

  int id() const { return id_; }
  const device::ResourceProfile& profile() const { return profile_; }
  const data::Dataset& dataset() const { return data_; }
  std::size_t num_samples() const { return static_cast<std::size_t>(data_.size()); }
  nn::Model& model() { return model_; }
  const ClientConfig& config() const { return config_; }

  /// Straggler bookkeeping (set by identification / target determination).
  bool is_straggler() const { return straggler_; }
  void set_straggler(bool s) { straggler_ = s; }
  /// Roster membership. A client whose simulated device dies permanently is
  /// deactivated (not destroyed — ids and telemetry stay stable); the
  /// strategies skip inactive clients when building rosters.
  bool active() const { return active_; }
  void set_active(bool a) { active_ = a; }
  /// Expected model volume (keep ratio P); 1.0 = full model.
  double volume() const { return volume_; }
  void set_volume(double v);

  /// FedProx proximal coefficient (runtime-adjustable; see ClientConfig).
  void set_proximal_mu(float mu);

  /// Number of completed local training cycles (drives lr decay).
  int cycles_completed() const { return cycles_completed_; }
  /// Effective learning rate for the next cycle.
  float current_lr() const;

  /// Observability sink (set by Fleet::set_telemetry; may be null). The
  /// client reports each completed cycle's time split and trained-neuron
  /// count to it.
  void set_telemetry(obs::TelemetrySink* sink) { telemetry_ = sink; }

 private:
  nn::StepResult local_step(const data::Batch& batch,
                            std::span<const float> global_params);

  int id_;
  data::Dataset data_;
  ClientConfig config_;
  device::ResourceProfile profile_;
  nn::Model model_;
  nn::Sgd opt_;
  data::DataLoader loader_;
  bool straggler_ = false;
  bool active_ = true;
  double volume_ = 1.0;
  int cycles_completed_ = 0;
  obs::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace helios::fl
