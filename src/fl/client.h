// Federated client: a simulated edge device owning a local dataset, a model
// replica, and a resource profile that drives its virtual training time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/loader.h"
#include "device/cost_model.h"
#include "device/resource.h"
#include "models/zoo.h"
#include "nn/sgd.h"

namespace helios::obs {
class TelemetrySink;
}

namespace helios::fl {

struct ClientConfig {
  int batch_size = 32;
  int local_epochs = 1;
  float lr = 0.05F;
  float momentum = 0.0F;
  /// Global gradient-norm clip (0 disables); stabilizes skewed local
  /// objectives under Non-IID splits.
  float grad_clip = 5.0F;
  /// FedProx proximal coefficient mu (0 = plain local SGD): adds
  /// mu * (w - w_global) to every gradient, anchoring local training to the
  /// global model (Li et al., 2020).
  float proximal_mu = 0.0F;
  /// Multiplicative learning-rate decay applied once per completed cycle:
  /// lr(cycle) = lr * lr_decay^cycle. 1.0 = constant rate.
  float lr_decay = 1.0F;
  std::uint64_t seed = 1;
};

/// What a client sends to the server after one local training cycle.
struct ClientUpdate {
  int client_id = -1;
  /// Full flat parameter vector after local training (frozen neurons are
  /// bit-identical to the global parameters the client received).
  std::vector<float> params;
  /// Non-learnable state after training (BatchNorm running statistics).
  std::vector<float> buffers;
  /// Per-neuron trained flags (empty = full model trained).
  std::vector<std::uint8_t> trained_mask;
  std::size_t sample_count = 0;
  double train_seconds = 0.0;   // virtual time, cost-model driven
  double upload_seconds = 0.0;  // virtual time
  double upload_mb = 0.0;       // communication volume of this update
  double mean_loss = 0.0;

  /// Fraction of neurons trained (r_n in the paper's Eq. 10).
  double trained_fraction(int neuron_total) const;
};

class Client {
 public:
  /// The client does NOT build its model replica here — replicas are
  /// materialized lazily (from `spec` with `config.seed`) on first use, so
  /// a population-scale fleet of mostly-unsampled clients holds no live
  /// model memory. Materialization is a pure function of the spec and seed,
  /// so it is bit-identical whenever (and on whatever thread) it happens.
  Client(int id, const models::ModelSpec& spec, data::Dataset local_data,
         ClientConfig config, device::ResourceProfile profile);

  /// Deterministic local-dataset builder for lazy clients: called (possibly
  /// repeatedly, after hibernations) to materialize the shard, so it must be
  /// a pure function — same dataset bytes every call.
  using DataFactory = std::function<data::Dataset()>;

  /// Lazy-data variant: the local dataset materializes on first use (like
  /// the model replica) and hibernate() releases it again, so a
  /// population-scale fleet of mostly-unsampled clients holds no sample
  /// memory either. `nominal_samples` is the shard size used for analytic
  /// planning while no data is live (the factory's actual size takes over
  /// once known).
  Client(int id, const models::ModelSpec& spec, DataFactory data_factory,
         std::size_t nominal_samples, ClientConfig config,
         device::ResourceProfile profile);

  /// One local training cycle: load the global parameters and buffers,
  /// install the submodel mask (empty = full model), run `local_epochs`
  /// epochs of SGD, and return the update together with its virtual-time
  /// costs. `work_scale` in (0, 1] processes only that fraction of each
  /// epoch's mini-batches — FedProx-style variable local work for weak
  /// devices (time scales accordingly).
  ClientUpdate run_cycle(std::span<const float> global_params,
                         std::span<const float> global_buffers,
                         std::span<const std::uint8_t> neuron_mask,
                         double work_scale = 1.0);

  /// Cost-model estimate of a cycle under `neuron_mask` without training.
  double estimate_cycle_seconds(std::span<const std::uint8_t> neuron_mask);

  /// Virtual cost of the lightweight identification test bench
  /// (`iterations` mini-batches of full-model training).
  double testbench_seconds(int iterations);

  int id() const { return id_; }
  const device::ResourceProfile& profile() const { return profile_; }
  /// The live local dataset. Empty while a lazy client is data-hibernated;
  /// callers that only need the shard size should use num_samples().
  const data::Dataset& dataset() const { return data_; }
  /// Shard size for planning: the live dataset's size when materialized (or
  /// once the exact size is known from a stashed epoch order), else the
  /// nominal size the lazy factory was registered with.
  std::size_t num_samples() const;
  /// The live model replica; materializes it if the client is hibernated.
  nn::Model& model();
  const ClientConfig& config() const { return config_; }

  /// True while the client holds a live model replica (optimizer included).
  bool materialized() const { return model_ != nullptr; }
  /// Releases the model replica and optimizer scratch so an unsampled
  /// client holds no per-parameter memory. The next run_cycle (or model())
  /// rebuilds it from the spec — parameters are overwritten by the global
  /// snapshot at cycle start, so training semantics are unchanged. Kept as
  /// a no-op when the optimizer carries momentum state across cycles
  /// (releasing would zero the velocity mid-run).
  void hibernate();
  /// Approximate live replica footprint in bytes (params + grads +
  /// optimizer scratch); 0 while hibernated. A cheap peak-RSS proxy for
  /// the scale benchmarks.
  std::size_t replica_bytes() const;

  /// Shared architecture twin used for cost estimates while hibernated
  /// (typically the server's reference model — same spec, so the analytic
  /// workload is identical). Set by Fleet::add_client; estimates fall back
  /// to materializing the replica when unset. The twin is mutated (mask
  /// install/clear) during estimation, so estimates through it must stay on
  /// the sequential planning path — never inside parallel_train.
  void set_estimation_model(nn::Model* m) { estimation_model_ = m; }
  /// Read-mostly architecture handle for cost/shape queries (layer ranges,
  /// neuron totals, memory profiling): the live replica when materialized,
  /// else the shared twin, else materializes the replica.
  nn::Model& estimation_model();
  /// Expected flat parameter count (the server's); checked at
  /// materialization instead of construction. 0 = unchecked.
  void set_expected_params(std::size_t n) { expected_params_ = n; }

  /// Straggler bookkeeping (set by identification / target determination).
  bool is_straggler() const { return straggler_; }
  void set_straggler(bool s) { straggler_ = s; }
  /// Roster membership. A client whose simulated device dies permanently is
  /// deactivated (not destroyed — ids and telemetry stay stable); the
  /// strategies skip inactive clients when building rosters.
  bool active() const { return active_; }
  void set_active(bool a) { active_ = a; }
  /// Expected model volume (keep ratio P); 1.0 = full model.
  double volume() const { return volume_; }
  void set_volume(double v);

  /// FedProx proximal coefficient (runtime-adjustable; see ClientConfig).
  void set_proximal_mu(float mu);

  /// Number of completed local training cycles (drives lr decay).
  int cycles_completed() const { return cycles_completed_; }
  /// Effective learning rate for the next cycle.
  float current_lr() const;
  /// Checkpoint restore: the counter feeds lr decay, so a resumed client
  /// must continue from the snapshotted value.
  void set_cycles_completed(int n) { cycles_completed_ = n; }

  /// Checkpoint access to the cross-round mutable parts: the data loader
  /// (shuffle RNG + epoch order + cursor) and the optimizer (momentum
  /// velocity). Model replica parameters are NOT checkpointed — they are
  /// overwritten by the global snapshot at every cycle start, so only the
  /// materialized flag matters. Loader state is exposed as a value snapshot
  /// (not the loader itself) so a lazy, data-hibernated client can be
  /// checkpointed and restored without materializing its shard.
  struct LoaderState {
    util::RngState rng{};
    std::vector<std::size_t> order;
    std::size_t cursor = 0;
    /// False when the client has never run (fresh lazy client): the loader
    /// will be built deterministically from the seed on first use, so there
    /// is nothing to snapshot.
    bool valid = false;
  };
  LoaderState loader_state() const;
  void restore_loader_state(const util::RngState& rng,
                            std::vector<std::size_t> order, std::size_t cursor);
  nn::Sgd& optimizer() { return opt_; }
  const nn::Sgd& optimizer() const { return opt_; }

  /// Observability sink (set by Fleet::set_telemetry; may be null). The
  /// client reports each completed cycle's time split and trained-neuron
  /// count to it.
  void set_telemetry(obs::TelemetrySink* sink) { telemetry_ = sink; }

 private:
  nn::StepResult local_step(const data::Batch& batch,
                            std::span<const float> global_params);
  nn::Model& ensure_model();
  /// Materializes the local dataset (lazy clients) and/or the loader, and
  /// re-applies any stashed loader state. Returns the live loader.
  data::DataLoader& ensure_data();

  int id_;
  data::Dataset data_;
  DataFactory data_factory_;  // non-empty => lazy-data client
  std::size_t nominal_samples_ = 0;
  ClientConfig config_;
  device::ResourceProfile profile_;
  models::ModelSpec spec_;
  std::unique_ptr<nn::Model> model_;
  nn::Sgd opt_;
  std::unique_ptr<data::DataLoader> loader_;
  /// Loader state carried across data hibernations (and checkpoint restores
  /// into a hibernated client) so re-materialization is bit-identical.
  LoaderState stash_;
  nn::Model* estimation_model_ = nullptr;
  std::size_t expected_params_ = 0;
  bool straggler_ = false;
  bool active_ = true;
  double volume_ = 1.0;
  int cycles_completed_ = 0;
  obs::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace helios::fl
