#include "fl/compression.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "fl/transport.h"

namespace helios::fl {

namespace {

/// Exact sparse-delta frame size for the kept changed entries at `codec`'s
/// encoded payload width (see net/wire.h). kAuto is sized as fp32 — the
/// upper bound the auto encoder never exceeds.
std::size_t sparse_wire_bytes(const ClientUpdate& update,
                              const net::WireLayout& layout,
                              std::span<const std::size_t> kept,
                              codec::CodecId codec) {
  const int masked_total =
      update.trained_mask.empty() ? 0 : layout.neuron_total;
  if (codec == codec::CodecId::kFp32 || codec == codec::CodecId::kAuto) {
    return net::sparse_frame_bytes(kept.size(), layout.buffer_count,
                                   masked_total);
  }
  const codec::CodecInfo& info = codec::codec_info(codec);
  std::size_t scale_count = 0;
  if (info.scaled) {
    if (info.per_neuron_groups) {
      // One fp16 scale per distinct owning neuron among the kept entries
      // (the common group counts once) — exactly the group list the wire
      // encoder derives.
      std::vector<std::uint32_t> keys;
      keys.reserve(kept.size());
      for (std::size_t f : kept) keys.push_back(layout.neuron_of[f]);
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      scale_count = keys.size();
    } else {
      scale_count = kept.empty() ? 0 : 1;
    }
  }
  return net::sparse_frame_bytes(kept.size(), layout.buffer_count,
                                 masked_total, codec, scale_count);
}

}  // namespace

CompressionStats compress_update_topk(ClientUpdate& update,
                                      std::span<const float> base,
                                      double keep_fraction,
                                      const net::WireLayout* layout,
                                      codec::CodecId codec) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("compress_update_topk: bad keep_fraction");
  }
  if (update.params.size() != base.size()) {
    throw std::invalid_argument("compress_update_topk: size mismatch");
  }
  CompressionStats stats;
  // Eligible entries: those the client actually changed.
  std::vector<std::size_t> changed;
  changed.reserve(update.params.size());
  for (std::size_t f = 0; f < update.params.size(); ++f) {
    if (update.params[f] != base[f]) changed.push_back(f);
  }
  stats.total_entries = changed.size();
  if (keep_fraction >= 1.0 || changed.empty()) {
    stats.kept_entries = changed.size();
    if (layout != nullptr) {
      stats.wire_bytes = sparse_wire_bytes(update, *layout, changed, codec);
    }
    return stats;
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(keep_fraction * static_cast<double>(changed.size()))));
  // Partial sort by |delta| descending; entries past `keep` revert to base.
  std::nth_element(changed.begin(), changed.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   changed.end(), [&](std::size_t a, std::size_t b) {
                     return std::fabs(update.params[a] - base[a]) >
                            std::fabs(update.params[b] - base[b]);
                   });
  double dropped_sq = 0.0, total_sq = 0.0;
  for (std::size_t i = 0; i < changed.size(); ++i) {
    const std::size_t f = changed[i];
    const double d = static_cast<double>(update.params[f]) - base[f];
    total_sq += d * d;
    if (i >= keep) {
      dropped_sq += d * d;
      update.params[f] = base[f];
    }
  }
  stats.kept_entries = keep;
  stats.relative_error =
      total_sq > 0.0 ? std::sqrt(dropped_sq / total_sq) : 0.0;
  if (layout != nullptr) {
    stats.wire_bytes = sparse_wire_bytes(
        update, *layout, std::span<const std::size_t>(changed).first(keep),
        codec);
  }
  const double ratio = static_cast<double>(keep) /
                       static_cast<double>(stats.total_entries);
  update.upload_mb *= ratio;
  update.upload_seconds *= ratio;
  return stats;
}

CompressedSyncFL::CompressedSyncFL(double keep_fraction)
    : keep_fraction_(keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("CompressedSyncFL: bad keep_fraction");
  }
}

std::string CompressedSyncFL::name() const {
  return "Syn. FL + top-" + std::to_string(static_cast<int>(
             keep_fraction_ * 100.0)) + "%";
}

void CompressedSyncFL::run_range(Fleet& fleet, RunResult& result, int begin,
                                 int end) {
  AggOptions opts;
  for (int cycle = begin; cycle < end; ++cycle) {
    const std::vector<float> base(fleet.server().global());
    std::vector<Client*> roster = fleet.active_clients();
    const net::WireLayout* layout =
        fleet.network() != nullptr ? &fleet.network()->layout() : nullptr;
    std::vector<ClientUpdate> updates;
    double loss = 0.0;
    for (Client* client : roster) {
      updates.push_back(client->run_cycle(base,
                                          fleet.server().global_buffers(),
                                          {}));
      compress_update_topk(
          updates.back(), base, keep_fraction_, layout,
          fleet.network() != nullptr
              ? fleet.network()->options().payload_codec
              : codec::CodecId::kFp32);
      loss += updates.back().mean_loss;
    }
    NetDelivery net = deliver_round(fleet, updates, base);
    fleet.clock().advance(net.round_seconds);
    fleet.server().aggregate(net.aggregate_span(updates), opts);
    result.rounds.push_back({cycle, fleet.clock().now(), fleet.evaluate(),
                             loss / static_cast<double>(roster.size()),
                             net.upload_mb});
  }
}

}  // namespace helios::fl
