// Extension: top-k update sparsification (in the spirit of the gradient
// compression line the paper builds on — Alistarh et al. [18], Wangni et
// al. [19], Lin et al. [20]).
//
// The client uploads only the k largest-magnitude entries of its update
// delta (trained parameters minus the global snapshot it started from);
// the remaining entries are reverted to the snapshot value, so the server
// sees a sparse-delta update through the unchanged aggregation path. This
// composes with soft-training: Helios shrinks *what trains*, compression
// shrinks *what ships*.
#pragma once

#include <cstddef>
#include <span>

#include "fl/strategy.h"
#include "net/wire.h"

namespace helios::fl {

struct CompressionStats {
  std::size_t total_entries = 0;  // delta entries eligible for upload
  std::size_t kept_entries = 0;   // entries actually shipped
  /// L2 norm of the dropped delta relative to the full delta (0 = lossless).
  double relative_error = 0.0;
  /// Exact frame size of the compressed update on the wire (sparse-delta
  /// encoding of the kept entries at the session's payload codec's actual
  /// encoded width; see net/wire.h). 0 when no layout was supplied.
  std::size_t wire_bytes = 0;
};

/// Sparsifies `update` in place: keeps the `keep_fraction` largest |delta|
/// entries relative to `base` (the global parameters the client trained
/// from), reverts the rest to `base`, and rescales upload_mb /
/// upload_seconds by the kept fraction. keep_fraction in (0, 1]; 1 is a
/// no-op. Buffers are never compressed. When `layout` is given, the stats
/// report the exact sparse-frame byte count the kept entries would cost on
/// the wire — compression composes with the wire format: reverted entries
/// equal the base, so the sparse encoder skips them. `codec` sizes the
/// payload at the wire codec's real encoded width (per-neuron scale count
/// derived from the kept entries); kAuto is sized as fp32, the bound the
/// auto encoder never exceeds.
CompressionStats compress_update_topk(ClientUpdate& update,
                                      std::span<const float> base,
                                      double keep_fraction,
                                      const net::WireLayout* layout = nullptr,
                                      codec::CodecId codec =
                                          codec::CodecId::kFp32);

/// Synchronous FedAvg with per-client top-k compression — the comparison
/// harness for accuracy-vs-communication sweeps.
class CompressedSyncFL final : public Strategy {
 public:
  explicit CompressedSyncFL(double keep_fraction);
  std::string name() const override;
  /// No cross-cycle strategy state — inherits the no-op checkpoint hooks.
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

 private:
  double keep_fraction_;
};

}  // namespace helios::fl
