#include "fl/fedprox.h"

#include <algorithm>
#include <stdexcept>

#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::fl {

FedProx::FedProx(float mu, double min_work) : mu_(mu), min_work_(min_work) {
  if (mu < 0.0F) throw std::invalid_argument("FedProx: negative mu");
  if (min_work <= 0.0 || min_work > 1.0) {
    throw std::invalid_argument("FedProx: min_work out of (0, 1]");
  }
}

void FedProx::run_range(Fleet& fleet, RunResult& result, int begin, int end) {
  AggOptions opts;
  // Install mu only when the run starts: after a resume the per-client
  // checkpoint section already restored each client's mu (including any
  // churn joiner that never received it), identical to the uninterrupted
  // run.
  if (begin == 0) {
    for (auto& client : fleet.clients()) client->set_proximal_mu(mu_);
  }
  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = begin; cycle < end; ++cycle) {
    HELIOS_TRACE_SPAN("fedprox.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Per-client work scales are fixed by straggler volume, so they are
    // computed up front and the independent cycles fan out.
    std::vector<Client*> roster = fleet.round_roster(cycle);
    std::vector<double> work;
    work.reserve(roster.size());
    for (Client* client : roster) {
      work.push_back(client->is_straggler()
                         ? std::clamp(client->volume(), min_work_, 1.0)
                         : 1.0);
    }
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        roster, [&](Client& client, std::size_t i) {
          return client.run_cycle(fleet.server().global(),
                                  fleet.server().global_buffers(), {},
                                  work[i]);
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    fleet.server().aggregate(net.aggregate_span(updates), opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(std::max<std::size_t>(1, roster.size())),
         net.upload_mb});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
}

}  // namespace helios::fl
