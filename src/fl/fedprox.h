// Extension baseline: FedProx (Li et al., MLSys 2020) — the standard
// straggler-tolerant alternative to submodel training. Every device trains
// the FULL model with a proximal term mu/2 ||w - w_global||^2 anchoring it
// to the global model, and weak devices simply do LESS local work per cycle
// (fewer mini-batches), so the synchronous round runs at the capable pace.
//
// Contrast with Helios: FedProx shrinks the *work*, Helios shrinks the
// *model*. FedProx stragglers still see every parameter each cycle but take
// fewer optimization steps; Helios stragglers take full local epochs on a
// rotating submodel.
#pragma once

#include "fl/strategy.h"

namespace helios::fl {

class FedProx final : public Strategy {
 public:
  /// `mu` is the proximal coefficient. Stragglers' per-cycle work fraction
  /// is their volume (set by target determination), floored at
  /// `min_work`.
  explicit FedProx(float mu = 0.01F, double min_work = 0.05);

  std::string name() const override { return "FedProx"; }
  /// No cross-cycle strategy state: the proximal mu is installed into the
  /// clients at cycle 0 and travels with the per-client checkpoint section.
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

 private:
  float mu_;
  double min_work_;
};

}  // namespace helios::fl
