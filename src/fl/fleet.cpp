#include "fl/fleet.h"

#include <stdexcept>

#include "obs/telemetry.h"

namespace helios::fl {

Fleet::Fleet(const models::ModelSpec& spec, data::Dataset test_set,
             std::uint64_t seed)
    : spec_(spec), server_(spec.build(seed)), test_set_(std::move(test_set)) {
  test_set_.validate();
}

Client& Fleet::add_client(data::Dataset local_data, ClientConfig config,
                          device::ResourceProfile profile) {
  auto client = std::make_unique<Client>(next_id_++, spec_,
                                         std::move(local_data), config,
                                         std::move(profile));
  if (client->model().param_count() != server_.param_count()) {
    throw std::logic_error("Fleet: client/server parameter count mismatch");
  }
  client->set_telemetry(telemetry_);
  clients_.push_back(std::move(client));
  return *clients_.back();
}

void Fleet::set_telemetry(obs::TelemetrySink* sink) {
  if (telemetry_ && telemetry_ != sink) telemetry_->uninstall();
  telemetry_ = sink;
  server_.set_telemetry(sink);
  for (auto& c : clients_) c->set_telemetry(sink);
  if (sink) sink->install();
}

Client* Fleet::find_client(int id) {
  for (auto& c : clients_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

std::vector<Client*> Fleet::active_clients() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active()) out.push_back(c.get());
  }
  return out;
}

std::vector<Client*> Fleet::stragglers() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active() && c->is_straggler()) out.push_back(c.get());
  }
  return out;
}

std::vector<Client*> Fleet::capable() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active() && !c->is_straggler()) out.push_back(c.get());
  }
  return out;
}

}  // namespace helios::fl
