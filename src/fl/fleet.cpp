#include "fl/fleet.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "fl/hierarchy.h"
#include "obs/telemetry.h"
#include "tensor/backend/dispatch.h"

namespace helios::fl {

std::vector<Client*> RosterSampler::sample(std::span<Client* const> active,
                                           int round) const {
  std::vector<Client*> cohort;
  for (Client* c : active) {
    if (selected(c->id(), round)) cohort.push_back(c);
  }
  return cohort;
}

Fleet::Fleet(const models::ModelSpec& spec, data::Dataset test_set,
             std::uint64_t seed)
    : spec_(spec), server_(spec.build(seed)), test_set_(std::move(test_set)) {
  test_set_.validate();
}

Fleet::Fleet(Fleet&& other) noexcept
    : spec_(std::move(other.spec_)),
      server_(std::move(other.server_)),
      test_set_(std::move(other.test_set_)),
      clients_(std::move(other.clients_)),
      clock_(other.clock_),
      telemetry_(other.telemetry_),
      network_(other.network_),
      hierarchy_(other.hierarchy_),
      sampler_(other.sampler_),
      checkpointables_(std::move(other.checkpointables_)),
      next_id_(other.next_id_) {
  for (auto& c : clients_) c->set_estimation_model(&server_.reference_model());
}

Fleet& Fleet::operator=(Fleet&& other) noexcept {
  if (this == &other) return *this;
  spec_ = std::move(other.spec_);
  server_ = std::move(other.server_);
  test_set_ = std::move(other.test_set_);
  clients_ = std::move(other.clients_);
  clock_ = other.clock_;
  telemetry_ = other.telemetry_;
  network_ = other.network_;
  hierarchy_ = other.hierarchy_;
  sampler_ = other.sampler_;
  checkpointables_ = std::move(other.checkpointables_);
  next_id_ = other.next_id_;
  for (auto& c : clients_) c->set_estimation_model(&server_.reference_model());
  return *this;
}

Client& Fleet::add_client(data::Dataset local_data, ClientConfig config,
                          device::ResourceProfile profile) {
  auto client = std::make_unique<Client>(next_id_++, spec_,
                                         std::move(local_data), config,
                                         std::move(profile));
  // No eager model build here: the replica materializes on first use and the
  // parameter-count check runs then. Cost estimates for hibernated clients
  // go through the server's reference model (same spec, same arithmetic).
  client->set_expected_params(server_.param_count());
  client->set_estimation_model(&server_.reference_model());
  client->set_telemetry(telemetry_);
  clients_.push_back(std::move(client));
  return *clients_.back();
}

Client& Fleet::add_client(Client::DataFactory data_factory,
                          std::size_t nominal_samples, ClientConfig config,
                          device::ResourceProfile profile) {
  auto client = std::make_unique<Client>(next_id_++, spec_,
                                         std::move(data_factory),
                                         nominal_samples, config,
                                         std::move(profile));
  client->set_expected_params(server_.param_count());
  client->set_estimation_model(&server_.reference_model());
  client->set_telemetry(telemetry_);
  clients_.push_back(std::move(client));
  return *clients_.back();
}

void Fleet::set_hierarchy(HierarchySession* session) {
  hierarchy_ = session;
  server_.set_hierarchy(session);
}

void Fleet::set_telemetry(obs::TelemetrySink* sink) {
  if (telemetry_ && telemetry_ != sink) telemetry_->uninstall();
  telemetry_ = sink;
  server_.set_telemetry(sink);
  for (auto& c : clients_) c->set_telemetry(sink);
  if (sink) {
    sink->install();
    sink->record_kernel_backend(tensor::backend::active_backend_name());
  }
}

Client* Fleet::find_client(int id) {
  for (auto& c : clients_) {
    if (c->id() == id) return c.get();
  }
  return nullptr;
}

std::vector<Client*> Fleet::active_clients() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active()) out.push_back(c.get());
  }
  return out;
}

std::vector<Client*> Fleet::round_roster(int round, bool hibernate_unsampled) {
  std::vector<Client*> active = active_clients();
  if (!sampler_) return active;
  std::vector<Client*> cohort = sampler_->sample(active, round);
  // Hash-set membership: the linear std::find scan was O(active * cohort),
  // which dominated round setup at population scale (100k active, 1k
  // cohort). The cohort need not be a subsequence of `active` (empty-cohort
  // fallbacks), so a set is the right structure.
  const std::unordered_set<const Client*> in_cohort(cohort.begin(),
                                                    cohort.end());
  for (Client* c : active) {
    if (in_cohort.find(c) == in_cohort.end()) {
      if (telemetry_) {
        telemetry_->record_device_skipped(round, c->id(), /*dead=*/false);
      }
      // Membership via the cohort itself (not selected()): a sampler's
      // empty-cohort fallback may include clients selected() rejects.
      if (hibernate_unsampled) c->hibernate();
    }
  }
  if (telemetry_) {
    for (const auto& c : clients_) {
      if (!c->active()) {
        telemetry_->record_device_skipped(round, c->id(), /*dead=*/true);
      }
    }
    telemetry_->record_cohort(round, clients_.size(), active.size(),
                              cohort.size());
  }
  return cohort;
}

std::size_t Fleet::live_replica_bytes() const {
  std::size_t total = 0;
  for (const auto& c : clients_) total += c->replica_bytes();
  return total;
}

std::vector<Client*> Fleet::stragglers() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active() && c->is_straggler()) out.push_back(c.get());
  }
  return out;
}

std::vector<Client*> Fleet::capable() {
  std::vector<Client*> out;
  for (auto& c : clients_) {
    if (c->active() && !c->is_straggler()) out.push_back(c.get());
  }
  return out;
}

}  // namespace helios::fl
