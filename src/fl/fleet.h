// A federation: server + clients + held-out test set + virtual clock.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "device/virtual_clock.h"
#include "fl/client.h"
#include "fl/server.h"
#include "util/thread_pool.h"

namespace helios::obs {
class TelemetrySink;
}

namespace helios::fl {

class NetworkSession;
class HierarchySession;
class Strategy;
struct RunResult;
class Checkpointable;

/// Per-round cohort selection policy (implemented by sim::CohortSampler).
/// Membership must be a pure function of (policy state, device id, round) —
/// per-device forked RNG streams, never a shared sequential draw — so a
/// joiner can never perturb an existing device's participation schedule.
class RosterSampler {
 public:
  virtual ~RosterSampler() = default;
  /// Pure membership test: does device `device_id` participate in `round`?
  virtual bool selected(int device_id, int round) const = 0;
  /// The round's cohort drawn from `active` (input order preserved). The
  /// default filters by selected(); implementations may add fallbacks for
  /// otherwise-empty cohorts.
  virtual std::vector<Client*> sample(std::span<Client* const> active,
                                      int round) const;
};

class Fleet {
 public:
  /// Builds the global model from `spec` with `seed`; all clients must be
  /// constructed from the same spec (checked by parameter count).
  Fleet(const models::ModelSpec& spec, data::Dataset test_set,
        std::uint64_t seed = 7);

  // Clients hold a pointer to the server's reference model (the shared
  // architecture twin for analytic queries while hibernated), so moving a
  // fleet must re-bind those pointers to the new server.
  Fleet(Fleet&& other) noexcept;
  Fleet& operator=(Fleet&& other) noexcept;
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Adds a client owning `local_data`; returns it for further setup.
  Client& add_client(data::Dataset local_data, ClientConfig config,
                     device::ResourceProfile profile);

  /// Lazy-data variant: the client materializes its shard from
  /// `data_factory` on first training use and releases it again when
  /// hibernated, so an unsampled client holds no sample memory (see
  /// Client's lazy constructor).
  Client& add_client(Client::DataFactory data_factory,
                     std::size_t nominal_samples, ClientConfig config,
                     device::ResourceProfile profile);

  std::size_t size() const { return clients_.size(); }
  Client& client(std::size_t i) { return *clients_.at(i); }
  std::vector<std::unique_ptr<Client>>& clients() { return clients_; }
  /// Client by id (nullptr if unknown). Ids are stable across churn.
  Client* find_client(int id);
  /// Clients currently in the roster (active; excludes dead devices).
  std::vector<Client*> active_clients();

  /// Per-round participation sampling (nullptr = everyone participates,
  /// the legacy full-participation rosters). The fleet does not own the
  /// sampler; it must outlive the runs that use it.
  void set_sampler(const RosterSampler* sampler) { sampler_ = sampler; }
  const RosterSampler* sampler() const { return sampler_; }
  /// The round's participants: all active clients without a sampler
  /// (bit-identical to the legacy strategies), else the sampler's cohort.
  /// With `hibernate_unsampled`, active clients outside the cohort release
  /// their model replicas so a mostly-idle population stays memory-bounded.
  /// Reports cohort size to telemetry (helios.sim.* metrics).
  std::vector<Client*> round_roster(int round,
                                    bool hibernate_unsampled = true);
  /// Sum of live replica footprints across the fleet — the peak-RSS proxy
  /// the scale benchmarks report.
  std::size_t live_replica_bytes() const;

  Server& server() { return server_; }
  const data::Dataset& test_set() const { return test_set_; }
  device::VirtualClock& clock() { return clock_; }
  const models::ModelSpec& spec() const { return spec_; }

  /// Clients flagged as stragglers (by identification or manual setup).
  std::vector<Client*> stragglers();
  /// Clients not flagged as stragglers.
  std::vector<Client*> capable();

  double evaluate() { return server_.evaluate_accuracy(test_set_); }

  /// Round-level fan-out: runs `fn(client, i)` for every client in `roster`
  /// concurrently on the global thread pool and returns the updates indexed
  /// by roster position. Clients are independent during a round (each owns
  /// its model, optimizer, RNG, and loader; the global snapshot is read-only
  /// here), so each update is bit-identical to what the sequential loop
  /// would have produced — and because the caller aggregates the returned
  /// vector in roster order, the whole round is too. Any per-round state the
  /// callback needs (masks, work scales, RNG draws) must be precomputed
  /// before the fan-out so it does not depend on execution order. With one
  /// thread configured this degenerates to a plain in-order loop.
  template <typename Fn>
  static std::vector<ClientUpdate> parallel_train(
      std::span<Client* const> roster, Fn&& fn) {
    std::vector<ClientUpdate> updates(roster.size());
    util::parallel_for(
        0, static_cast<std::int64_t>(roster.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            updates[idx] = fn(*roster[idx], idx);
          }
        });
    return updates;
  }

  /// One-line observability opt-in: threads `sink` through the server and
  /// every (current and future) client, and installs it globally so the
  /// HELIOS_TRACE_SPAN macros in the nn kernels and strategies see it.
  /// Pass nullptr to detach. The sink must outlive the fleet (or be
  /// detached first); the fleet does not own it.
  void set_telemetry(obs::TelemetrySink* sink);
  obs::TelemetrySink* telemetry() const { return telemetry_; }

  /// Attached network simulation (nullptr = legacy in-memory handoff).
  /// Set by NetworkSession's constructor; the fleet does not own it.
  void set_network(NetworkSession* session) { network_ = session; }
  NetworkSession* network() const { return network_; }

  /// Attached aggregator-tree session (nullptr = flat single-server
  /// aggregation). Set by HierarchySession's constructor; the fleet does
  /// not own it. Also threads the session into the server's aggregate path.
  void set_hierarchy(HierarchySession* session);
  HierarchySession* hierarchy() const { return hierarchy_; }

  // -- Checkpoint / resume ---------------------------------------------------
  // (Implemented in checkpoint.cpp; see fl/checkpoint.h for the contract.)

  /// Registers a component with cross-round state (e.g. sim::ChurnProcess)
  /// to ride inside checkpoints. Names and registration order must match
  /// between the saving and the resuming process. The fleet does not own
  /// the component; it must outlive the fleet's checkpoint calls.
  void register_checkpointable(std::string name, Checkpointable* component);
  const std::vector<std::pair<std::string, Checkpointable*>>&
  checkpointables() const {
    return checkpointables_;
  }

  /// Writes the full collaboration state (fleet + registered components +
  /// `strategy`'s state, when non-null, + the partial `result`) to `path`
  /// atomically.
  void save_checkpoint(const std::string& path, const Strategy* strategy,
                       const RunResult& result);
  /// Restores a checkpoint written by save_checkpoint into this (freshly
  /// rebuilt, identically configured) fleet and `strategy`; returns the
  /// partial RunResult. Throws fl::CheckpointError on corruption/mismatch.
  RunResult resume(const std::string& path, Strategy* strategy);

 private:
  models::ModelSpec spec_;
  Server server_;
  data::Dataset test_set_;
  std::vector<std::unique_ptr<Client>> clients_;
  device::VirtualClock clock_;
  obs::TelemetrySink* telemetry_ = nullptr;
  NetworkSession* network_ = nullptr;
  HierarchySession* hierarchy_ = nullptr;
  const RosterSampler* sampler_ = nullptr;
  std::vector<std::pair<std::string, Checkpointable*>> checkpointables_;
  int next_id_ = 0;
};

}  // namespace helios::fl
