#include "fl/hierarchy.h"

#include <stdexcept>

#include "fl/fleet.h"
#include "obs/telemetry.h"

namespace helios::fl {

HierarchySession::HierarchySession(Fleet& fleet, agg::TreeTopology topology,
                                   agg::MergeCodec merge_codec)
    : fleet_(fleet),
      topology_(topology),
      geometry_(agg::make_geometry(fleet.server().reference_model())) {
  if (topology_.active()) {
    tree_ =
        std::make_unique<agg::AggregatorTree>(topology_, &geometry_, merge_codec);
  }
  fleet_.set_hierarchy(this);
}

HierarchySession::~HierarchySession() {
  if (fleet_.hierarchy() == this) fleet_.set_hierarchy(nullptr);
}

void HierarchySession::stage_bookkeeping(std::span<const float> base_params) {
  staged_base_ = base_params;
}

const std::vector<double>* HierarchySession::contributions_for(
    int client_id) const {
  if (tree_ == nullptr) return nullptr;
  const auto it = contribution_index_.find(client_id);
  if (it == contribution_index_.end()) return nullptr;
  return &tree_->contributions()[it->second].second;
}

void HierarchySession::aggregate(std::span<const ClientUpdate> updates,
                                 std::span<const agg::FoldWeights> weights,
                                 bool per_neuron_merge, std::span<float> global,
                                 std::span<float> buffers) {
  if (tree_ == nullptr) {
    throw std::logic_error("HierarchySession::aggregate: inactive tree");
  }
  if (!round_open_) tree_->begin_round();
  round_open_ = false;
  std::vector<agg::UpdateView> views;
  views.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    views.push_back({u.client_id, u.params, u.buffers, u.trained_mask});
  }
  tree_->fold(views, weights, per_neuron_merge, staged_base_);
  tree_->collapse();
  tree_->finalize(global, buffers);
  contribution_index_.clear();
  const auto& shards = tree_->contributions();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    contribution_index_.emplace(shards[i].first, i);
  }
  staged_base_ = {};
  emit_tier_telemetry();
}

agg::RelayOutcome HierarchySession::relay_round(
    std::span<const double> edge_ready,
    std::span<const std::size_t> edge_extra_bytes, double round_start_s) {
  if (tree_ == nullptr) {
    throw std::logic_error("HierarchySession::relay_round: inactive tree");
  }
  tree_->begin_round();
  round_open_ = true;
  return tree_->relay(edge_ready, edge_extra_bytes, round_start_s);
}

double HierarchySession::async_uplink_seconds(int client_id,
                                              std::size_t rider_bytes) const {
  if (tree_ == nullptr) return 0.0;
  const std::size_t bytes = tree_->merge_frame_bytes() + rider_bytes;
  const int e = topology_.edge_of(client_id);
  // Deterministic per-hop transfer times (no channel RNG draws): the async
  // event ordering must not depend on how many updates relayed before.
  double s = tree_->edge_channel(e).transfer_seconds(bytes);
  if (topology_.regional_nodes() > 0) {
    s += tree_->regional_channel(topology_.regional_of(e))
             .transfer_seconds(bytes);
  }
  return s;
}

void HierarchySession::emit_tier_telemetry() {
  obs::TelemetrySink* sink = fleet_.telemetry();
  if (sink == nullptr || tree_ == nullptr) return;
  for (const agg::TierStats& t : tree_->tier_stats()) {
    sink->record_tier_merge(t.tier, t.frames_folded, t.bytes_forwarded,
                            t.deadline_misses, t.retransmits, t.lost_frames,
                            t.fold_seconds, t.raw_bytes);
  }
}

void HierarchySession::save_state(const Fleet& fleet,
                                  CheckpointWriter& w) const {
  (void)fleet;
  w.u32(static_cast<std::uint32_t>(topology_.edge_nodes));
  w.u32(static_cast<std::uint32_t>(topology_.fanout));
  if (tree_ == nullptr) return;
  const std::vector<util::RngState> states = tree_->channel_states();
  w.u32(static_cast<std::uint32_t>(states.size()));
  for (const util::RngState& s : states) w.rng(s);
}

void HierarchySession::load_state(Fleet& fleet, CheckpointReader& r) {
  (void)fleet;
  const auto edges = static_cast<int>(r.u32());
  const auto fanout = static_cast<int>(r.u32());
  if (edges != topology_.edge_nodes || fanout != topology_.fanout) {
    throw CheckpointError(
        "HierarchySession: checkpointed topology does not match (edges " +
        std::to_string(edges) + "/" + std::to_string(topology_.edge_nodes) +
        ", fanout " + std::to_string(fanout) + "/" +
        std::to_string(topology_.fanout) + ")");
  }
  if (tree_ == nullptr) return;
  const std::uint32_t n = r.u32();
  std::vector<util::RngState> states;
  states.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) states.push_back(r.rng());
  tree_->set_channel_states(states);
  round_open_ = false;
}

}  // namespace helios::fl
