// HierarchySession — the glue between the fleet's aggregation path and the
// src/agg aggregator tree (edge -> regional -> root streaming folding).
//
// Attach one to a fleet to route every synchronous aggregation through the
// tree:
//
//   agg::TreeTopology topo;
//   topo.edge_nodes = 64;            // 64 edge aggregators
//   topo.fanout = 8;                 // 8 regionals -> depth-3 tree
//   fl::HierarchySession hier(fleet, topo);   // attaches via set_hierarchy
//   fleet.register_checkpointable("hierarchy", &hier);  // optional
//   ... run any strategy ...
//
// Server::aggregate computes its per-update weights exactly as on the flat
// path, then hands the updates to aggregate() here: each update folds into
// its edge's streaming accumulator, edges collapse upward through
// weight-carrying merge frames, and the root's weighted means become the
// new global model. A single-edge tree is bit-identical to the flat server
// loop; multi-edge trees differ only in floating-point summation order and
// are bit-identical across thread counts.
//
// With a simulated NetworkSession attached, fl::deliver_round additionally
// calls relay_round(): the uplink hops each merge frame crosses are
// simulated on the tree's own channels, and devices whose edge (or
// regional) frame missed its tier deadline are excluded from aggregation —
// renormalizing exactly like a late device set, because the frames carry
// their weight mass.
//
// The session also shards Helios' per-neuron bookkeeping: when a strategy
// arms stage_bookkeeping(base), each edge computes the per-device U^ij
// contribution vector of its masked updates while folding, and the root
// exposes the exact disjoint-union merge via contributions_for().
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "agg/tree.h"
#include "fl/checkpoint.h"
#include "fl/client.h"

namespace helios::fl {

class Fleet;

class HierarchySession : public Checkpointable {
 public:
  /// Builds the aggregation geometry from the fleet's server reference
  /// model and attaches via Fleet::set_hierarchy. An inactive topology
  /// (edge_nodes == 0) constructs no tree and leaves the flat path in
  /// place. `merge_codec` sets the tier-uplink merge-frame encoding (kF64
  /// keeps the bit-exact collapse; kF32/kF16 trade precision for uplink
  /// bytes). The session must outlive the fleet's use of it.
  HierarchySession(Fleet& fleet, agg::TreeTopology topology,
                   agg::MergeCodec merge_codec = agg::MergeCodec::kF64);
  ~HierarchySession() override;

  HierarchySession(const HierarchySession&) = delete;
  HierarchySession& operator=(const HierarchySession&) = delete;

  bool active() const { return tree_ != nullptr; }
  const agg::TreeTopology& topology() const { return topology_; }
  /// The tree (active() only).
  agg::AggregatorTree& tree() { return *tree_; }
  const agg::ModelGeometry& geometry() const { return geometry_; }

  // -- Server path -----------------------------------------------------------

  /// Tree-routed replacement of Server::aggregate's accumulation loop: fold
  /// the updates (weights computed by the server), collapse the tiers, and
  /// finalize into `global` / `buffers`. Emits per-tier telemetry.
  void aggregate(std::span<const ClientUpdate> updates,
                 std::span<const agg::FoldWeights> weights,
                 bool per_neuron_merge, std::span<float> global,
                 std::span<float> buffers);

  /// Arms U^ij shard staging for the next aggregate(): the edges compute
  /// each masked update's per-neuron contribution vector against
  /// `base_params` (the global snapshot the cohort trained from; the span
  /// must stay valid through the aggregate call).
  void stage_bookkeeping(std::span<const float> base_params);

  /// The root-merged contribution shard of `client_id` from the last
  /// aggregate(), or nullptr when the device's update carried no mask (or
  /// never arrived). Valid until the next aggregate().
  const std::vector<double>* contributions_for(int client_id) const;

  // -- Transport path (simulated mode) --------------------------------------

  /// Simulates the round's uplink relay. `edge_ready[e]` is the absolute
  /// time edge e received its last accepted device frame (< 0 = none);
  /// `edge_extra_bytes[e]` is the bookkeeping rider riding its merge frame.
  /// Opens the tree's round (resetting accumulators and stats).
  agg::RelayOutcome relay_round(std::span<const double> edge_ready,
                                std::span<const std::size_t> edge_extra_bytes,
                                double round_start_s);

  /// Deterministic uplink latency of one update relayed alone through its
  /// edge chain (async strategies' per-completion path): transfer time of a
  /// merge frame plus `rider_bytes` on each hop, no jitter/loss draws — so
  /// the async event order stays reproducible.
  double async_uplink_seconds(int client_id, std::size_t rider_bytes) const;

  // -- Checkpointable --------------------------------------------------------
  // Cross-round tree state: the uplink channels' RNG positions.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  void emit_tier_telemetry();

  Fleet& fleet_;
  agg::TreeTopology topology_;
  agg::ModelGeometry geometry_;
  std::unique_ptr<agg::AggregatorTree> tree_;
  std::span<const float> staged_base_;
  /// client id -> index into tree contributions, rebuilt per aggregate().
  std::unordered_map<int, std::size_t> contribution_index_;
  /// True between relay_round() and the round's aggregate(): the tree's
  /// round is already open and aggregate() must not reset it.
  bool round_open_ = false;
};

}  // namespace helios::fl
