#include "fl/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace helios::fl {

double RunResult::final_accuracy(std::size_t tail) const {
  if (rounds.empty()) return 0.0;
  const std::size_t take = std::min(tail == 0 ? std::size_t{1} : tail,
                                    rounds.size());
  double s = 0.0;
  for (std::size_t i = rounds.size() - take; i < rounds.size(); ++i) {
    s += rounds[i].test_accuracy;
  }
  return s / static_cast<double>(take);
}

std::size_t RunResult::cycles_to_accuracy(double target) const {
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    if (rounds[i].test_accuracy >= target) return i;
  }
  return npos;
}

double RunResult::time_to_accuracy(double target) const {
  const std::size_t i = cycles_to_accuracy(target);
  return i == npos ? never : rounds[i].virtual_time;
}

double RunResult::total_upload_mb() const {
  double s = 0.0;
  for (const RoundRecord& r : rounds) s += r.upload_mb;
  return s;
}

void RunResult::write_csv(std::ostream& os) const {
  os << "cycle,virtual_time_s,test_accuracy,mean_train_loss,upload_mb\n";
  for (const RoundRecord& r : rounds) {
    os << r.cycle << ',' << r.virtual_time << ',' << r.test_accuracy << ','
       << r.mean_train_loss << ',' << r.upload_mb << '\n';
  }
}

void RunResult::write_comparison_csv(std::ostream& os,
                                     const std::vector<RunResult>& runs) {
  os << "cycle";
  std::size_t max_rounds = 0;
  for (const RunResult& r : runs) {
    os << ',' << r.method;
    max_rounds = std::max(max_rounds, r.rounds.size());
  }
  os << '\n';
  for (std::size_t c = 0; c < max_rounds; ++c) {
    os << c;
    for (const RunResult& r : runs) {
      os << ',';
      if (c < r.rounds.size()) os << r.rounds[c].test_accuracy;
    }
    os << '\n';
  }
}

double RunResult::accuracy_variance(std::size_t tail) const {
  if (rounds.size() < 2) return 0.0;
  const std::size_t take = std::min(tail < 2 ? std::size_t{2} : tail,
                                    rounds.size());
  util::RunningStats stats;
  for (std::size_t i = rounds.size() - take; i < rounds.size(); ++i) {
    stats.add(rounds[i].test_accuracy);
  }
  return stats.variance();
}

}  // namespace helios::fl
