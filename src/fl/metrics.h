// Experiment metrics: per-cycle records and convergence summaries.
#pragma once

#include <cstddef>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace helios::fl {

/// One aggregation cycle of the capable devices.
struct RoundRecord {
  int cycle = 0;
  /// Virtual seconds elapsed since the start of the run.
  double virtual_time = 0.0;
  double test_accuracy = 0.0;
  double mean_train_loss = 0.0;
  /// Total parameter upload volume of this cycle (MB, all participants).
  double upload_mb = 0.0;
};

struct RunResult {
  std::string method;
  std::vector<RoundRecord> rounds;

  /// Mean accuracy over the last `tail` recorded cycles.
  double final_accuracy(std::size_t tail = 3) const;

  /// First cycle index reaching `target` accuracy; npos if never.
  std::size_t cycles_to_accuracy(double target) const;

  /// Virtual time at which `target` accuracy is first reached; +inf if never.
  double time_to_accuracy(double target) const;

  /// Population stddev of accuracy over the last `tail` cycles — the
  /// "fluctuation" metric of the Fig. 6 ablation.
  double accuracy_variance(std::size_t tail = 10) const;

  /// Total communication volume across all recorded cycles (MB).
  double total_upload_mb() const;

  /// Writes the trace as CSV (header + one row per cycle) for plotting.
  void write_csv(std::ostream& os) const;

  /// Writes several runs side by side: cycle, then one accuracy column per
  /// run (aligned by cycle index; missing cycles are empty).
  static void write_comparison_csv(std::ostream& os,
                                   const std::vector<RunResult>& runs);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr double never = std::numeric_limits<double>::infinity();
};

}  // namespace helios::fl
