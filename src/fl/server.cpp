#include "fl/server.h"

#include <algorithm>
#include <stdexcept>

#include "fl/hierarchy.h"
#include "obs/telemetry.h"

namespace helios::fl {

Server::Server(nn::Model reference) : model_(std::move(reference)) {
  global_ = model_.params_flat();
  buffers_ = model_.buffers_flat();
  geometry_ = agg::make_geometry(model_);
}

void Server::set_global(std::vector<float> params) {
  if (params.size() != global_.size()) {
    throw std::invalid_argument("Server::set_global: size mismatch");
  }
  global_ = std::move(params);
}

void Server::set_global_buffers(std::vector<float> buffers) {
  if (buffers.size() != buffers_.size()) {
    throw std::invalid_argument("Server::set_global_buffers: size mismatch");
  }
  buffers_ = std::move(buffers);
}

void Server::aggregate(std::span<const ClientUpdate> updates,
                       const AggOptions& opts) {
  if (updates.empty()) return;
  HELIOS_TRACE_SPAN("server.aggregate", {{"updates", updates.size()}});
  const std::size_t p = global_.size();
  const int m = neuron_total();

  // alpha_n = r_n / sum r (Eq. 10); uniform when the option is off. The
  // per-index normalization below divides by the sum of participating
  // weights, so only relative alphas matter. Eq. 10 compensates for the
  // structural divergence of partial models, so alpha applies to the
  // neuron-owned parameters; common parameters (e.g. the classifier head,
  // which every device always trains in full) keep plain FedAvg weights —
  // otherwise extreme volume gaps would starve the shared head of the
  // stragglers' data.
  if (opts.alpha_damping < 0.0 || opts.alpha_damping > 1.0) {
    throw std::invalid_argument("Server::aggregate: alpha_damping out of [0,1]");
  }
  std::vector<double> common_w(updates.size(), 1.0);
  std::vector<double> neuron_w(updates.size(), 1.0);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const ClientUpdate& u = updates[i];
    if (u.params.size() != p) {
      throw std::invalid_argument("Server::aggregate: update size mismatch");
    }
    if (!u.trained_mask.empty() &&
        static_cast<int>(u.trained_mask.size()) != m) {
      throw std::invalid_argument("Server::aggregate: bad trained mask size");
    }
    double w = 1.0;
    if (opts.sample_weighting) w *= static_cast<double>(u.sample_count);
    common_w[i] = w;
    if (opts.hetero_volume_weights) {
      // Damped Eq. 10 weight; the per-index normalization divides by the
      // participating weight sum, so no global normalization is needed.
      const double d = opts.alpha_damping;
      w *= (1.0 - d) + d * u.trained_fraction(m);
    }
    neuron_w[i] = w;
    if (opts.alpha_scope == AggOptions::AlphaScope::kWholeUpdate) {
      common_w[i] = w;
    }
  }

  // Report the exact weights this aggregation uses: r_n as uploaded, alpha
  // as each update's share of the neuron-owned weight mass (shares sum to 1
  // over the cycle's participants).
  if (telemetry_) {
    double weight_sum = 0.0;
    for (double w : neuron_w) weight_sum += w;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      telemetry_->record_aggregation_weight(
          updates[i].client_id, updates[i].trained_fraction(m),
          weight_sum > 0.0 ? neuron_w[i] / weight_sum : 0.0);
    }
  }

  std::vector<agg::FoldWeights> weights(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    weights[i] = {common_w[i], neuron_w[i]};
  }

  // With an active aggregator tree attached, the accumulation happens at
  // the tree's edge nodes and collapses through weight-carrying merge
  // frames; a single-edge tree is bit-identical to the inline fold below.
  if (hierarchy_ != nullptr && hierarchy_->active()) {
    hierarchy_->aggregate(updates, weights, opts.per_neuron_merge, global_,
                          buffers_);
    return;
  }

  // Flat path: one streaming accumulator folds every update in input order
  // — the same per-index sums and final float cast the pre-streaming
  // nested loops computed. Buffers (BatchNorm statistics) are plain
  // weighted averages under the common weight; they are not neuron-indexed,
  // so every participating client contributes everywhere.
  agg::StreamingAccumulator acc(&geometry_);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const ClientUpdate& u = updates[i];
    acc.fold({u.client_id, u.params, u.buffers, u.trained_mask}, weights[i],
             opts.per_neuron_merge);
  }
  acc.finalize(global_, buffers_);
}

void Server::mix(const ClientUpdate& update, double alpha) {
  if (update.params.size() != global_.size()) {
    throw std::invalid_argument("Server::mix: size mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("Server::mix: alpha out of [0, 1]");
  }
  const float a = static_cast<float>(alpha);
  for (std::size_t f = 0; f < global_.size(); ++f) {
    global_[f] = (1.0F - a) * global_[f] + a * update.params[f];
  }
  if (!buffers_.empty()) {
    if (update.buffers.size() != buffers_.size()) {
      throw std::invalid_argument("Server::mix: buffer size mismatch");
    }
    for (std::size_t f = 0; f < buffers_.size(); ++f) {
      buffers_[f] = (1.0F - a) * buffers_[f] + a * update.buffers[f];
    }
  }
}

double Server::evaluate_accuracy(const data::Dataset& test, int batch) {
  if (batch <= 0) throw std::invalid_argument("evaluate_accuracy: batch <= 0");
  if (test.size() == 0) return 0.0;
  HELIOS_TRACE_SPAN("server.evaluate", {{"samples", test.size()}});
  model_.clear_neuron_mask();
  model_.load_params(global_);
  model_.load_buffers(buffers_);
  const int n = test.size();
  const std::size_t sample = static_cast<std::size_t>(test.channels()) *
                             test.height() * test.width();
  int correct = 0;
  for (int start = 0; start < n; start += batch) {
    const int take = std::min(batch, n - start);
    tensor::Tensor x({take, test.channels(), test.height(), test.width()});
    std::copy_n(test.images.data() + static_cast<std::size_t>(start) * sample,
                static_cast<std::size_t>(take) * sample, x.data());
    std::span<const int> labels(test.labels.data() + start,
                                static_cast<std::size_t>(take));
    correct += nn::evaluate_batch(model_, x, labels);
  }
  return static_cast<double>(correct) / n;
}

}  // namespace helios::fl
