// Federated server: holds the global model, evaluates it, and aggregates
// client updates — including partial (submodel) updates, per-neuron.
#pragma once

#include <span>
#include <vector>

#include "agg/accumulator.h"
#include "data/dataset.h"
#include "fl/client.h"
#include "nn/model.h"

namespace helios::obs {
class TelemetrySink;
}

namespace helios::fl {

class HierarchySession;

struct AggOptions {
  /// Weight updates by local sample counts (FedAvg).
  bool sample_weighting = true;
  /// Helios Eq. 10: additionally weight device n by its trained-neuron
  /// fraction r_n, so more complete submodels contribute more.
  bool hetero_volume_weights = false;
  /// Damping of the Eq. 10 weight: alpha_n = (1 - d) + d * r_n. d = 1 is
  /// the literal paper formula (alpha proportional to r_n); we default to
  /// d = 0.25 because the undamped weight starves the stragglers' data
  /// under strong Non-IID label skew and destabilizes training (measured:
  /// accuracy collapse to chance on 2-shard splits), while mild damping
  /// keeps the "more complete -> more contribution" ordering and the
  /// IID-side variance reduction.
  double alpha_damping = 0.25;
  /// Scope of the alpha_n weight. kWholeUpdate is the literal Eq. 10 (one
  /// scalar per device); kNeuronOnly exempts the common parameters (e.g.
  /// the classifier head) from alpha. kWholeUpdate is the default: applying
  /// different mixing ratios to a layer and to the layer consuming its
  /// features proved unstable under strong Non-IID skew.
  enum class AlphaScope { kWholeUpdate, kNeuronOnly };
  AlphaScope alpha_scope = AlphaScope::kWholeUpdate;
  /// Participant-aware merging: a neuron's parameters are averaged only
  /// over the devices that trained it this cycle (part of Sec. VI-B's
  /// aggregation optimization). When false, the server performs the naive
  /// merge the paper's "S.T. Only" ablation uses: plain weighted averaging
  /// of the full parameter vectors, where a straggler's *untrained* stale
  /// parameters dilute the trained updates of the other devices — the
  /// source of the accuracy fluctuation Fig. 6 shows.
  bool per_neuron_merge = true;
};

class Server {
 public:
  /// Takes ownership of a reference model whose initial parameters become
  /// the initial global model. The reference model also provides the neuron
  /// index used for per-neuron aggregation and evaluation.
  explicit Server(nn::Model reference);

  const std::vector<float>& global() const { return global_; }
  void set_global(std::vector<float> params);
  /// Global non-learnable state (BatchNorm running statistics), averaged
  /// across clients at aggregation like the parameters.
  const std::vector<float>& global_buffers() const { return buffers_; }
  void set_global_buffers(std::vector<float> buffers);
  std::size_t param_count() const { return global_.size(); }
  int neuron_total() { return model_.neuron_total(); }
  nn::Model& reference_model() { return model_; }

  /// Synchronous aggregation of one cycle's updates.
  ///
  /// Per flat parameter index f the new global value is the weighted mean of
  /// the updates allowed to write f: parameters of neuron j accept a client
  /// only if it trained j this cycle; parameters owned by no neuron (e.g.
  /// the classifier head) accept every client. Indices no client trained
  /// keep the previous global value.
  void aggregate(std::span<const ClientUpdate> updates, const AggOptions& opts);

  /// Asynchronous mixing (AFO): global <- (1-alpha) * global + alpha * local.
  void mix(const ClientUpdate& update, double alpha);

  /// Top-1 accuracy of the global model on `test`.
  double evaluate_accuracy(const data::Dataset& test, int batch = 128);

  /// Observability sink (set by Fleet::set_telemetry; may be null).
  /// aggregate() reports each update's trained fraction r_n and its
  /// normalized weight share alpha_n to it.
  void set_telemetry(obs::TelemetrySink* sink) { telemetry_ = sink; }

  /// Aggregator-tree session (set by Fleet::set_hierarchy; may be null).
  /// When attached and active, aggregate() computes its per-update weights
  /// as usual and routes the accumulation through the tree instead of the
  /// inline fold.
  void set_hierarchy(HierarchySession* session) { hierarchy_ = session; }

  /// The aggregation geometry shared with the agg layer (per-param neuron
  /// ownership and per-neuron flat slices of the reference model).
  const agg::ModelGeometry& geometry() const { return geometry_; }

 private:
  nn::Model model_;
  std::vector<float> global_;
  std::vector<float> buffers_;
  agg::ModelGeometry geometry_;
  obs::TelemetrySink* telemetry_ = nullptr;
  HierarchySession* hierarchy_ = nullptr;
};

}  // namespace helios::fl
