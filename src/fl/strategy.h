// Orchestration strategy interface. A strategy drives a Fleet for a number
// of aggregation cycles (measured at the capable devices, matching the
// x-axis of the paper's figures) and returns the per-cycle metric trace.
//
// Strategies are resumable: run() is a thin wrapper over run_range(), which
// executes cycles [begin, end) against a partially filled RunResult. All
// cross-cycle state lives in strategy members (initialized when begin == 0),
// so a run can stop at any round boundary, be checkpointed via the
// Checkpointable hooks, and continue — bit-identically — in a new process.
#pragma once

#include "fl/checkpoint.h"
#include "fl/fleet.h"
#include "fl/metrics.h"

namespace helios::fl {

class Strategy : public Checkpointable {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Runs `cycles` aggregation cycles on `fleet` (which should be freshly
  /// constructed — strategies mutate the server's global model and advance
  /// the fleet clock).
  RunResult run(Fleet& fleet, int cycles) {
    RunResult result;
    result.method = name();
    run_range(fleet, result, 0, cycles);
    return result;
  }

  /// Executes cycles [begin, end), appending records to `result.rounds`.
  /// begin == 0 (re)initializes all per-run member state; begin > 0 expects
  /// that state to be present — carried over from an earlier run_range call
  /// in this process, or restored from a checkpoint. `begin` must equal the
  /// number of cycles already completed (for recording strategies:
  /// result.rounds.size()).
  virtual void run_range(Fleet& fleet, RunResult& result, int begin,
                         int end) = 0;

  /// Checkpointable: strategies with no cross-cycle state beyond the fleet
  /// inherit these no-ops; stateful ones (Helios, async engines) override.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override {
    (void)fleet;
    (void)w;
  }
  void load_state(Fleet& fleet, CheckpointReader& r) override {
    (void)fleet;
    (void)r;
  }
};

}  // namespace helios::fl
