// Orchestration strategy interface. A strategy drives a Fleet for a number
// of aggregation cycles (measured at the capable devices, matching the
// x-axis of the paper's figures) and returns the per-cycle metric trace.
#pragma once

#include "fl/fleet.h"
#include "fl/metrics.h"

namespace helios::fl {

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;

  /// Runs `cycles` aggregation cycles on `fleet` (which should be freshly
  /// constructed — strategies mutate the server's global model and advance
  /// the fleet clock).
  virtual RunResult run(Fleet& fleet, int cycles) = 0;
};

}  // namespace helios::fl
