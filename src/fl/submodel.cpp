#include "fl/submodel.h"

#include <cmath>
#include <stdexcept>

namespace helios::fl {

std::vector<LayerNeuronRange> layer_ranges(nn::Model& model) {
  std::vector<LayerNeuronRange> out;
  const auto& neurons = model.neurons();
  for (std::size_t i = 0; i < neurons.size(); ++i) {
    if (out.empty() || out.back().leader != neurons[i].leader) {
      out.push_back({neurons[i].leader, static_cast<int>(i), 0});
    }
    ++out.back().count;
  }
  return out;
}

std::vector<int> layer_budgets(const std::vector<LayerNeuronRange>& ranges,
                               double keep_ratio) {
  if (keep_ratio <= 0.0 || keep_ratio > 1.0) {
    throw std::invalid_argument("layer_budgets: keep_ratio out of (0, 1]");
  }
  std::vector<int> budgets;
  budgets.reserve(ranges.size());
  for (const auto& r : ranges) {
    const int k = static_cast<int>(std::lround(keep_ratio * r.count));
    budgets.push_back(std::min(r.count, std::max(1, k)));
  }
  return budgets;
}

std::vector<std::uint8_t> random_volume_mask(nn::Model& model,
                                             double keep_ratio,
                                             util::Rng& rng) {
  const auto ranges = layer_ranges(model);
  const auto budgets = layer_budgets(ranges, keep_ratio);
  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(model.neuron_total()), 0);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto picks = rng.sample_without_replacement(
        static_cast<std::size_t>(ranges[i].count),
        static_cast<std::size_t>(budgets[i]));
    for (std::size_t p : picks) {
      mask[static_cast<std::size_t>(ranges[i].begin) + p] = 1;
    }
  }
  return mask;
}

int mask_active_count(const std::vector<std::uint8_t>& mask) {
  int n = 0;
  for (auto b : mask) n += (b != 0);
  return n;
}

}  // namespace helios::fl
