// Submodel (expected-model-volume) helpers shared by the Helios soft-trainer
// and the Random / static-pruning baselines.
//
// A *volume* is a keep-ratio P applied per maskable layer: layer i with n_i
// neurons trains k_i = max(1, round(P * n_i)) of them in a cycle (the paper's
// P_i n_i). Masks are expressed over the model's global neuron index.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "util/rng.h"

namespace helios::fl {

/// Contiguous run of the global neuron index belonging to one leader layer.
struct LayerNeuronRange {
  nn::Layer* leader = nullptr;
  int begin = 0;  // first global neuron id
  int count = 0;  // number of neurons in the layer
};

/// Per-leader-layer ranges, in leaf order. Ranges tile [0, neuron_total).
std::vector<LayerNeuronRange> layer_ranges(nn::Model& model);

/// k_i = max(1, round(keep_ratio * n_i)) for each range.
std::vector<int> layer_budgets(const std::vector<LayerNeuronRange>& ranges,
                               double keep_ratio);

/// Uniform-random submodel at the given volume (the Random baseline [12]
/// draws a fresh one every cycle; the static-pruning baseline draws once).
std::vector<std::uint8_t> random_volume_mask(nn::Model& model,
                                             double keep_ratio,
                                             util::Rng& rng);

/// Number of active neurons in a mask.
int mask_active_count(const std::vector<std::uint8_t>& mask);

}  // namespace helios::fl
