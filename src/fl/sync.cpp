#include "fl/sync.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fl/transport.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace helios::fl {

SyncFL::SyncFL(double participation, std::uint64_t seed)
    : participation_(participation), seed_(seed) {
  if (participation <= 0.0 || participation > 1.0) {
    throw std::invalid_argument("SyncFL: participation out of (0, 1]");
  }
}

std::string SyncFL::name() const {
  if (participation_ >= 1.0) return "Syn. FL";
  return "Syn. FL (C=" + std::to_string(participation_).substr(0, 4) + ")";
}

void SyncFL::run_range(Fleet& fleet, RunResult& result, int begin, int end) {
  AggOptions opts;  // plain sample-weighted FedAvg
  if (begin == 0) rng_ = util::Rng(seed_);
  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = begin; cycle < end; ++cycle) {
    HELIOS_TRACE_SPAN("sync.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Sample this cycle's participants from the round roster: the fleet's
    // population sampler (if set) draws the cohort first, then the
    // strategy's own participation fraction subsamples it (identical to
    // the legacy full roster — and RNG stream — absent sampler and churn).
    std::vector<Client*> active = fleet.round_roster(cycle);
    std::vector<Client*> participants;
    if (participation_ >= 1.0) {
      participants = active;
    } else {
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(participation_ *
                              static_cast<double>(active.size()))));
      for (std::size_t idx :
           rng_.sample_without_replacement(active.size(), k)) {
        participants.push_back(active[idx]);
      }
    }

    // Participants were sampled above (sequentially, from this run's RNG);
    // their cycles are independent and fan out across the pool.
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        participants, [&](Client& client, std::size_t) {
          return client.run_cycle(fleet.server().global(),
                                  fleet.server().global_buffers(), {});
        });
    double loss = 0.0;
    for (const ClientUpdate& u : updates) loss += u.mean_loss;
    // The network (if any) decides what arrived and how long the round took;
    // without a session this is the analytic max(train + upload) closure.
    NetDelivery net = deliver_round(fleet, updates, fleet.server().global());
    fleet.clock().advance(net.round_seconds);
    fleet.server().aggregate(net.aggregate_span(updates), opts);
    result.rounds.push_back(
        {cycle, fleet.clock().now(), fleet.evaluate(),
         loss / static_cast<double>(
                    std::max<std::size_t>(1, participants.size())),
         net.upload_mb});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
}

void SyncFL::save_state(const Fleet& fleet, CheckpointWriter& w) const {
  (void)fleet;
  w.rng(rng_.state());
}

void SyncFL::load_state(Fleet& fleet, CheckpointReader& r) {
  (void)fleet;
  rng_ = util::Rng::from_state(r.rng());
}

}  // namespace helios::fl
