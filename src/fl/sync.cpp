#include "fl/sync.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/telemetry.h"
#include "util/rng.h"

namespace helios::fl {

SyncFL::SyncFL(double participation, std::uint64_t seed)
    : participation_(participation), seed_(seed) {
  if (participation <= 0.0 || participation > 1.0) {
    throw std::invalid_argument("SyncFL: participation out of (0, 1]");
  }
}

std::string SyncFL::name() const {
  if (participation_ >= 1.0) return "Syn. FL";
  return "Syn. FL (C=" + std::to_string(participation_).substr(0, 4) + ")";
}

RunResult SyncFL::run(Fleet& fleet, int cycles) {
  RunResult result;
  result.method = name();
  AggOptions opts;  // plain sample-weighted FedAvg
  util::Rng rng(seed_);
  obs::TelemetrySink* tel = fleet.telemetry();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    HELIOS_TRACE_SPAN("sync.cycle", {{"cycle", cycle}});
    if (tel) tel->set_cycle(cycle);
    // Sample this cycle's participants.
    std::vector<Client*> participants;
    if (participation_ >= 1.0) {
      for (auto& c : fleet.clients()) participants.push_back(c.get());
    } else {
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(participation_ *
                              static_cast<double>(fleet.size()))));
      for (std::size_t idx : rng.sample_without_replacement(fleet.size(), k)) {
        participants.push_back(&fleet.client(idx));
      }
    }

    // Participants were sampled above (sequentially, from this run's RNG);
    // their cycles are independent and fan out across the pool.
    std::vector<ClientUpdate> updates = Fleet::parallel_train(
        participants, [&](Client& client, std::size_t) {
          return client.run_cycle(fleet.server().global(),
                                  fleet.server().global_buffers(), {});
        });
    double round_seconds = 0.0;
    double loss = 0.0;
    double upload = 0.0;
    for (const ClientUpdate& u : updates) {
      round_seconds =
          std::max(round_seconds, u.train_seconds + u.upload_seconds);
      loss += u.mean_loss;
      upload += u.upload_mb;
    }
    fleet.clock().advance(round_seconds);
    fleet.server().aggregate(updates, opts);
    result.rounds.push_back({cycle, fleet.clock().now(), fleet.evaluate(),
                             loss / static_cast<double>(participants.size()),
                             upload});
    if (tel) {
      const RoundRecord& r = result.rounds.back();
      tel->record_cycle_result(result.method, cycle, r.virtual_time,
                               r.test_accuracy, r.mean_train_loss,
                               r.upload_mb);
    }
  }
  return result;
}

}  // namespace helios::fl
