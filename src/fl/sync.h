// Baseline 1: fully synchronous FedAvg (Syn. FL).
//
// Every device — stragglers included — trains the full model each cycle and
// the server waits for the slowest one, so the cycle time is dominated by
// the worst straggler (the Fig. 1 problem).
#pragma once

#include "fl/strategy.h"
#include "util/rng.h"

namespace helios::fl {

class SyncFL final : public Strategy {
 public:
  /// `participation` in (0, 1]: the fraction of clients sampled uniformly
  /// at random each cycle (classic FedAvg partial participation; 1.0 = all
  /// devices every cycle). At least one client always participates.
  explicit SyncFL(double participation = 1.0, std::uint64_t seed = 17);

  std::string name() const override;
  void run_range(Fleet& fleet, RunResult& result, int begin,
                 int end) override;

  /// Cross-cycle state is the participation-sampling RNG position.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  double participation_;
  std::uint64_t seed_;
  util::Rng rng_{0};  ///< reseeded from seed_ when a run starts at cycle 0
};

}  // namespace helios::fl
