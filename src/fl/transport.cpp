#include "fl/transport.h"

#include <algorithm>
#include <utility>

#include "fl/hierarchy.h"
#include "obs/telemetry.h"

namespace helios::fl {

NetworkSession::NetworkSession(Fleet& fleet, net::NetworkOptions options)
    : fleet_(fleet),
      layout_(net::make_wire_layout(fleet.server().reference_model())),
      protocol_(options) {
  track_clients();
  fleet_.set_network(this);
}

NetworkSession::~NetworkSession() {
  if (fleet_.network() == this) fleet_.set_network(nullptr);
}

void NetworkSession::track_clients() {
  for (auto& c : fleet_.clients()) {
    if (!protocol_.has_device(c->id())) {
      protocol_.add_device(c->id(), c->profile().net_bandwidth_mbps);
    }
  }
}

namespace {

net::WireMessage wire_message(const ClientUpdate& update) {
  net::WireMessage msg;
  msg.client_id = update.client_id;
  msg.sample_count = update.sample_count;
  msg.mean_loss = update.mean_loss;
  msg.params = update.params;
  msg.buffers = update.buffers;
  msg.neuron_mask = update.trained_mask;
  return msg;
}

/// Mirrors the wire encoder's shipped-entry rule: an entry crosses the wire
/// unless a mask is present and its owning neuron is inactive.
bool entry_shipped(const net::WireLayout& layout,
                   std::span<const std::uint8_t> mask, std::size_t f) {
  const std::uint32_t n = layout.neuron_of[f];
  return mask.empty() || n == net::WireLayout::kCommonParam || mask[n] != 0;
}

}  // namespace

std::vector<std::uint8_t> NetworkSession::encode(
    const ClientUpdate& update, std::span<const float> base_params) const {
  const net::WireMessage msg = wire_message(update);
  if (base_params.size() == layout_.param_count) {
    return net::encode_frame_auto(msg, base_params, layout_,
                                  options().payload_codec, nullptr);
  }
  return net::encode_frame(msg, layout_, options().payload_codec, nullptr);
}

std::vector<std::uint8_t> NetworkSession::encode_for_send(
    const ClientUpdate& update, std::span<const float> base_params) {
  const codec::CodecId id = options().payload_codec;
  if (id == codec::CodecId::kFp32) return encode(update, base_params);

  net::WireMessage msg = wire_message(update);
  const bool have_base = base_params.size() == layout_.param_count;
  const bool use_ef = options().error_feedback && have_base;

  std::vector<float> compensated;
  std::vector<float>* residual = nullptr;
  if (use_ef) {
    // Error feedback: add the residual the previous rounds' quantization
    // left behind before quantizing this upload. Only shipped entries read
    // it (unshipped entries never cross the wire and keep their residual).
    residual = &feedback_.residual(update.client_id, layout_.param_count);
    compensated.assign(update.params.begin(), update.params.end());
    for (std::size_t f = 0; f < compensated.size(); ++f) {
      compensated[f] += (*residual)[f];
    }
    msg.params = compensated;
  }

  net::CodecResult result;
  std::vector<std::uint8_t> frame =
      have_base ? net::encode_frame_auto(msg, base_params, layout_, id, &result)
                : net::encode_frame(msg, layout_, id, &result);

  if (use_ef) {
    // residual' = compensated - what the receiver reconstructs; a lossless
    // (fp32) frame delivers everything, clearing the shipped residual.
    const bool lossless = result.codec == codec::CodecId::kFp32;
    for (std::size_t f = 0; f < layout_.param_count; ++f) {
      if (!entry_shipped(layout_, msg.neuron_mask, f)) continue;
      (*residual)[f] =
          lossless ? 0.0f : compensated[f] - result.dequantized[f];
    }
  }

  if (obs::TelemetrySink* sink = fleet_.telemetry()) {
    sink->record_codec(update.client_id,
                       net::dense_frame_bytes(layout_, msg.neuron_mask),
                       frame.size(),
                       use_ef ? feedback_.l2_norm(update.client_id) : 0.0);
  }
  return frame;
}

void NetworkSession::save_state(const Fleet& fleet,
                                CheckpointWriter& w) const {
  (void)fleet;
  const auto& all = feedback_.all();
  w.u32(static_cast<std::uint32_t>(all.size()));
  for (const auto& [client_id, residual] : all) {
    w.i32(client_id);
    w.vec_f32(residual);
  }
}

void NetworkSession::load_state(Fleet& fleet, CheckpointReader& r) {
  (void)fleet;
  feedback_.clear();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int32_t client_id = r.i32();
    feedback_.assign(client_id, r.vec_f32());
  }
}

ClientUpdate NetworkSession::decode(std::span<const std::uint8_t> frame,
                                    std::span<const float> base_params,
                                    const ClientUpdate& local) const {
  net::DecodedMessage msg = net::decode_frame(frame, layout_, base_params);
  ClientUpdate u;
  u.client_id = msg.client_id;
  u.params = std::move(msg.params);
  u.buffers = std::move(msg.buffers);
  u.trained_mask = std::move(msg.neuron_mask);
  u.sample_count = static_cast<std::size_t>(msg.sample_count);
  u.mean_loss = msg.mean_loss;
  // Virtual-time costs travel out of band (the channel, not the frame,
  // determines them); keep the sender's analytic values by default.
  u.train_seconds = local.train_seconds;
  u.upload_seconds = local.upload_seconds;
  u.upload_mb = local.upload_mb;
  return u;
}

std::size_t NetworkSession::frame_bytes(
    const ClientUpdate& update, std::span<const float> base_params) const {
  return encode(update, base_params).size();
}

void NetworkSession::mark_death(int client_id) {
  if (Client* c = fleet_.find_client(client_id)) c->set_active(false);
}

void NetworkSession::record_round(const NetDelivery& d,
                                  std::size_t frames_delivered) {
  obs::TelemetrySink* sink = fleet_.telemetry();
  if (sink == nullptr) return;
  sink->record_network_round(d.bytes_on_wire,
                             static_cast<int>(d.delivered.size()),
                             static_cast<int>(frames_delivered), d.lost_frames,
                             d.retransmits, d.deadline_misses,
                             static_cast<int>(d.died.size()));
}

NetDelivery NetworkSession::deliver_round(std::span<const ClientUpdate> updates,
                                          std::span<const float> base_params) {
  track_clients();
  obs::TelemetrySink* sink = fleet_.telemetry();

  NetDelivery d;
  d.pass_through = false;
  d.delivered.assign(updates.size(), 1);
  d.comm_seconds.resize(updates.size(), 0.0);

  // Legacy analytic round accounting — the kIdeal result, and the deadline
  // hint for the simulated path.
  double analytic_round = 0.0;
  double analytic_mb = 0.0;
  for (const ClientUpdate& u : updates) {
    analytic_round =
        std::max(analytic_round, u.train_seconds + u.upload_seconds);
    analytic_mb += u.upload_mb;
  }

  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    frames.push_back(encode_for_send(u, base_params));
  }

  if (!simulated()) {
    // Ideal channel: every frame round-trips through the wire format (an
    // integrity check — encode/decode is bit-exact) and is counted, but
    // timing and delivery stay on the analytic path.
    d.arrived.reserve(updates.size());
    for (std::size_t i = 0; i < updates.size(); ++i) {
      d.comm_seconds[i] = updates[i].upload_seconds;
      d.bytes_on_wire += frames[i].size();
      d.arrived.push_back(decode(frames[i], base_params, updates[i]));
      if (sink != nullptr) {
        sink->record_device_transfer(updates[i].client_id, frames[i].size(), 1,
                                     0, /*delivered=*/true,
                                     /*deadline_missed=*/false, /*died=*/false,
                                     updates[i].upload_seconds);
      }
    }
    d.round_seconds = analytic_round;
    d.upload_mb = analytic_mb;
    record_round(d, updates.size());
    return d;
  }

  const double round_start = fleet_.clock().now();
  std::vector<net::RoundProtocol::Send> sends;
  sends.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    sends.push_back({updates[i].client_id, frames[i].size(),
                     round_start + updates[i].train_seconds});
  }
  const net::RoundProtocol::RoundOutcome out =
      protocol_.run_round(sends, round_start, analytic_round);

  // With an aggregator tree attached, the accepted device frames now sit at
  // their edge nodes; simulate the merge-frame relay up the tree before
  // deciding what reaches the root. An edge (or its regional) missing a tier
  // deadline drops its whole device set from this round's aggregation — the
  // weight-carrying frames make that renormalize exactly like a late cohort.
  HierarchySession* hier = fleet_.hierarchy();
  const bool tree_relay = hier != nullptr && hier->active();
  agg::RelayOutcome relay;
  if (tree_relay) {
    const int edges = hier->topology().edge_nodes;
    std::vector<double> edge_ready(static_cast<std::size_t>(edges), -1.0);
    std::vector<std::size_t> edge_extra(static_cast<std::size_t>(edges), 0);
    for (std::size_t i = 0; i < updates.size(); ++i) {
      const net::RoundProtocol::Delivery& del = out.deliveries[i];
      if (!del.delivered || del.deadline_missed) continue;
      const auto e = static_cast<std::size_t>(
          hier->topology().edge_of(updates[i].client_id));
      edge_ready[e] = std::max(edge_ready[e], del.settle_s);
      if (!updates[i].trained_mask.empty()) {
        // Bookkeeping rider: one f64 U^ij shard per masked neuron plus the
        // device id, forwarded alongside the edge's merge frame.
        edge_extra[e] += 8 * updates[i].trained_mask.size() + 8;
      }
    }
    relay = hier->relay_round(edge_ready, edge_extra, round_start);
  }

  d.arrived.reserve(static_cast<std::size_t>(out.delivered));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const net::RoundProtocol::Delivery& del = out.deliveries[i];
    d.comm_seconds[i] = del.comm_seconds;
    bool accepted = del.delivered && !del.deadline_missed;
    if (accepted && tree_relay) {
      const auto e = static_cast<std::size_t>(
          hier->topology().edge_of(updates[i].client_id));
      accepted = relay.edge_on_time[e] != 0;
    }
    d.delivered[i] = accepted ? 1 : 0;
    if (del.died) {
      d.died.push_back(del.device_id);
      mark_death(del.device_id);
    }
    if (accepted) {
      ClientUpdate u = decode(frames[i], base_params, updates[i]);
      u.upload_seconds = del.comm_seconds;
      u.upload_mb = static_cast<double>(del.bytes_on_wire) / 1e6;
      d.arrived.push_back(std::move(u));
    }
    if (sink != nullptr) {
      sink->record_device_transfer(del.device_id, del.bytes_on_wire,
                                   del.transmissions, del.lost_frames,
                                   accepted, del.deadline_missed, del.died,
                                   del.comm_seconds);
    }
  }
  double close_s = out.round_close_s;
  d.bytes_on_wire = out.bytes_on_wire;
  d.retransmits = out.retransmits;
  d.lost_frames = out.lost_frames;
  d.deadline_misses = out.deadline_misses;
  if (tree_relay && relay.any_sent) {
    // The round now closes when the root holds its last accepted merge frame
    // (or the governing tier deadline expires); the device-tier close still
    // applies for failed device uploads the protocol waited out.
    close_s = std::max(close_s, relay.close_s);
    d.bytes_on_wire += relay.bytes_on_wire;
    d.retransmits += relay.retransmits;
    d.lost_frames += relay.lost_frames;
    d.deadline_misses += relay.deadline_misses;
  }
  d.round_seconds = close_s - round_start;
  d.upload_mb = static_cast<double>(d.bytes_on_wire) / 1e6;
  record_round(d, d.arrived.size());
  return d;
}

NetworkSession::SingleDelivery NetworkSession::deliver_update(
    const ClientUpdate& update, std::span<const float> base_params,
    double start_s) {
  track_clients();
  obs::TelemetrySink* sink = fleet_.telemetry();
  const std::vector<std::uint8_t> frame = encode_for_send(update, base_params);

  SingleDelivery s;
  if (!simulated()) {
    s.update = decode(frame, base_params, update);
    s.comm_seconds = update.upload_seconds;
    s.settle_s = start_s + update.upload_seconds;
    if (sink != nullptr) {
      sink->record_device_transfer(update.client_id, frame.size(), 1, 0,
                                   /*delivered=*/true,
                                   /*deadline_missed=*/false, /*died=*/false,
                                   update.upload_seconds);
    }
    return s;
  }

  const net::RoundProtocol::Delivery del =
      protocol_.send_with_retries(update.client_id, frame.size(), start_s,
                                  /*deadline_abs_s=*/0.0);
  s.delivered = del.delivered;
  s.died = del.died;
  s.comm_seconds = del.comm_seconds;
  s.settle_s = del.settle_s;
  if (del.died) mark_death(del.device_id);
  if (del.delivered) {
    // Asynchronous updates relayed through an aggregator tree pay the
    // deterministic per-hop merge-frame transfer on top of the device
    // uplink (no tier batching: each completion travels alone).
    HierarchySession* hier = fleet_.hierarchy();
    if (hier != nullptr && hier->active()) {
      const std::size_t rider =
          update.trained_mask.empty() ? 0 : 8 * update.trained_mask.size() + 8;
      const double hop = hier->async_uplink_seconds(update.client_id, rider);
      s.comm_seconds += hop;
      s.settle_s += hop;
    }
    s.update = decode(frame, base_params, update);
    s.update.upload_seconds = s.comm_seconds;
    s.update.upload_mb = static_cast<double>(del.bytes_on_wire) / 1e6;
  }
  if (sink != nullptr) {
    sink->record_device_transfer(del.device_id, del.bytes_on_wire,
                                 del.transmissions, del.lost_frames,
                                 del.delivered, del.deadline_missed, del.died,
                                 del.comm_seconds);
  }
  return s;
}

NetDelivery deliver_round(Fleet& fleet, std::span<const ClientUpdate> updates,
                          std::span<const float> base_params) {
  if (NetworkSession* session = fleet.network()) {
    return session->deliver_round(updates, base_params);
  }
  NetDelivery d;  // pass_through: aggregate `updates` directly
  d.delivered.assign(updates.size(), 1);
  d.comm_seconds.reserve(updates.size());
  for (const ClientUpdate& u : updates) {
    d.comm_seconds.push_back(u.upload_seconds);
    d.round_seconds =
        std::max(d.round_seconds, u.train_seconds + u.upload_seconds);
    d.upload_mb += u.upload_mb;
  }
  return d;
}

}  // namespace helios::fl
