// NetworkSession — the glue between the fleet's federated round loop and
// the src/net simulation (wire format + channels + round protocol).
//
// Attach one to a fleet to make every strategy's uploads cross a simulated
// network:
//
//   net::NetworkOptions opts;
//   opts.mode = net::NetMode::kSimulated;
//   opts.channel.loss_prob = 0.05;
//   fl::NetworkSession session(fleet, opts);   // also registers channels
//   session.protocol().script_death(3, 120.0); // optional fault scripting
//   ... run any strategy ...
//
// Modes:
//   * kIdeal (default NetworkOptions) — every update is encoded to a frame,
//     integrity-checked, decoded and counted (bytes-on-wire telemetry), but
//     delivery is perfect and all virtual times stay on the analytic M/B_n
//     path: RunResults are bit-identical to a run with no session attached.
//   * kSimulated — upload_seconds comes from the serialized frame's actual
//     transfer (size / bandwidth + latency + jitter + retries), frames can
//     be lost or miss the round deadline (the round aggregates whatever
//     arrived — Server::aggregate renormalizes the alpha_n weights over the
//     actual arrivals), and a device whose channel dies is deactivated in
//     the fleet roster.
//
// Strategies call deliver_round / deliver_update through the fleet's
// attached session; with none attached they keep the exact legacy path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "codec/error_feedback.h"
#include "fl/checkpoint.h"
#include "fl/fleet.h"
#include "net/round_protocol.h"
#include "net/wire.h"

namespace helios::fl {

/// What the server saw of one synchronous round.
struct NetDelivery {
  /// True when no simulation ran and the caller should aggregate its local
  /// updates directly (no session attached).
  bool pass_through = true;
  /// Server-side arrivals, decoded from frames (empty when pass_through).
  std::vector<ClientUpdate> arrived;
  /// Per *input* update: whether its frame was accepted in time.
  std::vector<std::uint8_t> delivered;
  /// Per input update: the device's actual upload time (analytic on the
  /// pass-through/ideal paths; wire-driven incl. retries when simulated).
  std::vector<double> comm_seconds;
  /// Round duration: max over participants of train + comm, deadline-capped
  /// when the protocol enforces one.
  double round_seconds = 0.0;
  /// Round communication volume for the RoundRecord: the analytic sum on
  /// the pass-through/ideal paths, real bytes-on-wire / 1e6 when simulated.
  double upload_mb = 0.0;
  std::size_t bytes_on_wire = 0;
  int retransmits = 0;
  int lost_frames = 0;
  int deadline_misses = 0;
  /// Clients deactivated this round because their device died mid-upload.
  std::vector<int> died;

  /// The updates the server aggregates: the arrivals, or `local` when the
  /// delivery passed through.
  std::span<const ClientUpdate> aggregate_span(
      std::span<const ClientUpdate> local) const {
    return pass_through ? local : std::span<const ClientUpdate>(arrived);
  }
};

/// With a quantized NetworkOptions::payload_codec, uploads cross the wire
/// as version-2 frames and (when error_feedback is on) each client's
/// quantization residual is carried across rounds and added back into its
/// next upload before quantizing — the error-feedback scheme that keeps
/// the long-run aggregate unbiased. The residual bank is Checkpointable:
/// register the session (e.g. as "codec_ef") to keep crash/resume
/// bit-identical under quantization.
class NetworkSession : public Checkpointable {
 public:
  /// Builds the wire layout from the fleet's server reference model,
  /// registers a channel per existing client, and attaches itself via
  /// Fleet::set_network. The session must outlive the fleet's use of it.
  NetworkSession(Fleet& fleet, net::NetworkOptions options);
  ~NetworkSession();

  NetworkSession(const NetworkSession&) = delete;
  NetworkSession& operator=(const NetworkSession&) = delete;

  const net::NetworkOptions& options() const { return protocol_.options(); }
  net::RoundProtocol& protocol() { return protocol_; }
  const net::WireLayout& layout() const { return layout_; }
  bool simulated() const {
    return options().mode == net::NetMode::kSimulated;
  }

  /// Delivers one synchronous round of updates. `base_params` is the global
  /// snapshot the clients trained from (fills unshipped entries at decode).
  /// Registers channels for any clients added since the last call, and
  /// deactivates clients whose devices died.
  NetDelivery deliver_round(std::span<const ClientUpdate> updates,
                            std::span<const float> base_params);

  /// One update outside a synchronous round (the asynchronous strategies'
  /// per-completion path). `start_s` is when the upload begins.
  struct SingleDelivery {
    bool delivered = true;
    bool died = false;
    double comm_seconds = 0.0;
    /// Absolute virtual time the frame settled.
    double settle_s = 0.0;
    ClientUpdate update;  // decoded arrival (valid when delivered)
  };
  SingleDelivery deliver_update(const ClientUpdate& update,
                                std::span<const float> base_params,
                                double start_s);

  /// Encodes `update` exactly as deliver would — minus error-feedback
  /// compensation, which only a real send applies — and returns the size.
  std::size_t frame_bytes(const ClientUpdate& update,
                          std::span<const float> base_params) const;

  /// The error-feedback residual bank (empty while payload_codec is kFp32
  /// or error_feedback is off).
  const codec::ErrorFeedback& feedback() const { return feedback_; }

  /// Checkpointable: snapshots the residual bank so a resumed run's
  /// compensated uploads stay bit-identical to the uninterrupted run.
  void save_state(const Fleet& fleet, CheckpointWriter& w) const override;
  void load_state(Fleet& fleet, CheckpointReader& r) override;

 private:
  void track_clients();
  std::vector<std::uint8_t> encode(const ClientUpdate& update,
                                   std::span<const float> base_params) const;
  /// The sending path: applies error feedback (mutating the residual bank)
  /// and records codec telemetry for quantized codecs; kFp32 falls through
  /// to the const encoder.
  std::vector<std::uint8_t> encode_for_send(
      const ClientUpdate& update, std::span<const float> base_params);
  ClientUpdate decode(std::span<const std::uint8_t> frame,
                      std::span<const float> base_params,
                      const ClientUpdate& local) const;
  void mark_death(int client_id);
  void record_round(const NetDelivery& d, std::size_t frames_delivered);

  Fleet& fleet_;
  net::WireLayout layout_;
  net::RoundProtocol protocol_;
  codec::ErrorFeedback feedback_;
};

/// Legacy-path round closure shared by the synchronous strategies: without
/// a session the round lasts as long as the slowest train + analytic upload
/// and every update arrives. Bit-identical to the pre-network loops.
NetDelivery deliver_round(Fleet& fleet,
                          std::span<const ClientUpdate> updates,
                          std::span<const float> base_params);

}  // namespace helios::fl
