#include "models/zoo.h"

#include <memory>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/depthwise.h"
#include "nn/flatten.h"
#include "nn/groupnorm.h"
#include "nn/pool.h"
#include "nn/residual.h"

namespace helios::models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::MaxPool2d;
using nn::Model;
using nn::ReLU;
using nn::ResidualBlock;

nn::Model make_lenet(const InputSpec& in, std::uint64_t seed) {
  util::Rng rng(seed);
  Model m;
  // conv1 keeps spatial size (k5, pad 2), pool halves it.
  auto& c1 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      in.channels, in.height, in.width, 6, 5, 1, 2, rng)));
  m.add(std::make_unique<ReLU>());
  auto& p1 = static_cast<MaxPool2d&>(m.add(std::make_unique<MaxPool2d>(
      6, c1.out_h(), c1.out_w(), 2, 2)));
  auto& c2 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      6, p1.out_h(), p1.out_w(), 16, 5, 1, 0, rng)));
  m.add(std::make_unique<ReLU>());
  auto& p2 = static_cast<MaxPool2d&>(m.add(std::make_unique<MaxPool2d>(
      16, c2.out_h(), c2.out_w(), 2, 2)));
  const int feat = 16 * p2.out_h() * p2.out_w();
  m.add(std::make_unique<Flatten>(16, p2.out_h(), p2.out_w()));
  m.add(std::make_unique<Dense>(feat, 120, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(120, 84, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(84, in.classes, rng, /*maskable=*/false));
  m.finalize();
  return m;
}

nn::Model make_alexnet_lite(const InputSpec& in, std::uint64_t seed,
                            int width) {
  if (width <= 0) throw std::invalid_argument("alexnet_lite: width <= 0");
  util::Rng rng(seed);
  Model m;
  const int w = width;
  auto& c1 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      in.channels, in.height, in.width, w, 3, 1, 1, rng)));
  m.add(std::make_unique<ReLU>());
  auto& p1 = static_cast<MaxPool2d&>(m.add(std::make_unique<MaxPool2d>(
      w, c1.out_h(), c1.out_w(), 2, 2)));
  auto& c2 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      w, p1.out_h(), p1.out_w(), 2 * w, 3, 1, 1, rng)));
  m.add(std::make_unique<ReLU>());
  auto& p2 = static_cast<MaxPool2d&>(m.add(std::make_unique<MaxPool2d>(
      2 * w, c2.out_h(), c2.out_w(), 2, 2)));
  auto& c3 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      2 * w, p2.out_h(), p2.out_w(), 3 * w, 3, 1, 1, rng)));
  m.add(std::make_unique<ReLU>());
  auto& c4 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      3 * w, c3.out_h(), c3.out_w(), 3 * w, 3, 1, 1, rng)));
  m.add(std::make_unique<ReLU>());
  auto& c5 = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      3 * w, c4.out_h(), c4.out_w(), 2 * w, 3, 1, 1, rng)));
  m.add(std::make_unique<ReLU>());
  auto& p3 = static_cast<MaxPool2d&>(m.add(std::make_unique<MaxPool2d>(
      2 * w, c5.out_h(), c5.out_w(), 2, 2)));
  const int feat = 2 * w * p3.out_h() * p3.out_w();
  m.add(std::make_unique<Flatten>(2 * w, p3.out_h(), p3.out_w()));
  m.add(std::make_unique<Dense>(feat, 16 * w, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(16 * w, 8 * w, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(8 * w, in.classes, rng, /*maskable=*/false));
  m.finalize();
  return m;
}

nn::Model make_resnet18_lite(const InputSpec& in, std::uint64_t seed,
                             int base_width, int blocks_per_stage) {
  if (base_width <= 0 || blocks_per_stage <= 0) {
    throw std::invalid_argument("resnet18_lite: bad width/blocks");
  }
  util::Rng rng(seed);
  Model m;
  const int b = base_width;
  auto& stem = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      in.channels, in.height, in.width, b, 3, 1, 1, rng)));
  auto& stem_bn = static_cast<BatchNorm2d&>(m.add(
      std::make_unique<BatchNorm2d>(b, stem.out_h(), stem.out_w())));
  m.link_follower(stem_bn, stem);
  m.add(std::make_unique<ReLU>());

  int ch = b, h = stem.out_h(), w = stem.out_w();
  const int stage_channels[4] = {b, 2 * b, 4 * b, 8 * b};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < blocks_per_stage; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      auto& rb = static_cast<ResidualBlock&>(m.add(
          std::make_unique<ResidualBlock>(ch, h, w, stage_channels[stage],
                                          stride, rng)));
      ch = rb.out_channels();
      h = rb.out_h();
      w = rb.out_w();
    }
  }
  m.add(std::make_unique<GlobalAvgPool>(ch, h, w));
  m.add(std::make_unique<Dense>(ch, in.classes, rng, /*maskable=*/false));
  m.finalize();
  return m;
}

nn::Model make_mlp(const InputSpec& in, std::uint64_t seed, int hidden) {
  if (hidden <= 0) throw std::invalid_argument("mlp: hidden <= 0");
  util::Rng rng(seed);
  Model m;
  const int feat = in.channels * in.height * in.width;
  m.add(std::make_unique<Flatten>(in.channels, in.height, in.width));
  m.add(std::make_unique<Dense>(feat, hidden, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(hidden, in.classes, rng, /*maskable=*/false));
  m.finalize();
  return m;
}

nn::Model make_mobilenet_lite(const InputSpec& in, std::uint64_t seed,
                              int base_width) {
  if (base_width <= 0 || base_width % 4 != 0) {
    throw std::invalid_argument(
        "mobilenet_lite: base width must be a positive multiple of 4");
  }
  util::Rng rng(seed);
  Model m;
  const int b = base_width;
  auto& stem = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
      in.channels, in.height, in.width, b, 3, 1, 1, rng)));
  auto& stem_gn = static_cast<nn::GroupNorm2d&>(m.add(
      std::make_unique<nn::GroupNorm2d>(b, stem.out_h(), stem.out_w(), 4)));
  m.link_follower(stem_gn, stem);
  m.add(std::make_unique<ReLU>());

  struct BlockSpec {
    int out_channels;
    int stride;
  };
  const BlockSpec blocks[4] = {{2 * b, 2}, {2 * b, 1}, {4 * b, 2}, {4 * b, 1}};
  Conv2d* prev_conv = &stem;
  int ch = b, h = stem.out_h(), w = stem.out_w();
  for (const BlockSpec& blk : blocks) {
    auto& dw = static_cast<nn::DepthwiseConv2d&>(
        m.add(std::make_unique<nn::DepthwiseConv2d>(ch, h, w, 3, blk.stride,
                                                    1, rng,
                                                    /*follower=*/true)));
    m.link_follower(dw, *prev_conv);
    auto& gn1 = static_cast<nn::GroupNorm2d&>(m.add(
        std::make_unique<nn::GroupNorm2d>(ch, dw.out_h(), dw.out_w(), 4)));
    m.link_follower(gn1, *prev_conv);
    m.add(std::make_unique<ReLU>());
    auto& pw = static_cast<Conv2d&>(m.add(std::make_unique<Conv2d>(
        ch, dw.out_h(), dw.out_w(), blk.out_channels, 1, 1, 0, rng)));
    auto& gn2 = static_cast<nn::GroupNorm2d&>(
        m.add(std::make_unique<nn::GroupNorm2d>(blk.out_channels, pw.out_h(),
                                                pw.out_w(), 4)));
    m.link_follower(gn2, pw);
    m.add(std::make_unique<ReLU>());
    prev_conv = &pw;
    ch = blk.out_channels;
    h = pw.out_h();
    w = pw.out_w();
  }
  m.add(std::make_unique<GlobalAvgPool>(ch, h, w));
  m.add(std::make_unique<Dense>(ch, in.classes, rng, /*maskable=*/false));
  m.finalize();
  return m;
}

ModelSpec lenet_spec(const InputSpec& in) {
  return {"LeNet", in,
          [in](std::uint64_t seed) { return make_lenet(in, seed); }};
}

ModelSpec alexnet_lite_spec(const InputSpec& in, int width) {
  return {"AlexNet-lite", in, [in, width](std::uint64_t seed) {
            return make_alexnet_lite(in, seed, width);
          }};
}

ModelSpec resnet18_lite_spec(const InputSpec& in, int base_width,
                             int blocks_per_stage) {
  return {"ResNet18-lite", in, [in, base_width, blocks_per_stage](
                                   std::uint64_t seed) {
            return make_resnet18_lite(in, seed, base_width, blocks_per_stage);
          }};
}

ModelSpec mlp_spec(const InputSpec& in, int hidden) {
  return {"MLP", in, [in, hidden](std::uint64_t seed) {
            return make_mlp(in, seed, hidden);
          }};
}

ModelSpec mobilenet_lite_spec(const InputSpec& in, int base_width) {
  return {"MobileNet-lite", in, [in, base_width](std::uint64_t seed) {
            return make_mobilenet_lite(in, seed, base_width);
          }};
}

}  // namespace helios::models
