// Model zoo: the three architectures the paper evaluates (LeNet, AlexNet,
// ResNet-18) plus a small MLP for tests.
//
// The convolutional widths are scaled down so the full federated experiments
// run on a single CPU core, but the topologies match the originals (LeNet is
// exact; AlexNet-lite keeps the 5-conv + 3-dense shape; ResNet18-lite keeps
// the 4-stage basic-block residual layout with a configurable block count).
// Every builder takes the input geometry and a seed, so clients can
// construct identical architectures with independent RNG streams.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "nn/model.h"

namespace helios::models {

/// Input geometry + label arity of a dataset/model pairing.
struct InputSpec {
  int channels = 1;
  int height = 28;
  int width = 28;
  int classes = 10;
};

/// A named, reproducible architecture: `build(seed)` returns a freshly
/// initialized model. All clients in a federation share one ModelSpec.
struct ModelSpec {
  std::string name;
  InputSpec input;
  std::function<nn::Model(std::uint64_t seed)> build;
};

/// Classic LeNet-5 (28x28 grayscale by default).
nn::Model make_lenet(const InputSpec& in, std::uint64_t seed);

/// AlexNet-style 5-conv / 3-dense network, width-scaled by `width`
/// (channel progression width, 2w, 3w, 3w, 2w).
nn::Model make_alexnet_lite(const InputSpec& in, std::uint64_t seed,
                            int width = 8);

/// ResNet-18-style residual network: conv+BN stem then 4 stages of basic
/// blocks with channel progression base, 2b, 4b, 8b and stride-2 stage
/// transitions; `blocks_per_stage=2` recovers the full 18-layer layout.
nn::Model make_resnet18_lite(const InputSpec& in, std::uint64_t seed,
                             int base_width = 8, int blocks_per_stage = 1);

/// Two-layer perceptron (Flatten -> Dense -> ReLU -> Dense) for unit tests
/// and micro-experiments.
nn::Model make_mlp(const InputSpec& in, std::uint64_t seed, int hidden = 32);

/// MobileNet-style edge network: conv stem + four depthwise-separable
/// blocks (depthwise 3x3 -> GroupNorm -> ReLU -> pointwise 1x1 -> GroupNorm
/// -> ReLU), GroupNorm throughout (no running statistics to federate —
/// the batch-independent normalizer FL deployments prefer). Each depthwise
/// stage follows its preceding pointwise conv's mask, so a neuron is a
/// full separable channel.
nn::Model make_mobilenet_lite(const InputSpec& in, std::uint64_t seed,
                              int base_width = 8);

ModelSpec lenet_spec(const InputSpec& in = {1, 28, 28, 10});
ModelSpec alexnet_lite_spec(const InputSpec& in = {3, 32, 32, 10},
                            int width = 8);
ModelSpec resnet18_lite_spec(const InputSpec& in = {3, 16, 16, 100},
                             int base_width = 8, int blocks_per_stage = 1);
ModelSpec mlp_spec(const InputSpec& in, int hidden = 32);
ModelSpec mobilenet_lite_spec(const InputSpec& in = {3, 32, 32, 10},
                              int base_width = 8);

}  // namespace helios::models
