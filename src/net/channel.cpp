#include "net/channel.h"

#include <stdexcept>

namespace helios::net {

namespace {
constexpr double kMb = 1.0e6;
}

SimulatedChannel::SimulatedChannel(ChannelConfig config,
                                   double fallback_bandwidth_mbps,
                                   util::Rng rng)
    : config_(config), rng_(rng) {
  bandwidth_mbps_ = config.bandwidth_mbps > 0.0 ? config.bandwidth_mbps
                                                : fallback_bandwidth_mbps;
  if (bandwidth_mbps_ <= 0.0) {
    throw std::invalid_argument("SimulatedChannel: bandwidth must be > 0");
  }
  if (config.latency_s < 0.0 || config.jitter_s < 0.0) {
    throw std::invalid_argument("SimulatedChannel: negative latency/jitter");
  }
  if (config.loss_prob < 0.0 || config.loss_prob >= 1.0) {
    throw std::invalid_argument(
        "SimulatedChannel: loss_prob out of [0, 1)");
  }
}

void SimulatedChannel::set_config(ChannelConfig config) {
  if (config.bandwidth_mbps > 0.0) bandwidth_mbps_ = config.bandwidth_mbps;
  config_ = config;
}

void SimulatedChannel::add_outage(double start_s, double end_s) {
  if (start_s < 0.0 || end_s <= start_s) {
    throw std::invalid_argument("SimulatedChannel: bad outage window");
  }
  outages_.emplace_back(start_s, end_s);
}

void SimulatedChannel::set_death(double at_s) {
  if (at_s < 0.0) {
    throw std::invalid_argument("SimulatedChannel: negative death time");
  }
  death_s_ = at_s;
}

double SimulatedChannel::outage_end(double t) const {
  double end = -1.0;
  for (const auto& [start, stop] : outages_) {
    if (t >= start && t < stop && stop > end) end = stop;
  }
  return end;
}

double SimulatedChannel::transfer_seconds(std::size_t bytes) const {
  return config_.latency_s +
         static_cast<double>(bytes) / (bandwidth_mbps_ * kMb);
}

SimulatedChannel::Attempt SimulatedChannel::try_send(std::size_t bytes,
                                                     double start_s) {
  Attempt a;
  if (dead_at(start_s)) {
    a.outcome = Attempt::Outcome::kDead;
    a.finish_s = start_s;
    return a;
  }
  const double resume = outage_end(start_s);
  if (resume >= 0.0) {
    a.outcome = Attempt::Outcome::kBlocked;
    a.finish_s = resume;
    return a;
  }
  double duration = transfer_seconds(bytes);
  if (config_.jitter_s > 0.0) {
    duration += rng_.uniform(0.0, config_.jitter_s);
  }
  const double finish = start_s + duration;
  // Death mid-transfer cuts the frame off; the sender finds out at the
  // moment the link goes silent.
  if (death_s_ >= 0.0 && death_s_ < finish) {
    a.outcome = Attempt::Outcome::kDead;
    a.finish_s = death_s_;
    a.bytes = bytes;
    return a;
  }
  a.bytes = bytes;
  a.finish_s = finish;
  a.outcome = (config_.loss_prob > 0.0 && rng_.bernoulli(config_.loss_prob))
                  ? Attempt::Outcome::kLost
                  : Attempt::Outcome::kDelivered;
  return a;
}

}  // namespace helios::net
