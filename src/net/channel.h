// Per-device simulated network channel.
//
// A channel turns "device n sends B bytes at virtual time t" into a
// deterministic outcome: delivered at t + latency + jitter + B / bandwidth,
// lost with probability loss_prob (the sender learns at the same time an
// ack would have arrived), blocked while a scripted outage window covers t,
// or dead once the device's scripted death time has passed. All randomness
// comes from the channel's own seeded Rng, so a run is reproducible
// bit-for-bit and independent of how other devices' transfers interleave.
//
// Fault scripting covers the three churn events of the paper's Sec. VI
// dynamic-collaboration scenario: transient outages (the device reconnects
// when the window ends), permanent death (every later attempt fails and the
// round protocol drops the device from the roster), and mid-collaboration
// joins (a fresh channel is registered when the new device first uploads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace helios::net {

struct ChannelConfig {
  /// Wire bandwidth, MB/s. 0 = use the device's ResourceProfile B_n.
  double bandwidth_mbps = 0.0;
  /// Fixed per-attempt propagation delay, virtual seconds.
  double latency_s = 0.0;
  /// Uniform extra delay in [0, jitter_s) drawn per attempt.
  double jitter_s = 0.0;
  /// Probability an attempt's frame is lost in transit.
  double loss_prob = 0.0;
};

class SimulatedChannel {
 public:
  /// `fallback_bandwidth_mbps` is used when the config leaves bandwidth 0
  /// (the device profile's B_n). The channel owns its Rng.
  SimulatedChannel(ChannelConfig config, double fallback_bandwidth_mbps,
                   util::Rng rng);

  // -- Fault scripting ------------------------------------------------------

  /// Transient outage: attempts starting in [start_s, end_s) are blocked and
  /// resume when the window ends.
  void add_outage(double start_s, double end_s);
  /// Permanent death at `at_s`: attempts at or after it fail terminally, and
  /// a frame in flight across `at_s` is cut off mid-transfer.
  void set_death(double at_s);

  bool dead_at(double t) const { return death_s_ >= 0.0 && t >= death_s_; }
  /// End of the outage window covering `t`, or a negative value if none.
  double outage_end(double t) const;

  // -- Transfers ------------------------------------------------------------

  struct Attempt {
    enum class Outcome {
      kDelivered,  // frame arrived at finish_s
      kLost,       // frame dropped; sender learns at finish_s (ack timeout)
      kBlocked,    // outage window; sender can retry at finish_s
      kDead,       // device is gone; finish_s = when the sender finds out
    };
    Outcome outcome = Outcome::kDelivered;
    double finish_s = 0.0;
    /// Bytes that actually transited the wire (lost frames count; blocked
    /// and dead-before-start attempts do not).
    std::size_t bytes = 0;
  };

  /// One send attempt of `bytes` starting at `start_s`. Draws from the
  /// channel Rng only when jitter or loss are configured, so an ideal
  /// channel consumes no randomness.
  Attempt try_send(std::size_t bytes, double start_s);

  /// Deterministic transfer duration without jitter: latency + B/bandwidth.
  double transfer_seconds(std::size_t bytes) const;

  double bandwidth_mbps() const { return bandwidth_mbps_; }
  const ChannelConfig& config() const { return config_; }
  void set_config(ChannelConfig config);

  // -- Checkpoint hooks -----------------------------------------------------
  // Mutable state beyond the config: the Rng position (advanced by
  // jitter/loss draws), the scripted death time, and the outage windows.
  // The fl checkpoint layer snapshots and restores these so a resumed run's
  // channels replay the identical fault/jitter sequence.
  util::RngState rng_state() const { return rng_.state(); }
  void set_rng_state(const util::RngState& s) { rng_ = util::Rng::from_state(s); }
  double death_s() const { return death_s_; }
  const std::vector<std::pair<double, double>>& outages() const {
    return outages_;
  }
  void set_outages(std::vector<std::pair<double, double>> outages) {
    outages_ = std::move(outages);
  }

 private:
  ChannelConfig config_;
  double bandwidth_mbps_ = 0.0;
  double death_s_ = -1.0;
  std::vector<std::pair<double, double>> outages_;  // [start, end)
  util::Rng rng_;
};

}  // namespace helios::net
