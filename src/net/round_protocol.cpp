#include "net/round_protocol.h"

#include <algorithm>
#include <stdexcept>

namespace helios::net {

RoundProtocol::RoundProtocol(NetworkOptions options)
    : options_(options), seed_rng_(options.seed) {
  if (options.max_retries < 0) {
    throw std::invalid_argument("RoundProtocol: negative max_retries");
  }
  if (options.retry_backoff_s < 0.0) {
    throw std::invalid_argument("RoundProtocol: negative retry backoff");
  }
  if (options.deadline_s < 0.0 || options.deadline_factor < 0.0) {
    throw std::invalid_argument("RoundProtocol: negative deadline");
  }
}

void RoundProtocol::add_device(int id, double profile_bandwidth_mbps) {
  if (channels_.count(id)) return;
  ChannelConfig cfg = options_.channel;
  auto it = overrides_.find(id);
  if (it != overrides_.end()) cfg = it->second;
  // Fork by id (not registration order) so the stream a device sees is
  // stable under churn — a joiner does not perturb existing devices.
  channels_.emplace(
      id, SimulatedChannel(cfg, profile_bandwidth_mbps,
                           seed_rng_.fork(static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(id)))));
}

SimulatedChannel& RoundProtocol::channel(int id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) {
    throw std::invalid_argument("RoundProtocol: unknown device");
  }
  return it->second;
}

std::vector<int> RoundProtocol::device_ids() const {
  std::vector<int> ids;
  ids.reserve(channels_.size());
  for (const auto& [id, chan] : channels_) ids.push_back(id);
  return ids;
}

void RoundProtocol::configure_device(int id, ChannelConfig config) {
  overrides_[id] = config;
  auto it = channels_.find(id);
  if (it != channels_.end()) it->second.set_config(config);
}

void RoundProtocol::script_outage(int id, double start_s, double end_s) {
  channel(id).add_outage(start_s, end_s);
}

void RoundProtocol::script_death(int id, double at_s) {
  channel(id).set_death(at_s);
}

RoundProtocol::Delivery RoundProtocol::send_with_retries(
    int device_id, std::size_t frame_bytes, double ready_at,
    double deadline_abs_s) {
  SimulatedChannel& chan = channel(device_id);
  Delivery d;
  d.device_id = device_id;
  d.settle_s = ready_at;
  double t = ready_at;
  bool done = false;
  while (!done) {
    const SimulatedChannel::Attempt a = chan.try_send(frame_bytes, t);
    ++d.attempts;
    if (a.bytes > 0) ++d.transmissions;
    d.bytes_on_wire += a.bytes;
    d.settle_s = a.finish_s;
    switch (a.outcome) {
      case SimulatedChannel::Attempt::Outcome::kDelivered:
        d.delivered = true;
        done = true;
        break;
      case SimulatedChannel::Attempt::Outcome::kDead:
        d.died = true;
        done = true;
        break;
      case SimulatedChannel::Attempt::Outcome::kBlocked:
        // Outage: wait it out; does not consume the retry budget (nothing
        // was transmitted). Windows are finite, so this terminates.
        t = a.finish_s;
        break;
      case SimulatedChannel::Attempt::Outcome::kLost: {
        ++d.lost_frames;
        if (d.transmissions > options_.max_retries) {
          done = true;  // retry budget exhausted; the frame is gone
          break;
        }
        // Ack timeout already elapsed at finish_s; back off before the
        // retransmit, doubling per retry.
        double backoff = options_.retry_backoff_s;
        for (int k = 1; k < d.transmissions; ++k) backoff *= 2.0;
        t = a.finish_s + backoff;
        break;
      }
    }
  }
  d.retransmits = std::max(0, d.transmissions - 1);
  d.comm_seconds = d.settle_s - ready_at;
  if (d.delivered && deadline_abs_s > 0.0 && d.settle_s > deadline_abs_s) {
    d.deadline_missed = true;
  }
  return d;
}

RoundProtocol::RoundOutcome RoundProtocol::run_round(
    std::span<const Send> sends, double round_start_s,
    double analytic_hint_s) {
  double deadline_abs = 0.0;
  if (options_.deadline_s > 0.0) {
    deadline_abs = round_start_s + options_.deadline_s;
  } else if (options_.deadline_factor > 0.0 && analytic_hint_s > 0.0) {
    deadline_abs = round_start_s + options_.deadline_factor * analytic_hint_s;
  }

  RoundOutcome out;
  out.deliveries.reserve(sends.size());
  out.round_close_s = round_start_s;
  for (const Send& s : sends) {
    Delivery d =
        send_with_retries(s.device_id, s.frame_bytes, s.ready_at, deadline_abs);
    out.bytes_on_wire += d.bytes_on_wire;
    out.frames_sent += d.transmissions;
    out.lost_frames += d.lost_frames;
    out.retransmits += d.retransmits;
    out.deaths += d.died ? 1 : 0;
    if (d.delivered && !d.deadline_missed) {
      ++out.delivered;
      out.round_close_s = std::max(out.round_close_s, d.settle_s);
    } else if (deadline_abs > 0.0) {
      // A late, lost or dead participant makes the server wait until the
      // deadline, then close the round without the frame. Deaths are
      // reported separately, not as deadline misses.
      if (!d.died) ++out.deadline_misses;
      out.round_close_s = std::max(out.round_close_s, deadline_abs);
    } else {
      // No deadline: the simulation closes the round when the transfer
      // provably settles (bounded retries / death), so nothing deadlocks.
      out.round_close_s = std::max(out.round_close_s, d.settle_s);
    }
    out.deliveries.push_back(std::move(d));
  }
  return out;
}

}  // namespace helios::net
