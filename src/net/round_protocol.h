// Server-side round protocol over simulated channels: bounded
// retransmit-with-backoff for lost frames, per-round deadlines, and
// graceful degradation (a round aggregates whatever arrived in time; a
// device that dies is reported so the roster can drop it).
//
// The protocol is deliberately fl-agnostic: it moves opaque frames of known
// byte sizes for numbered devices. The fl::NetworkSession glue encodes
// ClientUpdates into frames, feeds them through run_round, and decodes the
// arrivals — keeping this layer free of any model or strategy dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "codec/codec.h"
#include "net/channel.h"

namespace helios::net {

enum class NetMode {
  /// Frames are encoded/decoded and counted, but delivery is perfect and
  /// timing stays on the analytic M/B_n path — RunResults are bit-identical
  /// to a run with no network attached.
  kIdeal,
  /// Delivery, timing, loss, faults and deadlines come from the channels;
  /// upload_seconds is driven by serialized frame bytes.
  kSimulated,
};

struct NetworkOptions {
  NetMode mode = NetMode::kIdeal;
  /// Channel defaults applied to every device (bandwidth 0 = the device
  /// profile's B_n). Override per device via RoundProtocol::configure_device.
  ChannelConfig channel;
  /// Retransmit attempts after the first send of a frame.
  int max_retries = 3;
  /// Extra wait before retry k (0-based): retry_backoff_s * 2^k.
  double retry_backoff_s = 0.02;
  /// Absolute per-round deadline, virtual seconds from round start
  /// (0 = none).
  double deadline_s = 0.0;
  /// When deadline_s is 0 and this is > 0: deadline = factor * the round's
  /// slowest analytic (train + upload) estimate. Values > 1 leave headroom
  /// for retries; frames settling later are excluded from aggregation.
  double deadline_factor = 0.0;
  /// Seeds the per-device channel Rngs (forked by device id).
  std::uint64_t seed = 0x5EEDU;
  /// Wire codec for upload payload values. kFp32 (default) keeps every
  /// frame byte-identical to version-1; a quantized codec (or kAuto)
  /// ships version-2 frames. See src/codec.
  codec::CodecId payload_codec = codec::CodecId::kFp32;
  /// With a quantized payload_codec: carry each client's quantization
  /// residual across rounds and add it back into the next upload (error
  /// feedback). No effect under kFp32.
  bool error_feedback = true;
};

class RoundProtocol {
 public:
  explicit RoundProtocol(NetworkOptions options);

  const NetworkOptions& options() const { return options_; }

  // -- Roster ---------------------------------------------------------------

  /// Registers device `id` with a channel built from the options' default
  /// config (plus any configure_device override), falling back to
  /// `profile_bandwidth_mbps` for bandwidth. Idempotent.
  void add_device(int id, double profile_bandwidth_mbps);
  bool has_device(int id) const { return channels_.count(id) != 0; }
  SimulatedChannel& channel(int id);

  /// Per-device channel override; applies to the existing channel and to a
  /// future add_device registration.
  void configure_device(int id, ChannelConfig config);

  /// Fault scripting shortcuts (device must be registered).
  void script_outage(int id, double start_s, double end_s);
  void script_death(int id, double at_s);

  /// Registered device ids in ascending order (checkpointing: the roster of
  /// channels, including devices that joined mid-run). seed_rng_ itself
  /// never advances — add_device forks it purely by id — so re-registering
  /// the same ids after a resume rebuilds identical base channels before
  /// their snapshotted rng/fault state is overlaid.
  std::vector<int> device_ids() const;
  /// Per-device config overrides (restored before channels are rebuilt).
  const std::map<int, ChannelConfig>& overrides() const { return overrides_; }

  // -- Transfers ------------------------------------------------------------

  struct Send {
    int device_id = -1;
    std::size_t frame_bytes = 0;
    /// Absolute virtual time the device finishes training and starts
    /// uploading.
    double ready_at = 0.0;
  };

  struct Delivery {
    int device_id = -1;
    bool delivered = false;
    bool died = false;
    /// Delivered, but after the round deadline — the server does not count
    /// the frame.
    bool deadline_missed = false;
    int attempts = 0;
    /// Attempts that actually put the frame on the wire (lost ones count;
    /// outage-blocked and dead-before-start ones do not).
    int transmissions = 0;
    /// transmissions beyond the first — the retransmit count.
    int retransmits = 0;
    int lost_frames = 0;
    /// Bytes that transited the wire across all attempts.
    std::size_t bytes_on_wire = 0;
    /// Absolute time the transfer settled (delivery, final failure, death).
    double settle_s = 0.0;
    /// settle_s - ready_at: the device's actual communication time.
    double comm_seconds = 0.0;
  };

  /// One frame with retries. `deadline_abs_s` <= 0 disables the deadline
  /// check (the sender itself never gives up early — the deadline is a
  /// server-side accounting rule).
  Delivery send_with_retries(int device_id, std::size_t frame_bytes,
                             double ready_at, double deadline_abs_s);

  struct RoundOutcome {
    /// Aligned with the input sends.
    std::vector<Delivery> deliveries;
    /// Absolute virtual time the server closes the round: the last accepted
    /// arrival, or the deadline when any participant missed it, or the last
    /// settle time when there is no deadline (no deadlock: retries are
    /// bounded and outage windows are finite).
    double round_close_s = 0.0;
    std::size_t bytes_on_wire = 0;
    int frames_sent = 0;  // attempts that put bytes on the wire
    int lost_frames = 0;
    int retransmits = 0;
    int deadline_misses = 0;
    int deaths = 0;
    int delivered = 0;  // accepted by the server (in time)
  };

  /// Runs one synchronous round. `analytic_hint_s` is the slowest analytic
  /// (train + upload) estimate, used when options().deadline_factor scales
  /// the deadline.
  RoundOutcome run_round(std::span<const Send> sends, double round_start_s,
                         double analytic_hint_s);

 private:
  NetworkOptions options_;
  util::Rng seed_rng_;
  std::map<int, SimulatedChannel> channels_;
  std::map<int, ChannelConfig> overrides_;
};

}  // namespace helios::net
