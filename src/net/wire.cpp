#include "net/wire.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>

namespace helios::net {
namespace {

// ---- CRC32 (IEEE 802.3, reflected) ----------------------------------------

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// ---- Little-endian byte IO -------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw WireError("wire: truncated frame");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// True when flat index `f` ships in a dense frame under `mask`.
inline bool shipped(const WireLayout& layout,
                    std::span<const std::uint8_t> mask, std::size_t f) {
  const std::uint32_t n = layout.neuron_of[f];
  return mask.empty() || n == WireLayout::kCommonParam || mask[n] != 0;
}

void write_header(Writer& w, std::uint16_t version, std::uint16_t flags,
                  std::int32_t client_id, std::uint32_t neuron_total,
                  std::uint64_t param_count, std::uint64_t buffer_count,
                  std::uint64_t payload_count, std::uint64_t sample_count,
                  double mean_loss) {
  w.u32(kWireMagic);
  w.u16(version);
  w.u16(flags);
  w.u32(std::bit_cast<std::uint32_t>(client_id));
  w.u32(neuron_total);
  w.u64(param_count);
  w.u64(buffer_count);
  w.u64(payload_count);
  w.u64(sample_count);
  w.f64(mean_loss);
}

void append_packed_mask(std::vector<std::uint8_t>& out,
                        std::span<const std::uint8_t> mask) {
  const std::size_t bytes = mask_wire_bytes(static_cast<int>(mask.size()));
  for (std::size_t b = 0; b < bytes; ++b) {
    std::uint8_t packed = 0;
    for (std::size_t bit = 0; bit < 8; ++bit) {
      const std::size_t i = b * 8 + bit;
      if (i < mask.size() && mask[i] != 0) {
        packed |= static_cast<std::uint8_t>(1U << bit);
      }
    }
    out.push_back(packed);
  }
}

void check_message(const WireMessage& msg, const WireLayout& layout) {
  if (msg.params.size() != layout.param_count) {
    throw WireError("wire: message param count does not match layout");
  }
  if (msg.buffers.size() != layout.buffer_count) {
    throw WireError("wire: message buffer count does not match layout");
  }
  if (!msg.neuron_mask.empty() &&
      msg.neuron_mask.size() != static_cast<std::size_t>(layout.neuron_total)) {
    throw WireError("wire: message mask size does not match layout");
  }
}

// ---- v2 quantized payloads -------------------------------------------------

/// Sorted unique scale-group keys; a key's dense group id is its index
/// here. Keys are owning-neuron ids with WireLayout::kCommonParam (the max
/// u32) for common parameters, so ascending order puts the common group
/// last — deterministically on both sides.
std::vector<std::uint32_t> unique_keys(std::vector<std::uint32_t> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Group tagging of a shipped-index list for `info`'s scale layout: one
/// group per distinct key (per-neuron codecs) or a single group 0.
struct GroupTags {
  std::vector<std::uint32_t> keys;    // per dense group id
  std::vector<std::uint32_t> groups;  // per value
};

GroupTags derive_groups(const WireLayout& layout,
                        std::span<const std::uint32_t> ship,
                        const codec::CodecInfo& info) {
  GroupTags t;
  if (!info.scaled) return t;
  if (!info.per_neuron_groups) {
    if (!ship.empty()) t.keys.assign(1, 0U);
    t.groups.assign(ship.size(), 0U);
    return t;
  }
  std::vector<std::uint32_t> raw;
  raw.reserve(ship.size());
  for (std::uint32_t f : ship) raw.push_back(layout.neuron_of[f]);
  t.keys = unique_keys(raw);
  t.groups.reserve(raw.size());
  for (std::uint32_t k : raw) {
    t.groups.push_back(static_cast<std::uint32_t>(
        std::lower_bound(t.keys.begin(), t.keys.end(), k) - t.keys.begin()));
  }
  return t;
}

/// The value stream a quantized frame carries: every shipped flat index in
/// ascending order with its delta (or absolute value, without a base).
struct QuantStream {
  std::vector<std::uint32_t> ship;
  std::vector<float> values;
  GroupTags tags;
  bool delta = false;
};

QuantStream build_quant_stream(const WireMessage& msg,
                               std::span<const float> base,
                               const WireLayout& layout,
                               const codec::CodecInfo& info) {
  QuantStream s;
  s.delta = base.size() == layout.param_count;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    if (!shipped(layout, msg.neuron_mask, f)) continue;
    s.ship.push_back(static_cast<std::uint32_t>(f));
    s.values.push_back(s.delta ? msg.params[f] - base[f] : msg.params[f]);
  }
  s.tags = derive_groups(layout, s.ship, info);
  return s;
}

std::size_t quant_frame_overhead(const WireLayout& layout, bool has_mask,
                                 std::size_t scale_count) {
  return kHeaderBytesV2 + mask_wire_bytes(has_mask ? layout.neuron_total : 0) +
         2 * scale_count + layout.buffer_count * sizeof(float) + kTrailerBytes;
}

std::vector<std::uint8_t> encode_frame_quant(const WireMessage& msg,
                                             std::span<const float> base,
                                             const WireLayout& layout,
                                             codec::CodecId id,
                                             CodecResult* result) {
  const codec::CodecInfo& info = codec::codec_info(id);
  const QuantStream s = build_quant_stream(msg, base, layout, info);
  const codec::QuantPlan plan = codec::plan_quantization(
      id, s.values, s.tags.groups, s.tags.keys.size());
  const std::vector<float> dq =
      codec::dequantized_values(plan, s.values, s.tags.groups);

  const bool has_mask = !msg.neuron_mask.empty();
  const std::size_t dense_payload =
      codec::payload_bytes(plan, s.values, s.tags.groups);
  const std::size_t dense_total =
      quant_frame_overhead(layout, has_mask, plan.scale_bits.size()) +
      dense_payload;

  // Sparse candidate (needs the base): only entries whose quantized value
  // is non-zero ship; dropped entries decode to the base exactly like the
  // dense frame's zero deltas, so both encodings reconstruct identically.
  // The scales stay the full stream's — they are what quantized the values.
  std::vector<std::uint32_t> kept_ship;
  std::vector<float> kept_values;
  codec::QuantPlan kept_plan;
  GroupTags kept_tags;
  std::size_t sparse_total = std::numeric_limits<std::size_t>::max();
  if (s.delta) {
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < dq.size(); ++i) {
      if (dq[i] != 0.0f) kept.push_back(i);
    }
    kept_ship.reserve(kept.size());
    kept_values.reserve(kept.size());
    for (std::size_t i : kept) {
      kept_ship.push_back(s.ship[i]);
      kept_values.push_back(s.values[i]);
    }
    kept_tags = derive_groups(layout, kept_ship, info);
    kept_plan.id = id;
    if (info.scaled) {
      kept_plan.scale_bits.reserve(kept_tags.keys.size());
      for (std::uint32_t k : kept_tags.keys) {
        const auto at = static_cast<std::size_t>(
            std::lower_bound(s.tags.keys.begin(), s.tags.keys.end(), k) -
            s.tags.keys.begin());
        kept_plan.scale_bits.push_back(plan.scale_bits[at]);
      }
    }
    const std::size_t sparse_payload =
        codec::payload_bytes(kept_plan, kept_values, kept_tags.groups);
    sparse_total =
        quant_frame_overhead(layout, has_mask, kept_plan.scale_bits.size()) +
        kept_ship.size() * sizeof(std::uint32_t) + sparse_payload;
  }

  const bool use_sparse = sparse_total < dense_total;
  std::vector<std::uint8_t> out;
  out.reserve(use_sparse ? sparse_total : dense_total);
  Writer w(out);
  std::uint16_t flags = has_mask ? kFlagHasMask : 0;
  if (s.delta) flags |= kFlagDelta;
  if (use_sparse) flags |= kFlagSparse;
  const std::span<const float> values =
      use_sparse ? std::span<const float>(kept_values)
                 : std::span<const float>(s.values);
  const GroupTags& tags = use_sparse ? kept_tags : s.tags;
  const codec::QuantPlan& wire_plan = use_sparse ? kept_plan : plan;
  write_header(w, kWireVersionQuant, flags, msg.client_id,
               has_mask ? static_cast<std::uint32_t>(layout.neuron_total) : 0,
               layout.param_count, layout.buffer_count, values.size(),
               msg.sample_count, msg.mean_loss);
  w.u32(static_cast<std::uint32_t>(id));
  w.u32(static_cast<std::uint32_t>(
      codec::payload_bytes(wire_plan, values, tags.groups)));
  if (has_mask) append_packed_mask(out, msg.neuron_mask);
  if (use_sparse) {
    for (std::uint32_t f : kept_ship) w.u32(f);
  }
  for (std::uint16_t bits : wire_plan.scale_bits) w.u16(bits);
  codec::encode_values(wire_plan, values, tags.groups, out);
  for (float v : msg.buffers) w.f32(v);
  w.u32(crc32(out));

  if (result != nullptr) {
    result->codec = id;
    result->sparse = use_sparse;
    if (s.delta) {
      result->dequantized.assign(base.begin(), base.end());
    } else {
      // Without a base the encoder cannot know what the decoder fills
      // unshipped entries with; shipped entries are still exact.
      result->dequantized.assign(layout.param_count, 0.0f);
    }
    for (std::size_t i = 0; i < s.ship.size(); ++i) {
      const std::uint32_t f = s.ship[i];
      result->dequantized[f] =
          s.delta ? base[f] + dq[i] : dq[i];
    }
  }
  return out;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

WireLayout make_wire_layout(nn::Model& model) {
  WireLayout layout;
  layout.param_count = model.param_count();
  layout.buffer_count = model.buffer_count();
  layout.neuron_total = model.neuron_total();
  layout.neuron_of.assign(layout.param_count, WireLayout::kCommonParam);
  const auto& neurons = model.neurons();
  for (std::size_t j = 0; j < neurons.size(); ++j) {
    for (const nn::FlatSlice& s : neurons[j].slices) {
      std::fill_n(layout.neuron_of.begin() +
                      static_cast<std::ptrdiff_t>(s.offset),
                  s.length, static_cast<std::uint32_t>(j));
    }
  }
  return layout;
}

std::size_t mask_wire_bytes(int neuron_total) {
  return neuron_total <= 0
             ? 0
             : (static_cast<std::size_t>(neuron_total) + 7) / 8;
}

std::size_t dense_payload_count(const WireLayout& layout,
                                std::span<const std::uint8_t> mask) {
  if (mask.empty()) return layout.param_count;
  std::size_t count = 0;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    count += shipped(layout, mask, f);
  }
  return count;
}

std::size_t dense_frame_bytes(const WireLayout& layout,
                              std::span<const std::uint8_t> mask) {
  return kHeaderBytes +
         mask_wire_bytes(static_cast<int>(mask.size())) +
         dense_payload_count(layout, mask) * sizeof(float) +
         layout.buffer_count * sizeof(float) + kTrailerBytes;
}

std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total) {
  return kHeaderBytes + mask_wire_bytes(masked_neuron_total) +
         entries * (sizeof(std::uint32_t) + sizeof(float)) +
         buffer_count * sizeof(float) + kTrailerBytes;
}

std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total, codec::CodecId codec,
                               std::size_t scale_count) {
  if (codec == codec::CodecId::kFp32) {
    return sparse_frame_bytes(entries, buffer_count, masked_neuron_total);
  }
  const codec::CodecInfo& info = codec::codec_info(codec);
  // Zero-run coding never expands, so the unpacked width is the sparse
  // payload's exact size (sparse entries are non-zero by construction).
  const std::size_t payload = (entries * info.value_bits + 7) / 8;
  return kHeaderBytesV2 + mask_wire_bytes(masked_neuron_total) +
         entries * sizeof(std::uint32_t) +
         (info.scaled ? 2 * scale_count : 0) + payload +
         buffer_count * sizeof(float) + kTrailerBytes;
}

std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout) {
  check_message(msg, layout);
  std::vector<std::uint8_t> out;
  out.reserve(dense_frame_bytes(layout, msg.neuron_mask));
  Writer w(out);
  const bool has_mask = !msg.neuron_mask.empty();
  const std::size_t payload = dense_payload_count(layout, msg.neuron_mask);
  write_header(w, kWireVersion, has_mask ? kFlagHasMask : 0, msg.client_id,
               has_mask ? static_cast<std::uint32_t>(layout.neuron_total) : 0,
               layout.param_count, layout.buffer_count, payload,
               msg.sample_count, msg.mean_loss);
  if (has_mask) append_packed_mask(out, msg.neuron_mask);
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    if (shipped(layout, msg.neuron_mask, f)) w.f32(msg.params[f]);
  }
  for (float v : msg.buffers) w.f32(v);
  w.u32(crc32(out));
  return out;
}

std::vector<std::uint8_t> encode_frame_sparse(const WireMessage& msg,
                                              std::span<const float> base,
                                              const WireLayout& layout) {
  check_message(msg, layout);
  if (base.size() != layout.param_count) {
    throw WireError("wire: sparse base does not match layout");
  }
  std::vector<std::uint32_t> changed;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    if (msg.params[f] != base[f]) {
      changed.push_back(static_cast<std::uint32_t>(f));
    }
  }
  std::vector<std::uint8_t> out;
  const bool has_mask = !msg.neuron_mask.empty();
  out.reserve(sparse_frame_bytes(changed.size(), layout.buffer_count,
                                 has_mask ? layout.neuron_total : 0));
  Writer w(out);
  write_header(w, kWireVersion,
               static_cast<std::uint16_t>(
                   kFlagSparse | (has_mask ? kFlagHasMask : 0)),
               msg.client_id,
               has_mask ? static_cast<std::uint32_t>(layout.neuron_total) : 0,
               layout.param_count, layout.buffer_count, changed.size(),
               msg.sample_count, msg.mean_loss);
  if (has_mask) append_packed_mask(out, msg.neuron_mask);
  for (std::uint32_t f : changed) {
    w.u32(f);
    w.f32(msg.params[f]);
  }
  for (float v : msg.buffers) w.f32(v);
  w.u32(crc32(out));
  return out;
}

std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout) {
  check_message(msg, layout);
  if (base.size() != layout.param_count) return encode_frame(msg, layout);
  std::size_t changed = 0;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    changed += (msg.params[f] != base[f]);
  }
  const std::size_t sparse = sparse_frame_bytes(
      changed, layout.buffer_count,
      msg.neuron_mask.empty() ? 0 : layout.neuron_total);
  const std::size_t dense = dense_frame_bytes(layout, msg.neuron_mask);
  return sparse < dense ? encode_frame_sparse(msg, base, layout)
                        : encode_frame(msg, layout);
}

namespace {

void fill_fp32_result(CodecResult* result,
                      std::span<const std::uint8_t> frame) {
  if (result == nullptr) return;
  result->codec = codec::CodecId::kFp32;
  result->sparse = frame.size() > 6 && (frame[6] & kFlagSparse) != 0;
  result->dequantized.clear();
}

constexpr codec::CodecId kQuantCandidates[] = {
    codec::CodecId::kFp16,
    codec::CodecId::kInt8PerTensor,
    codec::CodecId::kInt8PerNeuron,
};

}  // namespace

std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout,
                                       codec::CodecId codec,
                                       CodecResult* result) {
  check_message(msg, layout);
  if (codec == codec::CodecId::kFp32) {
    std::vector<std::uint8_t> out = encode_frame(msg, layout);
    fill_fp32_result(result, out);
    return out;
  }
  if (codec == codec::CodecId::kAuto) {
    std::vector<std::uint8_t> best = encode_frame(msg, layout);
    CodecResult best_result;
    fill_fp32_result(&best_result, best);
    for (codec::CodecId id : kQuantCandidates) {
      CodecResult cand_result;
      std::vector<std::uint8_t> cand =
          encode_frame_quant(msg, {}, layout, id, &cand_result);
      if (cand.size() < best.size()) {
        best = std::move(cand);
        best_result = std::move(cand_result);
      }
    }
    if (result != nullptr) *result = std::move(best_result);
    return best;
  }
  return encode_frame_quant(msg, {}, layout, codec, result);
}

std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout,
                                            codec::CodecId codec,
                                            CodecResult* result) {
  check_message(msg, layout);
  if (codec == codec::CodecId::kFp32) {
    std::vector<std::uint8_t> out = encode_frame_auto(msg, base, layout);
    fill_fp32_result(result, out);
    return out;
  }
  if (base.size() != layout.param_count) {
    return encode_frame(msg, layout, codec, result);
  }
  if (codec == codec::CodecId::kAuto) {
    std::vector<std::uint8_t> best = encode_frame_auto(msg, base, layout);
    CodecResult best_result;
    fill_fp32_result(&best_result, best);
    for (codec::CodecId id : kQuantCandidates) {
      CodecResult cand_result;
      std::vector<std::uint8_t> cand =
          encode_frame_quant(msg, base, layout, id, &cand_result);
      if (cand.size() < best.size()) {
        best = std::move(cand);
        best_result = std::move(cand_result);
      }
    }
    if (result != nullptr) *result = std::move(best_result);
    return best;
  }
  return encode_frame_quant(msg, base, layout, codec, result);
}

DecodedMessage decode_frame(std::span<const std::uint8_t> frame,
                            const WireLayout& layout,
                            std::span<const float> base_params) {
  if (frame.size() < kHeaderBytes + kTrailerBytes) {
    throw WireError("wire: frame shorter than header + trailer");
  }
  // Integrity first: a flipped bit anywhere (header included) must be
  // rejected before any field is trusted.
  Reader crc_reader(frame.subspan(frame.size() - kTrailerBytes));
  const std::uint32_t stored_crc = crc_reader.u32();
  if (crc32(frame.first(frame.size() - kTrailerBytes)) != stored_crc) {
    throw WireError("wire: CRC mismatch");
  }

  Reader r(frame);
  if (r.u32() != kWireMagic) throw WireError("wire: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion && version != kWireVersionQuant) {
    throw WireError("wire: unsupported version " + std::to_string(version));
  }
  const std::uint16_t flags = r.u16();
  DecodedMessage msg;
  msg.client_id = std::bit_cast<std::int32_t>(r.u32());
  const std::uint32_t neuron_total = r.u32();
  const std::uint64_t param_count = r.u64();
  const std::uint64_t buffer_count = r.u64();
  const std::uint64_t payload_count = r.u64();
  msg.sample_count = r.u64();
  msg.mean_loss = r.f64();
  msg.sparse = (flags & kFlagSparse) != 0;
  const bool has_mask = (flags & kFlagHasMask) != 0;
  const bool delta = (flags & kFlagDelta) != 0;

  codec::CodecId payload_codec = codec::CodecId::kFp32;
  std::size_t packed_bytes = 0;
  if (version == kWireVersionQuant) {
    const std::uint32_t codec_raw = r.u32();
    packed_bytes = r.u32();
    if (!codec::codec_known(codec_raw)) {
      throw WireError("wire: unknown payload codec " +
                      std::to_string(codec_raw));
    }
    payload_codec = static_cast<codec::CodecId>(codec_raw);
    if (payload_codec == codec::CodecId::kFp32) {
      // fp32 payloads canonically ship as version-1 frames.
      throw WireError("wire: v2 frame with fp32 codec");
    }
  } else if (delta) {
    throw WireError("wire: v1 frame with delta flag");
  }

  if (param_count != layout.param_count ||
      buffer_count != layout.buffer_count) {
    throw WireError("wire: frame built for a different architecture");
  }
  if (has_mask &&
      neuron_total != static_cast<std::uint32_t>(layout.neuron_total)) {
    throw WireError("wire: frame mask sized for a different architecture");
  }
  if (!has_mask && neuron_total != 0) {
    throw WireError("wire: stray neuron_total without mask flag");
  }

  if (has_mask) {
    const std::span<const std::uint8_t> packed =
        r.raw(mask_wire_bytes(static_cast<int>(neuron_total)));
    msg.neuron_mask.resize(neuron_total);
    for (std::size_t i = 0; i < msg.neuron_mask.size(); ++i) {
      msg.neuron_mask[i] = (packed[i / 8] >> (i % 8)) & 1U;
    }
  }

  const bool needs_base =
      msg.sparse || delta ||
      (has_mask && dense_payload_count(layout, msg.neuron_mask) <
                       layout.param_count);
  if (needs_base && base_params.size() != layout.param_count) {
    throw WireError("wire: partial frame requires the base snapshot");
  }

  if (version == kWireVersionQuant) {
    // Quantized payload: gather the shipped flat indices, re-derive the
    // scale groups exactly as the encoder did, then unpack.
    std::vector<std::uint32_t> ship;
    if (msg.sparse) {
      if (!delta) {
        throw WireError("wire: sparse quantized frame without delta flag");
      }
      ship.reserve(payload_count);
      for (std::uint64_t i = 0; i < payload_count; ++i) {
        const std::uint32_t f = r.u32();
        if (f >= layout.param_count) {
          throw WireError("wire: sparse index out of range");
        }
        if (!ship.empty() && f <= ship.back()) {
          throw WireError("wire: sparse indices not strictly ascending");
        }
        if (!shipped(layout, msg.neuron_mask, f)) {
          throw WireError("wire: sparse index outside the shipped mask");
        }
        ship.push_back(f);
      }
    } else {
      if (payload_count != dense_payload_count(layout, msg.neuron_mask)) {
        throw WireError("wire: dense payload count does not match mask");
      }
      ship.reserve(payload_count);
      for (std::size_t f = 0; f < layout.param_count; ++f) {
        if (shipped(layout, msg.neuron_mask, f)) {
          ship.push_back(static_cast<std::uint32_t>(f));
        }
      }
    }

    const codec::CodecInfo& info = codec::codec_info(payload_codec);
    const GroupTags tags = derive_groups(layout, ship, info);
    codec::QuantPlan plan;
    plan.id = payload_codec;
    plan.scale_bits.reserve(tags.keys.size());
    for (std::size_t g = 0; g < tags.keys.size(); ++g) {
      plan.scale_bits.push_back(r.u16());
    }
    const std::span<const std::uint8_t> payload = r.raw(packed_bytes);
    std::vector<float> values;
    try {
      values = codec::decode_values(plan, payload, tags.groups, ship.size());
    } catch (const codec::CodecError& e) {
      throw WireError(std::string("wire: ") + e.what());
    }

    if (delta || has_mask || msg.sparse) {
      msg.params.assign(base_params.begin(), base_params.end());
    } else {
      msg.params.assign(layout.param_count, 0.0f);
    }
    for (std::size_t i = 0; i < ship.size(); ++i) {
      const std::uint32_t f = ship[i];
      msg.params[f] = delta ? base_params[f] + values[i] : values[i];
    }
  } else if (msg.sparse) {
    msg.params.assign(base_params.begin(), base_params.end());
    for (std::uint64_t i = 0; i < payload_count; ++i) {
      const std::uint32_t f = r.u32();
      const float v = r.f32();
      if (f >= layout.param_count) {
        throw WireError("wire: sparse index out of range");
      }
      msg.params[f] = v;
    }
  } else {
    if (payload_count != dense_payload_count(layout, msg.neuron_mask)) {
      throw WireError("wire: dense payload count does not match mask");
    }
    if (has_mask) {
      msg.params.assign(base_params.begin(), base_params.end());
    } else {
      msg.params.resize(layout.param_count);
    }
    for (std::size_t f = 0; f < layout.param_count; ++f) {
      if (shipped(layout, msg.neuron_mask, f)) msg.params[f] = r.f32();
    }
  }

  msg.buffers.resize(layout.buffer_count);
  for (std::size_t i = 0; i < layout.buffer_count; ++i) {
    msg.buffers[i] = r.f32();
  }
  if (r.pos() != frame.size() - kTrailerBytes) {
    throw WireError("wire: frame length does not match payload counts");
  }
  return msg;
}

}  // namespace helios::net
