#include "net/wire.h"

#include <array>
#include <bit>
#include <cstring>

namespace helios::net {
namespace {

// ---- CRC32 (IEEE 802.3, reflected) ----------------------------------------

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// ---- Little-endian byte IO -------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n);
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw WireError("wire: truncated frame");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// True when flat index `f` ships in a dense frame under `mask`.
inline bool shipped(const WireLayout& layout,
                    std::span<const std::uint8_t> mask, std::size_t f) {
  const std::uint32_t n = layout.neuron_of[f];
  return mask.empty() || n == WireLayout::kCommonParam || mask[n] != 0;
}

void write_header(Writer& w, std::uint16_t flags, std::int32_t client_id,
                  std::uint32_t neuron_total, std::uint64_t param_count,
                  std::uint64_t buffer_count, std::uint64_t payload_count,
                  std::uint64_t sample_count, double mean_loss) {
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(flags);
  w.u32(std::bit_cast<std::uint32_t>(client_id));
  w.u32(neuron_total);
  w.u64(param_count);
  w.u64(buffer_count);
  w.u64(payload_count);
  w.u64(sample_count);
  w.f64(mean_loss);
}

void append_packed_mask(std::vector<std::uint8_t>& out,
                        std::span<const std::uint8_t> mask) {
  const std::size_t bytes = mask_wire_bytes(static_cast<int>(mask.size()));
  for (std::size_t b = 0; b < bytes; ++b) {
    std::uint8_t packed = 0;
    for (std::size_t bit = 0; bit < 8; ++bit) {
      const std::size_t i = b * 8 + bit;
      if (i < mask.size() && mask[i] != 0) {
        packed |= static_cast<std::uint8_t>(1U << bit);
      }
    }
    out.push_back(packed);
  }
}

void check_message(const WireMessage& msg, const WireLayout& layout) {
  if (msg.params.size() != layout.param_count) {
    throw WireError("wire: message param count does not match layout");
  }
  if (msg.buffers.size() != layout.buffer_count) {
    throw WireError("wire: message buffer count does not match layout");
  }
  if (!msg.neuron_mask.empty() &&
      msg.neuron_mask.size() != static_cast<std::size_t>(layout.neuron_total)) {
    throw WireError("wire: message mask size does not match layout");
  }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

WireLayout make_wire_layout(nn::Model& model) {
  WireLayout layout;
  layout.param_count = model.param_count();
  layout.buffer_count = model.buffer_count();
  layout.neuron_total = model.neuron_total();
  layout.neuron_of.assign(layout.param_count, WireLayout::kCommonParam);
  const auto& neurons = model.neurons();
  for (std::size_t j = 0; j < neurons.size(); ++j) {
    for (const nn::FlatSlice& s : neurons[j].slices) {
      std::fill_n(layout.neuron_of.begin() +
                      static_cast<std::ptrdiff_t>(s.offset),
                  s.length, static_cast<std::uint32_t>(j));
    }
  }
  return layout;
}

std::size_t mask_wire_bytes(int neuron_total) {
  return neuron_total <= 0
             ? 0
             : (static_cast<std::size_t>(neuron_total) + 7) / 8;
}

std::size_t dense_payload_count(const WireLayout& layout,
                                std::span<const std::uint8_t> mask) {
  if (mask.empty()) return layout.param_count;
  std::size_t count = 0;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    count += shipped(layout, mask, f);
  }
  return count;
}

std::size_t dense_frame_bytes(const WireLayout& layout,
                              std::span<const std::uint8_t> mask) {
  return kHeaderBytes +
         mask_wire_bytes(static_cast<int>(mask.size())) +
         dense_payload_count(layout, mask) * sizeof(float) +
         layout.buffer_count * sizeof(float) + kTrailerBytes;
}

std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total) {
  return kHeaderBytes + mask_wire_bytes(masked_neuron_total) +
         entries * (sizeof(std::uint32_t) + sizeof(float)) +
         buffer_count * sizeof(float) + kTrailerBytes;
}

std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout) {
  check_message(msg, layout);
  std::vector<std::uint8_t> out;
  out.reserve(dense_frame_bytes(layout, msg.neuron_mask));
  Writer w(out);
  const bool has_mask = !msg.neuron_mask.empty();
  const std::size_t payload = dense_payload_count(layout, msg.neuron_mask);
  write_header(w, has_mask ? kFlagHasMask : 0, msg.client_id,
               has_mask ? static_cast<std::uint32_t>(layout.neuron_total) : 0,
               layout.param_count, layout.buffer_count, payload,
               msg.sample_count, msg.mean_loss);
  if (has_mask) append_packed_mask(out, msg.neuron_mask);
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    if (shipped(layout, msg.neuron_mask, f)) w.f32(msg.params[f]);
  }
  for (float v : msg.buffers) w.f32(v);
  w.u32(crc32(out));
  return out;
}

std::vector<std::uint8_t> encode_frame_sparse(const WireMessage& msg,
                                              std::span<const float> base,
                                              const WireLayout& layout) {
  check_message(msg, layout);
  if (base.size() != layout.param_count) {
    throw WireError("wire: sparse base does not match layout");
  }
  std::vector<std::uint32_t> changed;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    if (msg.params[f] != base[f]) {
      changed.push_back(static_cast<std::uint32_t>(f));
    }
  }
  std::vector<std::uint8_t> out;
  const bool has_mask = !msg.neuron_mask.empty();
  out.reserve(sparse_frame_bytes(changed.size(), layout.buffer_count,
                                 has_mask ? layout.neuron_total : 0));
  Writer w(out);
  write_header(w, static_cast<std::uint16_t>(
                      kFlagSparse | (has_mask ? kFlagHasMask : 0)),
               msg.client_id,
               has_mask ? static_cast<std::uint32_t>(layout.neuron_total) : 0,
               layout.param_count, layout.buffer_count, changed.size(),
               msg.sample_count, msg.mean_loss);
  if (has_mask) append_packed_mask(out, msg.neuron_mask);
  for (std::uint32_t f : changed) {
    w.u32(f);
    w.f32(msg.params[f]);
  }
  for (float v : msg.buffers) w.f32(v);
  w.u32(crc32(out));
  return out;
}

std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout) {
  check_message(msg, layout);
  if (base.size() != layout.param_count) return encode_frame(msg, layout);
  std::size_t changed = 0;
  for (std::size_t f = 0; f < layout.param_count; ++f) {
    changed += (msg.params[f] != base[f]);
  }
  const std::size_t sparse = sparse_frame_bytes(
      changed, layout.buffer_count,
      msg.neuron_mask.empty() ? 0 : layout.neuron_total);
  const std::size_t dense = dense_frame_bytes(layout, msg.neuron_mask);
  return sparse < dense ? encode_frame_sparse(msg, base, layout)
                        : encode_frame(msg, layout);
}

DecodedMessage decode_frame(std::span<const std::uint8_t> frame,
                            const WireLayout& layout,
                            std::span<const float> base_params) {
  if (frame.size() < kHeaderBytes + kTrailerBytes) {
    throw WireError("wire: frame shorter than header + trailer");
  }
  // Integrity first: a flipped bit anywhere (header included) must be
  // rejected before any field is trusted.
  Reader crc_reader(frame.subspan(frame.size() - kTrailerBytes));
  const std::uint32_t stored_crc = crc_reader.u32();
  if (crc32(frame.first(frame.size() - kTrailerBytes)) != stored_crc) {
    throw WireError("wire: CRC mismatch");
  }

  Reader r(frame);
  if (r.u32() != kWireMagic) throw WireError("wire: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) {
    throw WireError("wire: unsupported version " + std::to_string(version));
  }
  const std::uint16_t flags = r.u16();
  DecodedMessage msg;
  msg.client_id = std::bit_cast<std::int32_t>(r.u32());
  const std::uint32_t neuron_total = r.u32();
  const std::uint64_t param_count = r.u64();
  const std::uint64_t buffer_count = r.u64();
  const std::uint64_t payload_count = r.u64();
  msg.sample_count = r.u64();
  msg.mean_loss = r.f64();
  msg.sparse = (flags & kFlagSparse) != 0;
  const bool has_mask = (flags & kFlagHasMask) != 0;

  if (param_count != layout.param_count ||
      buffer_count != layout.buffer_count) {
    throw WireError("wire: frame built for a different architecture");
  }
  if (has_mask &&
      neuron_total != static_cast<std::uint32_t>(layout.neuron_total)) {
    throw WireError("wire: frame mask sized for a different architecture");
  }
  if (!has_mask && neuron_total != 0) {
    throw WireError("wire: stray neuron_total without mask flag");
  }

  if (has_mask) {
    const std::span<const std::uint8_t> packed =
        r.raw(mask_wire_bytes(static_cast<int>(neuron_total)));
    msg.neuron_mask.resize(neuron_total);
    for (std::size_t i = 0; i < msg.neuron_mask.size(); ++i) {
      msg.neuron_mask[i] = (packed[i / 8] >> (i % 8)) & 1U;
    }
  }

  const bool needs_base =
      msg.sparse || (has_mask && dense_payload_count(layout, msg.neuron_mask) <
                                     layout.param_count);
  if (needs_base && base_params.size() != layout.param_count) {
    throw WireError("wire: partial frame requires the base snapshot");
  }

  if (msg.sparse) {
    msg.params.assign(base_params.begin(), base_params.end());
    for (std::uint64_t i = 0; i < payload_count; ++i) {
      const std::uint32_t f = r.u32();
      const float v = r.f32();
      if (f >= layout.param_count) {
        throw WireError("wire: sparse index out of range");
      }
      msg.params[f] = v;
    }
  } else {
    if (payload_count != dense_payload_count(layout, msg.neuron_mask)) {
      throw WireError("wire: dense payload count does not match mask");
    }
    if (has_mask) {
      msg.params.assign(base_params.begin(), base_params.end());
    } else {
      msg.params.resize(layout.param_count);
    }
    for (std::size_t f = 0; f < layout.param_count; ++f) {
      if (shipped(layout, msg.neuron_mask, f)) msg.params[f] = r.f32();
    }
  }

  msg.buffers.resize(layout.buffer_count);
  for (std::size_t i = 0; i < layout.buffer_count; ++i) {
    msg.buffers[i] = r.f32();
  }
  if (r.pos() != frame.size() - kTrailerBytes) {
    throw WireError("wire: frame length does not match payload counts");
  }
  return msg;
}

}  // namespace helios::net
