// Wire format for federated submodel updates.
//
// A ClientUpdate crosses the simulated network as one versioned binary
// frame: a fixed header, an optional packed per-neuron bitmask, a payload
// carrying only the parameters the client actually trained, the full
// non-learnable buffer vector, and a CRC32 trailer. A P_i-shrunk straggler
// upload is therefore proportionally smaller *on the wire*, and the exact
// frame byte count — not the analytic M/B_n estimate — can drive
// upload_seconds and the virtual clock.
//
// Two payload encodings exist; the encoder picks whichever is smaller:
//   * dense  — the flat parameters of every shipped index (active-neuron
//     slices plus the common, non-neuron-owned parameters), in flat order;
//   * sparse — (u32 index, f32 value) pairs of the entries that differ from
//     the base snapshot the client trained from. Top-k-compressed updates
//     revert dropped entries to the base, so this encoding makes the frame
//     size track the kept fraction.
//
// Frame layout (all integers little-endian, floats as little-endian IEEE754
// bit patterns):
//
//   offset  size  field
//        0     4  magic "HWF1"
//        4     2  version (= 1)
//        6     2  flags (bit 0: neuron mask present; bit 1: sparse payload)
//        8     4  client_id (i32)
//       12     4  neuron_total (mask bit count; 0 when no mask)
//       16     8  param_count  (full flat parameter count, validated)
//       24     8  buffer_count
//       32     8  payload_count (dense: shipped floats; sparse: pairs)
//       40     8  sample_count
//       48     8  mean_loss (f64)
//       56     -  mask bytes, ceil(neuron_total / 8), LSB-first (if bit 0)
//        -     -  payload (dense: 4 B/entry; sparse: 8 B/entry)
//        -     -  buffers (4 B each)
//        -     4  CRC32 (IEEE 802.3) over every preceding byte
//
// Version 2 frames add a payload codec (src/codec): the same header fields
// with version = 2, followed by a u32 codec id and a u32 packed-payload
// byte count, and the payload values ship quantized (fp16, or int8 against
// per-tensor / per-neuron fp16 scales) instead of as raw fp32 bits. v2
// payloads are *delta-coded* whenever the encoder holds the base snapshot
// (flag bit 2): the shipped value is params - base and the decoder adds it
// back, which is what keeps the quantization grid centered on the update.
// The fp32 codec always emits byte-identical version-1 frames, so enabling
// the codec layer with kFp32 changes nothing on the wire; the decoder
// accepts both versions.
//
//   v2 layout: 56-byte v1 header (version = 2)
//              + u32 codec_id + u32 payload_bytes        (header = 64 B)
//              + mask bytes (flag bit 0)
//              + sparse only: payload_count u32 flat indices, ascending
//              + scale_count fp16 scale bit patterns (int8 codecs; 2 B each)
//              + packed payload values (payload_bytes; see codec/codec.h)
//              + buffers (4 B each, never quantized) + CRC32
//
// scale_count is not stored: both sides derive the group list — one group
// per owning neuron plus the common group, or a single group — from the
// layout and mask (dense) or the index list (sparse), so a frame cannot
// smuggle mismatched scales past validation.
//
// Decoding validates magic, version, CRC, counts and exact frame length,
// and throws WireError on any mismatch (corruption, truncation, or a frame
// built for a different architecture).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "nn/model.h"

namespace helios::net {

/// Malformed / corrupted / mismatched frame.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kWireMagic = 0x31465748U;  // "HWF1"
inline constexpr std::uint16_t kWireVersion = 1;
/// Quantized-payload frames (codec id in the header extension).
inline constexpr std::uint16_t kWireVersionQuant = 2;
inline constexpr std::size_t kHeaderBytes = 56;
/// v2 header: v1 fields + u32 codec id + u32 packed-payload byte count.
inline constexpr std::size_t kHeaderBytesV2 = kHeaderBytes + 8;
inline constexpr std::size_t kTrailerBytes = 4;  // CRC32

enum WireFlags : std::uint16_t {
  kFlagHasMask = 1U << 0,
  kFlagSparse = 1U << 1,
  /// v2: payload values are deltas against the base snapshot.
  kFlagDelta = 1U << 2,
};

/// Static description of a model's flat layout, shared by encoder and
/// decoder (both sides build it from the same ModelSpec-built model).
struct WireLayout {
  std::size_t param_count = 0;
  std::size_t buffer_count = 0;
  int neuron_total = 0;
  /// Per flat parameter index: owning global neuron id, or kCommonParam for
  /// parameters no neuron owns (e.g. the classifier head) — those ship with
  /// every frame.
  std::vector<std::uint32_t> neuron_of;

  static constexpr std::uint32_t kCommonParam = 0xFFFFFFFFU;
};

/// Builds the layout from a finalized model (the server's reference model).
WireLayout make_wire_layout(nn::Model& model);

/// Encoder input: what one upload carries. Spans alias caller storage.
struct WireMessage {
  std::int32_t client_id = -1;
  std::uint64_t sample_count = 0;
  double mean_loss = 0.0;
  std::span<const float> params;              // full flat vector
  std::span<const float> buffers;             // full buffer vector
  std::span<const std::uint8_t> neuron_mask;  // empty = full model
};

/// Decoder output; `params` is the reconstructed *full* flat vector
/// (unshipped entries filled from the base snapshot).
struct DecodedMessage {
  std::int32_t client_id = -1;
  std::uint64_t sample_count = 0;
  double mean_loss = 0.0;
  bool sparse = false;
  std::vector<float> params;
  std::vector<float> buffers;
  std::vector<std::uint8_t> neuron_mask;  // unpacked to 0/1; empty = full
};

/// Packed mask size: ceil(neuron_total / 8); 0 for an empty mask.
std::size_t mask_wire_bytes(int neuron_total);

/// Number of floats a dense frame ships under `mask` (empty = all).
std::size_t dense_payload_count(const WireLayout& layout,
                                std::span<const std::uint8_t> mask);

/// Exact dense frame size in bytes for an update under `mask`.
std::size_t dense_frame_bytes(const WireLayout& layout,
                              std::span<const std::uint8_t> mask);

/// Exact sparse frame size for `entries` changed values. `neuron_total`
/// sizes the carried mask (0 when the update has no mask).
std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total);

/// Codec-aware sparse frame size: the actual encoded payload width of
/// `codec` (v2 framing with `scale_count` fp16 scales) instead of the v1
/// 8-bytes-per-entry fp32 assumption. kFp32 reduces to the v1 size.
std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total, codec::CodecId codec,
                               std::size_t scale_count);

/// What a quantized encode actually shipped — the sender-side mirror the
/// error-feedback accumulators and the codec telemetry need.
struct CodecResult {
  /// Concrete codec the frame was encoded with (kAuto resolved).
  codec::CodecId codec = codec::CodecId::kFp32;
  bool sparse = false;
  /// The full flat parameter vector exactly as decode_frame will
  /// reconstruct it (base + dequantized delta; unshipped entries = base).
  /// Empty for kFp32 — the v1 path is lossless.
  std::vector<float> dequantized;
};

/// Encodes `msg` as a dense frame.
std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout);

/// Encodes `msg` as a sparse-delta frame against `base` (the global
/// parameters the client trained from).
std::vector<std::uint8_t> encode_frame_sparse(const WireMessage& msg,
                                              std::span<const float> base,
                                              const WireLayout& layout);

/// Picks whichever encoding is smaller for this message.
std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout);

/// Codec-aware encoder: kFp32 is byte-identical to the 3-argument overload
/// (a v1 frame); a quantized codec emits the smaller of the v2 dense /
/// sparse encodings; kAuto additionally picks the cheapest codec (smallest
/// frame, lowest codec id on ties). `result`, when non-null, receives the
/// chosen codec and the receiver's exact dequantized view. Throws
/// codec::CodecError on NaN/Inf payload values.
std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout,
                                            codec::CodecId codec,
                                            CodecResult* result = nullptr);

/// Codec-aware dense encoder for messages with no usable base snapshot
/// (quantized values ship absolute, not delta-coded). kFp32 matches
/// encode_frame exactly.
std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout,
                                       codec::CodecId codec,
                                       CodecResult* result);

/// Decodes and validates a frame. `base_params` supplies the values of
/// unshipped entries; it must have layout.param_count entries whenever the
/// frame is masked or sparse (it may be empty for a full dense frame).
DecodedMessage decode_frame(std::span<const std::uint8_t> frame,
                            const WireLayout& layout,
                            std::span<const float> base_params);

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace helios::net
