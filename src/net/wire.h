// Wire format for federated submodel updates.
//
// A ClientUpdate crosses the simulated network as one versioned binary
// frame: a fixed header, an optional packed per-neuron bitmask, a payload
// carrying only the parameters the client actually trained, the full
// non-learnable buffer vector, and a CRC32 trailer. A P_i-shrunk straggler
// upload is therefore proportionally smaller *on the wire*, and the exact
// frame byte count — not the analytic M/B_n estimate — can drive
// upload_seconds and the virtual clock.
//
// Two payload encodings exist; the encoder picks whichever is smaller:
//   * dense  — the flat parameters of every shipped index (active-neuron
//     slices plus the common, non-neuron-owned parameters), in flat order;
//   * sparse — (u32 index, f32 value) pairs of the entries that differ from
//     the base snapshot the client trained from. Top-k-compressed updates
//     revert dropped entries to the base, so this encoding makes the frame
//     size track the kept fraction.
//
// Frame layout (all integers little-endian, floats as little-endian IEEE754
// bit patterns):
//
//   offset  size  field
//        0     4  magic "HWF1"
//        4     2  version (= 1)
//        6     2  flags (bit 0: neuron mask present; bit 1: sparse payload)
//        8     4  client_id (i32)
//       12     4  neuron_total (mask bit count; 0 when no mask)
//       16     8  param_count  (full flat parameter count, validated)
//       24     8  buffer_count
//       32     8  payload_count (dense: shipped floats; sparse: pairs)
//       40     8  sample_count
//       48     8  mean_loss (f64)
//       56     -  mask bytes, ceil(neuron_total / 8), LSB-first (if bit 0)
//        -     -  payload (dense: 4 B/entry; sparse: 8 B/entry)
//        -     -  buffers (4 B each)
//        -     4  CRC32 (IEEE 802.3) over every preceding byte
//
// Decoding validates magic, version, CRC, counts and exact frame length,
// and throws WireError on any mismatch (corruption, truncation, or a frame
// built for a different architecture).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/model.h"

namespace helios::net {

/// Malformed / corrupted / mismatched frame.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kWireMagic = 0x31465748U;  // "HWF1"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 56;
inline constexpr std::size_t kTrailerBytes = 4;  // CRC32

enum WireFlags : std::uint16_t {
  kFlagHasMask = 1U << 0,
  kFlagSparse = 1U << 1,
};

/// Static description of a model's flat layout, shared by encoder and
/// decoder (both sides build it from the same ModelSpec-built model).
struct WireLayout {
  std::size_t param_count = 0;
  std::size_t buffer_count = 0;
  int neuron_total = 0;
  /// Per flat parameter index: owning global neuron id, or kCommonParam for
  /// parameters no neuron owns (e.g. the classifier head) — those ship with
  /// every frame.
  std::vector<std::uint32_t> neuron_of;

  static constexpr std::uint32_t kCommonParam = 0xFFFFFFFFU;
};

/// Builds the layout from a finalized model (the server's reference model).
WireLayout make_wire_layout(nn::Model& model);

/// Encoder input: what one upload carries. Spans alias caller storage.
struct WireMessage {
  std::int32_t client_id = -1;
  std::uint64_t sample_count = 0;
  double mean_loss = 0.0;
  std::span<const float> params;              // full flat vector
  std::span<const float> buffers;             // full buffer vector
  std::span<const std::uint8_t> neuron_mask;  // empty = full model
};

/// Decoder output; `params` is the reconstructed *full* flat vector
/// (unshipped entries filled from the base snapshot).
struct DecodedMessage {
  std::int32_t client_id = -1;
  std::uint64_t sample_count = 0;
  double mean_loss = 0.0;
  bool sparse = false;
  std::vector<float> params;
  std::vector<float> buffers;
  std::vector<std::uint8_t> neuron_mask;  // unpacked to 0/1; empty = full
};

/// Packed mask size: ceil(neuron_total / 8); 0 for an empty mask.
std::size_t mask_wire_bytes(int neuron_total);

/// Number of floats a dense frame ships under `mask` (empty = all).
std::size_t dense_payload_count(const WireLayout& layout,
                                std::span<const std::uint8_t> mask);

/// Exact dense frame size in bytes for an update under `mask`.
std::size_t dense_frame_bytes(const WireLayout& layout,
                              std::span<const std::uint8_t> mask);

/// Exact sparse frame size for `entries` changed values. `neuron_total`
/// sizes the carried mask (0 when the update has no mask).
std::size_t sparse_frame_bytes(std::size_t entries, std::size_t buffer_count,
                               int masked_neuron_total);

/// Encodes `msg` as a dense frame.
std::vector<std::uint8_t> encode_frame(const WireMessage& msg,
                                       const WireLayout& layout);

/// Encodes `msg` as a sparse-delta frame against `base` (the global
/// parameters the client trained from).
std::vector<std::uint8_t> encode_frame_sparse(const WireMessage& msg,
                                              std::span<const float> base,
                                              const WireLayout& layout);

/// Picks whichever encoding is smaller for this message.
std::vector<std::uint8_t> encode_frame_auto(const WireMessage& msg,
                                            std::span<const float> base,
                                            const WireLayout& layout);

/// Decodes and validates a frame. `base_params` supplies the values of
/// unshipped entries; it must have layout.param_count entries whenever the
/// frame is masked or sparse (it may be empty for a full dense frame).
DecodedMessage decode_frame(std::span<const std::uint8_t> frame,
                            const WireLayout& layout,
                            std::span<const float> base_params);

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace helios::net
