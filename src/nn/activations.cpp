#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor y = x;
  float* yp = y.data();
  if (training) {
    positive_.resize(y.numel());
    cached_numel_ = y.numel();
    for (std::size_t i = 0; i < y.numel(); ++i) {
      positive_[i] = yp[i] > 0.0F;
      if (!positive_[i]) yp[i] = 0.0F;
    }
  } else {
    for (std::size_t i = 0; i < y.numel(); ++i) {
      if (yp[i] < 0.0F) yp[i] = 0.0F;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.numel() != cached_numel_) {
    throw std::logic_error("ReLU: backward/forward size mismatch");
  }
  Tensor dx = grad_out;
  float* dp = dx.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    if (!positive_[i]) dp[i] = 0.0F;
  }
  return dx;
}

LeakyReLU::LeakyReLU(float negative_slope) : slope_(negative_slope) {
  if (negative_slope < 0.0F || negative_slope >= 1.0F) {
    throw std::invalid_argument("LeakyReLU: slope out of [0, 1)");
  }
}

std::string LeakyReLU::name() const {
  return "LeakyReLU(" + std::to_string(slope_) + ")";
}

Tensor LeakyReLU::forward(const Tensor& x, bool training) {
  Tensor y = x;
  float* yp = y.data();
  if (training) {
    positive_.resize(y.numel());
    cached_numel_ = y.numel();
  }
  for (std::size_t i = 0; i < y.numel(); ++i) {
    const bool pos = yp[i] > 0.0F;
    if (training) positive_[i] = pos;
    if (!pos) yp[i] *= slope_;
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  if (grad_out.numel() != cached_numel_) {
    throw std::logic_error("LeakyReLU: backward/forward size mismatch");
  }
  Tensor dx = grad_out;
  float* dp = dx.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    if (!positive_[i]) dp[i] *= slope_;
  }
  return dx;
}

Tensor Tanh::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (float& v : y.flat()) v = std::tanh(v);
  if (training) cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (grad_out.numel() != cached_output_.numel()) {
    throw std::logic_error("Tanh: backward/forward size mismatch");
  }
  Tensor dx = grad_out;
  float* dp = dx.data();
  const float* yp = cached_output_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    dp[i] *= 1.0F - yp[i] * yp[i];
  }
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (float& v : y.flat()) v = 1.0F / (1.0F + std::exp(-v));
  if (training) cached_output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  if (grad_out.numel() != cached_output_.numel()) {
    throw std::logic_error("Sigmoid: backward/forward size mismatch");
  }
  Tensor dx = grad_out;
  float* dp = dx.data();
  const float* yp = cached_output_.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    dp[i] *= yp[i] * (1.0F - yp[i]);
  }
  return dx;
}

}  // namespace helios::nn
