// Elementwise activation layers.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

/// Rectified linear unit; works on any input rank.
class ReLU final : public Layer {
 public:
  std::string name() const override { return "ReLU"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  double forward_flops_per_sample() const override { return 0.0; }

 private:
  std::vector<std::uint8_t> positive_;  // per-element x > 0 cache
  std::size_t cached_numel_ = 0;
};

/// Leaky ReLU with configurable negative slope.
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01F);
  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  float slope_;
  std::vector<std::uint8_t> positive_;
  std::size_t cached_numel_ = 0;
};

/// Hyperbolic tangent.
class Tanh final : public Layer {
 public:
  std::string name() const override { return "Tanh"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

/// Logistic sigmoid.
class Sigmoid final : public Layer {
 public:
  std::string name() const override { return "Sigmoid"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

}  // namespace helios::nn
