#include "nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

Adam::Adam(float lr, float beta1, float beta2, float eps, float weight_decay)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0F) throw std::invalid_argument("Adam: non-positive lr");
  if (beta1 < 0.0F || beta1 >= 1.0F || beta2 < 0.0F || beta2 >= 1.0F) {
    throw std::invalid_argument("Adam: betas out of [0, 1)");
  }
  if (eps <= 0.0F) throw std::invalid_argument("Adam: non-positive eps");
  if (weight_decay < 0.0F) {
    throw std::invalid_argument("Adam: negative weight decay");
  }
}

void Adam::step(Model& model) {
  const std::size_t n = model.param_count();
  if (m_.size() != n) {
    m_.assign(n, 0.0F);
    v_.assign(n, 0.0F);
    t_ = 0;
  }
  ++t_;
  const auto& frozen = model.frozen_flat_mask();
  const float bc1 =
      1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 =
      1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (const ParamRef& ref : model.param_refs()) {
    float* w = ref.param->data();
    const float* g = ref.grad->data();
    const std::size_t count = ref.param->numel();
    const std::uint8_t* fz =
        frozen.empty() ? nullptr : frozen.data() + ref.flat_offset;
    float* m = m_.data() + ref.flat_offset;
    float* v = v_.data() + ref.flat_offset;
    for (std::size_t i = 0; i < count; ++i) {
      if (fz && fz[i]) continue;
      const float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0F - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0F - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace helios::nn
