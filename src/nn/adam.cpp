#include "nn/adam.h"

#include "tensor/backend/dispatch.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

Adam::Adam(float lr, float beta1, float beta2, float eps, float weight_decay)
    : lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0F) throw std::invalid_argument("Adam: non-positive lr");
  if (beta1 < 0.0F || beta1 >= 1.0F || beta2 < 0.0F || beta2 >= 1.0F) {
    throw std::invalid_argument("Adam: betas out of [0, 1)");
  }
  if (eps <= 0.0F) throw std::invalid_argument("Adam: non-positive eps");
  if (weight_decay < 0.0F) {
    throw std::invalid_argument("Adam: negative weight decay");
  }
}

void Adam::step(Model& model) {
  const std::size_t n = model.param_count();
  if (m_.size() != n) {
    m_.assign(n, 0.0F);
    v_.assign(n, 0.0F);
    t_ = 0;
  }
  ++t_;
  const auto& frozen = model.frozen_flat_mask();
  const float bc1 =
      1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 =
      1.0F - std::pow(beta2_, static_cast<float>(t_));
  // Dispatched elementwise update (tensor/backend); div/sqrt are correctly
  // rounded, so every backend is bitwise identical to scalar.
  const auto& kernels = tensor::backend::active_kernels();
  for (const ParamRef& ref : model.param_refs()) {
    tensor::backend::AdamArgs args;
    args.w = ref.param->data();
    args.g = ref.grad->data();
    args.m = m_.data() + ref.flat_offset;
    args.v = v_.data() + ref.flat_offset;
    args.frozen = frozen.empty() ? nullptr : frozen.data() + ref.flat_offset;
    args.count = ref.param->numel();
    args.lr = lr_;
    args.beta1 = beta1_;
    args.beta2 = beta2_;
    args.eps = eps_;
    args.weight_decay = weight_decay_;
    args.bc1 = bc1;
    args.bc2 = bc2;
    kernels.adam_update(args);
  }
}

}  // namespace helios::nn
