// Adam optimizer (Kingma & Ba, 2015) with the same frozen-parameter
// contract as Sgd: parameters of masked neurons receive no update and no
// moment accumulation, so soft-training freeze semantics hold under
// adaptive optimization too.
#pragma once

#include "nn/model.h"

namespace helios::nn {

class Adam {
 public:
  explicit Adam(float lr = 1e-3F, float beta1 = 0.9F, float beta2 = 0.999F,
                float eps = 1e-8F, float weight_decay = 0.0F);

  void step(Model& model);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  long steps_taken() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::vector<float> m_, v_;  // flat first/second moments
};

}  // namespace helios::nn
