#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

using tensor::Shape;

BatchNorm2d::BatchNorm2d(int channels, int in_h, int in_w, float eps,
                         float momentum)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::full({channels}, 1.0F)),
      beta_(Tensor::zeros({channels})),
      dgamma_(Tensor::zeros({channels})),
      dbeta_(Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::full({channels}, 1.0F)) {
  if (channels <= 0 || in_h <= 0 || in_w <= 0) {
    throw std::invalid_argument("BatchNorm2d: bad geometry");
  }
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  const int n = x.dim(0);
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const std::size_t per_channel = static_cast<std::size_t>(n) * plane;
  Tensor y(x.shape());
  if (training) {
    cached_xhat_ = Tensor(x.shape());
    invstd_.assign(static_cast<std::size_t>(channels_), 0.0F);
    cached_batch_ = n;
  }
  const float* xp = x.data();
  float* yp = y.data();
  float* hp = training ? cached_xhat_.data() : nullptr;
  for (int c = 0; c < channels_; ++c) {
    if (!channel_active(c)) continue;  // y stays zero for dropped channels
    float mean_c, var_c;
    if (training) {
      double s = 0.0;
      for (int i = 0; i < n; ++i) {
        const float* src = xp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t p = 0; p < plane; ++p) s += src[p];
      }
      mean_c = static_cast<float>(s / static_cast<double>(per_channel));
      double v = 0.0;
      for (int i = 0; i < n; ++i) {
        const float* src = xp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t p = 0; p < plane; ++p) {
          const double d = src[p] - mean_c;
          v += d * d;
        }
      }
      var_c = static_cast<float>(v / static_cast<double>(per_channel));
      running_mean_.at(c) =
          (1.0F - momentum_) * running_mean_.at(c) + momentum_ * mean_c;
      running_var_.at(c) =
          (1.0F - momentum_) * running_var_.at(c) + momentum_ * var_c;
    } else {
      mean_c = running_mean_.at(c);
      var_c = running_var_.at(c);
    }
    const float invstd = 1.0F / std::sqrt(var_c + eps_);
    if (training) invstd_[static_cast<std::size_t>(c)] = invstd;
    const float g = gamma_.at(c), b = beta_.at(c);
    for (int i = 0; i < n; ++i) {
      const std::size_t base = (static_cast<std::size_t>(i) * channels_ + c) * plane;
      const float* src = xp + base;
      float* dst = yp + base;
      float* hat = training ? hp + base : nullptr;
      for (std::size_t p = 0; p < plane; ++p) {
        const float xh = (src[p] - mean_c) * invstd;
        if (training) hat[p] = xh;
        dst[p] = g * xh + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = cached_batch_;
  if (n == 0 || grad_out.shape() != Shape{n, channels_, in_h_, in_w_}) {
    throw std::logic_error(name() + ": backward shape mismatch");
  }
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const std::size_t per_channel = static_cast<std::size_t>(n) * plane;
  Tensor dx(grad_out.shape());
  const float* gp = grad_out.data();
  const float* hp = cached_xhat_.data();
  float* dp = dx.data();
  for (int c = 0; c < channels_; ++c) {
    if (!channel_active(c)) continue;  // dropped channel: dx stays zero
    // Channel-wise sums needed by the batch-norm gradient.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int i = 0; i < n; ++i) {
      const std::size_t base = (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        sum_dy += gp[base + p];
        sum_dy_xhat += static_cast<double>(gp[base + p]) * hp[base + p];
      }
    }
    dbeta_.at(c) += static_cast<float>(sum_dy);
    dgamma_.at(c) += static_cast<float>(sum_dy_xhat);
    const float g = gamma_.at(c);
    const float invstd = invstd_[static_cast<std::size_t>(c)];
    const float inv_m = 1.0F / static_cast<float>(per_channel);
    const float mean_dy = static_cast<float>(sum_dy) * inv_m;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) * inv_m;
    for (int i = 0; i < n; ++i) {
      const std::size_t base = (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        dp[base + p] = g * invstd *
                       (gp[base + p] - mean_dy - hp[base + p] * mean_dy_xhat);
      }
    }
  }
  return dx;
}

void BatchNorm2d::set_mask(std::span<const std::uint8_t> mask) {
  check_mask_size(mask, channels_, "BatchNorm2d");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> BatchNorm2d::neuron_slices(int j) const {
  if (j < 0 || j >= channels_) {
    throw std::out_of_range("BatchNorm2d::neuron_slices");
  }
  return {
      {0, static_cast<std::size_t>(j), 1},  // gamma_j
      {1, static_cast<std::size_t>(j), 1},  // beta_j
  };
}

}  // namespace helios::nn
