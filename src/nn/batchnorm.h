// Per-channel batch normalization (NCHW) acting as a *mask follower*.
//
// In Helios a conv filter and its BatchNorm affine pair (gamma, beta) form
// one logical neuron: when soft-training drops the filter, the BatchNorm
// channel is dropped with it (output forced to zero, statistics and
// parameter gradients skipped). The Model links each BatchNorm to its
// leading conv and mirrors the conv's mask onto it.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(int channels, int in_h, int in_w, float eps = 1e-5F,
              float momentum = 0.1F);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }

  int neuron_count() const override { return channels_; }
  bool mask_follower() const override { return true; }
  void set_mask(std::span<const std::uint8_t> mask) override;
  void clear_mask() override { mask_.clear(); }
  std::vector<ParamSlice> neuron_slices(int j) const override;

  double activation_numel_per_sample() const override {
    return static_cast<double>(channels_) * in_h_ * in_w_;
  }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  bool channel_active(int c) const {
    return mask_.empty() || mask_[static_cast<std::size_t>(c)] != 0;
  }

  int channels_, in_h_, in_w_;
  float eps_, momentum_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  std::vector<std::uint8_t> mask_;
  // Training caches.
  Tensor cached_xhat_;        // normalized input
  std::vector<float> invstd_;  // per channel
  int cached_batch_ = 0;
};

}  // namespace helios::nn
