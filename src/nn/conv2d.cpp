#include <algorithm>

#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"

namespace helios::nn {

using tensor::Shape;

Conv2d::Conv2d(int in_channels, int in_h, int in_w, int out_channels,
               int kernel, int stride, int pad, util::Rng& rng, bool maskable)
    : geometry_{in_channels, in_h, in_w, kernel, stride, pad},
      out_channels_(out_channels),
      maskable_(maskable),
      weight_(Tensor::randn(
          {out_channels, geometry_.patch_size()}, rng,
          std::sqrt(2.0F / static_cast<float>(geometry_.patch_size())))),
      bias_(Tensor::zeros({out_channels})),
      dweight_(Tensor::zeros({out_channels, geometry_.patch_size()})),
      dbias_(Tensor::zeros({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2d: bad geometry");
  }
  if (geometry_.out_h() <= 0 || geometry_.out_w() <= 0) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(out_channels_) + ", k=" +
         std::to_string(geometry_.kernel) + ", s=" +
         std::to_string(geometry_.stride) + ")";
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  const Shape want{x.dim(0), geometry_.in_channels, geometry_.in_h,
                   geometry_.in_w};
  if (x.ndim() != 4 || x.shape() != want) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  if (training) cached_input_ = x;
  HELIOS_TRACE_SPAN("conv2d.forward",
                    {{"out_c", out_channels_}, {"n", x.dim(0)}});
  const int n = x.dim(0);
  const int oh = geometry_.out_h(), ow = geometry_.out_w();
  const int plane = oh * ow;
  const std::size_t in_sample =
      static_cast<std::size_t>(geometry_.in_channels) * geometry_.in_h *
      geometry_.in_w;
  Tensor y({n, out_channels_, oh, ow});
  Tensor cols({geometry_.patch_size(), plane});
  Tensor sample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
  Tensor ys({out_channels_, plane});
  for (int i = 0; i < n; ++i) {
    std::copy_n(x.data() + static_cast<std::size_t>(i) * in_sample, in_sample,
                sample.data());
    tensor::im2col(sample, geometry_, cols);
    tensor::matmul_masked_rows_into(weight_, cols, mask_, ys);
    float* yp = y.data() + static_cast<std::size_t>(i) * out_channels_ * plane;
    const float* ysp = ys.data();
    const float* bp = bias_.data();
    for (int oc = 0; oc < out_channels_; ++oc) {
      const bool active = mask_.empty() || mask_[static_cast<std::size_t>(oc)];
      float* dst = yp + static_cast<std::size_t>(oc) * plane;
      const float* src = ysp + static_cast<std::size_t>(oc) * plane;
      if (active) {
        const float b = bp[oc];
        for (int p = 0; p < plane; ++p) dst[p] = src[p] + b;
      } else {
        for (int p = 0; p < plane; ++p) dst[p] = 0.0F;
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(name() + ": backward before training forward");
  }
  HELIOS_TRACE_SPAN("conv2d.backward",
                    {{"out_c", out_channels_}, {"n", cached_input_.dim(0)}});
  const int n = cached_input_.dim(0);
  const int oh = geometry_.out_h(), ow = geometry_.out_w();
  const int plane = oh * ow;
  if (grad_out.shape() != Shape{n, out_channels_, oh, ow}) {
    throw std::invalid_argument(name() + ": bad grad shape " +
                                tensor::shape_to_string(grad_out.shape()));
  }
  const std::size_t in_sample =
      static_cast<std::size_t>(geometry_.in_channels) * geometry_.in_h *
      geometry_.in_w;
  Tensor dx({n, geometry_.in_channels, geometry_.in_h, geometry_.in_w});
  Tensor cols({geometry_.patch_size(), plane});
  Tensor dcols({geometry_.patch_size(), plane});
  Tensor sample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
  Tensor dsample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
  Tensor gy({out_channels_, plane});
  float* dbp = dbias_.data();
  for (int i = 0; i < n; ++i) {
    std::copy_n(cached_input_.data() + static_cast<std::size_t>(i) * in_sample,
                in_sample, sample.data());
    tensor::im2col(sample, geometry_, cols);
    const float* gp = grad_out.data() +
                      static_cast<std::size_t>(i) * out_channels_ * plane;
    std::copy_n(gp, static_cast<std::size_t>(out_channels_) * plane, gy.data());
    // dW += dY * cols^T for active filters; db += row sums of dY.
    tensor::matmul_nt_masked_rows_accumulate(gy, cols, mask_, dweight_);
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (!mask_.empty() && !mask_[static_cast<std::size_t>(oc)]) continue;
      const float* row = gy.data() + static_cast<std::size_t>(oc) * plane;
      float acc = 0.0F;
      for (int p = 0; p < plane; ++p) acc += row[p];
      dbp[oc] += acc;
    }
    // dcols = W^T dY restricted to active filters, folded back to dx.
    dcols.fill(0.0F);
    tensor::matmul_tn_masked_accumulate(weight_, gy, mask_, dcols);
    dsample.fill(0.0F);
    tensor::col2im_accumulate(dcols, geometry_, dsample);
    std::copy_n(dsample.data(), in_sample,
                dx.data() + static_cast<std::size_t>(i) * in_sample);
  }
  return dx;
}

void Conv2d::set_mask(std::span<const std::uint8_t> mask) {
  if (!maskable_) {
    throw std::logic_error(name() + ": layer is not maskable");
  }
  check_mask_size(mask, out_channels_, "Conv2d");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> Conv2d::neuron_slices(int j) const {
  if (j < 0 || j >= out_channels_) {
    throw std::out_of_range("Conv2d::neuron_slices");
  }
  const std::size_t patch = static_cast<std::size_t>(geometry_.patch_size());
  return {
      {0, static_cast<std::size_t>(j) * patch, patch},  // filter j
      {1, static_cast<std::size_t>(j), 1},              // bias j
  };
}

double Conv2d::forward_flops_per_sample() const {
  const int active = mask_.empty() ? out_channels_ : active_count(mask_);
  return static_cast<double>(active) * geometry_.patch_size() *
             geometry_.out_h() * geometry_.out_w() * 2.0 +
         static_cast<double>(active) * geometry_.out_h() * geometry_.out_w();
}

double Conv2d::activation_numel_per_sample() const {
  const int active = mask_.empty() ? out_channels_ : active_count(mask_);
  return static_cast<double>(active) * geometry_.out_h() * geometry_.out_w();
}

}  // namespace helios::nn
