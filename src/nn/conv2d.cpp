#include <algorithm>

#include "nn/conv2d.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace helios::nn {

using tensor::Shape;

Conv2d::Conv2d(int in_channels, int in_h, int in_w, int out_channels,
               int kernel, int stride, int pad, util::Rng& rng, bool maskable)
    : geometry_{in_channels, in_h, in_w, kernel, stride, pad},
      out_channels_(out_channels),
      maskable_(maskable),
      weight_(Tensor::randn(
          {out_channels, geometry_.patch_size()}, rng,
          std::sqrt(2.0F / static_cast<float>(geometry_.patch_size())))),
      bias_(Tensor::zeros({out_channels})),
      dweight_(Tensor::zeros({out_channels, geometry_.patch_size()})),
      dbias_(Tensor::zeros({out_channels})) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0) {
    throw std::invalid_argument("Conv2d: bad geometry");
  }
  if (geometry_.out_h() <= 0 || geometry_.out_w() <= 0) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(out_channels_) + ", k=" +
         std::to_string(geometry_.kernel) + ", s=" +
         std::to_string(geometry_.stride) + ")";
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  const Shape want{x.dim(0), geometry_.in_channels, geometry_.in_h,
                   geometry_.in_w};
  if (x.ndim() != 4 || x.shape() != want) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  if (training) cached_input_ = x;
  HELIOS_TRACE_SPAN("conv2d.forward",
                    {{"out_c", out_channels_}, {"n", x.dim(0)}});
  const int n = x.dim(0);
  const int oh = geometry_.out_h(), ow = geometry_.out_w();
  const int plane = oh * ow;
  const std::size_t in_sample =
      static_cast<std::size_t>(geometry_.in_channels) * geometry_.in_h *
      geometry_.in_w;
  Tensor y({n, out_channels_, oh, ow});
  // Samples are independent: the batch splits across the pool, each chunk
  // with its own im2col scratch. Every output plane is written by exactly
  // one chunk with the sequential per-sample math, so the result is
  // bit-identical at any thread count.
  auto run_samples = [&](std::int64_t lo, std::int64_t hi) {
    Tensor cols({geometry_.patch_size(), plane});
    Tensor sample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
    Tensor ys({out_channels_, plane});
    for (std::int64_t i = lo; i < hi; ++i) {
      std::copy_n(x.data() + static_cast<std::size_t>(i) * in_sample,
                  in_sample, sample.data());
      tensor::im2col(sample, geometry_, cols);
      tensor::matmul_masked_rows_into(weight_, cols, mask_, ys);
      float* yp =
          y.data() + static_cast<std::size_t>(i) * out_channels_ * plane;
      const float* ysp = ys.data();
      const float* bp = bias_.data();
      for (int oc = 0; oc < out_channels_; ++oc) {
        const bool active =
            mask_.empty() || mask_[static_cast<std::size_t>(oc)];
        float* dst = yp + static_cast<std::size_t>(oc) * plane;
        const float* src = ysp + static_cast<std::size_t>(oc) * plane;
        if (active) {
          const float b = bp[oc];
          for (int p = 0; p < plane; ++p) dst[p] = src[p] + b;
        } else {
          for (int p = 0; p < plane; ++p) dst[p] = 0.0F;
        }
      }
    }
  };
  const std::int64_t per_sample = static_cast<std::int64_t>(out_channels_) *
                                  geometry_.patch_size() * plane;
  tensor::run_chunked(n, per_sample, run_samples);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(name() + ": backward before training forward");
  }
  HELIOS_TRACE_SPAN("conv2d.backward",
                    {{"out_c", out_channels_}, {"n", cached_input_.dim(0)}});
  const int n = cached_input_.dim(0);
  const int oh = geometry_.out_h(), ow = geometry_.out_w();
  const int plane = oh * ow;
  if (grad_out.shape() != Shape{n, out_channels_, oh, ow}) {
    throw std::invalid_argument(name() + ": bad grad shape " +
                                tensor::shape_to_string(grad_out.shape()));
  }
  const std::size_t in_sample =
      static_cast<std::size_t>(geometry_.in_channels) * geometry_.in_h *
      geometry_.in_w;
  Tensor dx({n, geometry_.in_channels, geometry_.in_h, geometry_.in_w});

  // Per-sample body: accumulates this sample's dW/db into `dw`/`db` and
  // writes its dx slice (disjoint across samples).
  auto backward_sample = [&](int i, Tensor& cols, Tensor& dcols,
                             Tensor& sample, Tensor& dsample, Tensor& gy,
                             Tensor& dw, Tensor& db) {
    std::copy_n(cached_input_.data() + static_cast<std::size_t>(i) * in_sample,
                in_sample, sample.data());
    tensor::im2col(sample, geometry_, cols);
    const float* gp = grad_out.data() +
                      static_cast<std::size_t>(i) * out_channels_ * plane;
    std::copy_n(gp, static_cast<std::size_t>(out_channels_) * plane, gy.data());
    // dW += dY * cols^T for active filters; db += row sums of dY.
    tensor::matmul_nt_masked_rows_accumulate(gy, cols, mask_, dw);
    float* dbp = db.data();
    for (int oc = 0; oc < out_channels_; ++oc) {
      if (!mask_.empty() && !mask_[static_cast<std::size_t>(oc)]) continue;
      const float* row = gy.data() + static_cast<std::size_t>(oc) * plane;
      float acc = 0.0F;
      for (int p = 0; p < plane; ++p) acc += row[p];
      dbp[oc] += acc;
    }
    // dcols = W^T dY restricted to active filters, folded back to dx.
    dcols.fill(0.0F);
    tensor::matmul_tn_masked_accumulate(weight_, gy, mask_, dcols);
    dsample.fill(0.0F);
    tensor::col2im_accumulate(dcols, geometry_, dsample);
    std::copy_n(dsample.data(), in_sample,
                dx.data() + static_cast<std::size_t>(i) * in_sample);
  };

  const std::int64_t per_sample = 2 * static_cast<std::int64_t>(out_channels_) *
                                  geometry_.patch_size() * plane;
  if (n > 1 && per_sample * n >= tensor::kIntraOpMinWork) {
    // The batch splits into a FIXED number of chunks (independent of the
    // thread count — only of n), each accumulating dW/db into its own
    // partial. The partials are then reduced in chunk order, so the result
    // is the same whether the chunks ran on one thread or eight.
    const int nchunks = std::min(n, 8);
    std::vector<Tensor> dws, dbs;
    dws.reserve(static_cast<std::size_t>(nchunks));
    dbs.reserve(static_cast<std::size_t>(nchunks));
    for (int c = 0; c < nchunks; ++c) {
      dws.emplace_back(
          Tensor::zeros({out_channels_, geometry_.patch_size()}));
      dbs.emplace_back(Tensor::zeros({out_channels_}));
    }
    util::parallel_for(0, nchunks, 1, [&](std::int64_t clo, std::int64_t chi) {
      Tensor cols({geometry_.patch_size(), plane});
      Tensor dcols({geometry_.patch_size(), plane});
      Tensor sample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
      Tensor dsample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
      Tensor gy({out_channels_, plane});
      for (std::int64_t c = clo; c < chi; ++c) {
        const int lo = static_cast<int>(n * c / nchunks);
        const int hi = static_cast<int>(n * (c + 1) / nchunks);
        for (int i = lo; i < hi; ++i) {
          backward_sample(i, cols, dcols, sample, dsample, gy,
                          dws[static_cast<std::size_t>(c)],
                          dbs[static_cast<std::size_t>(c)]);
        }
      }
    });
    for (int c = 0; c < nchunks; ++c) {
      tensor::add_inplace(dweight_, dws[static_cast<std::size_t>(c)]);
      tensor::add_inplace(dbias_, dbs[static_cast<std::size_t>(c)]);
    }
  } else {
    Tensor cols({geometry_.patch_size(), plane});
    Tensor dcols({geometry_.patch_size(), plane});
    Tensor sample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
    Tensor dsample({geometry_.in_channels, geometry_.in_h, geometry_.in_w});
    Tensor gy({out_channels_, plane});
    for (int i = 0; i < n; ++i) {
      backward_sample(i, cols, dcols, sample, dsample, gy, dweight_, dbias_);
    }
  }
  return dx;
}

void Conv2d::set_mask(std::span<const std::uint8_t> mask) {
  if (!maskable_) {
    throw std::logic_error(name() + ": layer is not maskable");
  }
  check_mask_size(mask, out_channels_, "Conv2d");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> Conv2d::neuron_slices(int j) const {
  if (j < 0 || j >= out_channels_) {
    throw std::out_of_range("Conv2d::neuron_slices");
  }
  const std::size_t patch = static_cast<std::size_t>(geometry_.patch_size());
  return {
      {0, static_cast<std::size_t>(j) * patch, patch},  // filter j
      {1, static_cast<std::size_t>(j), 1},              // bias j
  };
}

double Conv2d::forward_flops_per_sample() const {
  const int active = mask_.empty() ? out_channels_ : active_count(mask_);
  return static_cast<double>(active) * geometry_.patch_size() *
             geometry_.out_h() * geometry_.out_w() * 2.0 +
         static_cast<double>(active) * geometry_.out_h() * geometry_.out_w();
}

double Conv2d::activation_numel_per_sample() const {
  const int active = mask_.empty() ? out_channels_ : active_count(mask_);
  return static_cast<double>(active) * geometry_.out_h() * geometry_.out_w();
}

}  // namespace helios::nn
