// 2-D convolution (NCHW, square kernel) with per-filter masking.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace helios::nn {

/// Convolution over batches shaped [N, C, H, W]. The weight is stored as a
/// [out_channels, in_channels*k*k] matrix so that one filter (one neuron in
/// Helios terms) owns one contiguous row; forward runs per-sample im2col +
/// row-masked matmul. Masked filters are skipped in both passes.
class Conv2d final : public Layer {
 public:
  Conv2d(int in_channels, int in_h, int in_w, int out_channels, int kernel,
         int stride, int pad, util::Rng& rng, bool maskable = true);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  int neuron_count() const override { return maskable_ ? out_channels_ : 0; }
  void set_mask(std::span<const std::uint8_t> mask) override;
  void clear_mask() override { mask_.clear(); }
  std::vector<ParamSlice> neuron_slices(int j) const override;

  double forward_flops_per_sample() const override;
  double activation_numel_per_sample() const override;

  int out_channels() const { return out_channels_; }
  int out_h() const { return geometry_.out_h(); }
  int out_w() const { return geometry_.out_w(); }
  const tensor::Conv2dGeometry& geometry() const { return geometry_; }

 private:
  tensor::Conv2dGeometry geometry_;
  int out_channels_;
  bool maskable_;
  Tensor weight_;   // [outC, inC*k*k]
  Tensor bias_;     // [outC]
  Tensor dweight_;
  Tensor dbias_;
  std::vector<std::uint8_t> mask_;
  Tensor cached_input_;  // [N, C, H, W]; cols are recomputed in backward
};

}  // namespace helios::nn
