#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

#include "obs/trace.h"
#include "tensor/ops.h"

namespace helios::nn {

using tensor::Shape;

Dense::Dense(int in_features, int out_features, util::Rng& rng, bool maskable)
    : in_features_(in_features),
      out_features_(out_features),
      maskable_(maskable),
      // He initialization suits the ReLU networks used throughout.
      weight_(Tensor::randn({out_features, in_features}, rng,
                            std::sqrt(2.0F / static_cast<float>(in_features)))),
      bias_(Tensor::zeros({out_features})),
      dweight_(Tensor::zeros({out_features, in_features})),
      dbias_(Tensor::zeros({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Dense: non-positive feature count");
  }
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

Tensor Dense::forward(const Tensor& x, bool training) {
  if (x.ndim() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  if (training) cached_input_ = x;
  HELIOS_TRACE_SPAN("dense.forward",
                    {{"in", in_features_}, {"out", out_features_}});
  Tensor y({x.dim(0), out_features_});
  tensor::matmul_nt_masked_cols_into(x, weight_, mask_, y);
  float* yp = y.data();
  const float* bp = bias_.data();
  const int n = x.dim(0);
  for (int i = 0; i < n; ++i) {
    float* row = yp + static_cast<std::size_t>(i) * out_features_;
    for (int j = 0; j < out_features_; ++j) {
      if (mask_.empty() || mask_[static_cast<std::size_t>(j)]) row[j] += bp[j];
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(name() + ": backward before training forward");
  }
  if (grad_out.shape() !=
      Shape{cached_input_.dim(0), out_features_}) {
    throw std::invalid_argument(name() + ": bad grad shape");
  }
  HELIOS_TRACE_SPAN("dense.backward",
                    {{"in", in_features_}, {"out", out_features_}});
  // dW += dY^T x restricted to active output rows.
  Tensor dw({out_features_, in_features_});
  tensor::matmul_tn_masked_out_rows_into(grad_out, cached_input_, mask_, dw);
  tensor::add_inplace(dweight_, dw);
  // db += column sums of dY over active units.
  const int n = grad_out.dim(0);
  const float* gp = grad_out.data();
  float* dbp = dbias_.data();
  for (int i = 0; i < n; ++i) {
    const float* row = gp + static_cast<std::size_t>(i) * out_features_;
    for (int j = 0; j < out_features_; ++j) {
      if (mask_.empty() || mask_[static_cast<std::size_t>(j)]) dbp[j] += row[j];
    }
  }
  // dx = dY W restricted to active inner units.
  Tensor dx({n, in_features_});
  tensor::matmul_nn_masked_inner_accumulate(grad_out, weight_, mask_, dx);
  return dx;
}

void Dense::set_mask(std::span<const std::uint8_t> mask) {
  if (!maskable_) {
    throw std::logic_error(name() + ": classifier head cannot be masked");
  }
  check_mask_size(mask, out_features_, "Dense");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> Dense::neuron_slices(int j) const {
  if (j < 0 || j >= out_features_) {
    throw std::out_of_range("Dense::neuron_slices");
  }
  return {
      {0, static_cast<std::size_t>(j) * in_features_,
       static_cast<std::size_t>(in_features_)},  // weight row j
      {1, static_cast<std::size_t>(j), 1},       // bias j
  };
}

double Dense::forward_flops_per_sample() const {
  const int active =
      mask_.empty() ? out_features_ : active_count(mask_);
  // Multiply-add counted as 2 FLOPs, plus the bias add.
  return static_cast<double>(active) * in_features_ * 2.0 + active;
}

double Dense::activation_numel_per_sample() const {
  return mask_.empty() ? out_features_ : active_count(mask_);
}

}  // namespace helios::nn
