// Fully-connected layer with per-output-unit (neuron) masking.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

/// y = x W^T + b over a batch x[N, in]. W is stored [out, in] so that one
/// neuron owns one contiguous row. When a mask is installed, inactive units
/// produce zero activations, receive no gradient, and skip their FLOPs.
class Dense final : public Layer {
 public:
  /// `maskable=false` is used for classifier heads, whose output units are
  /// classes and must never be dropped by soft-training.
  Dense(int in_features, int out_features, util::Rng& rng,
        bool maskable = true);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  int neuron_count() const override { return maskable_ ? out_features_ : 0; }
  void set_mask(std::span<const std::uint8_t> mask) override;
  void clear_mask() override { mask_.clear(); }
  std::vector<ParamSlice> neuron_slices(int j) const override;

  double forward_flops_per_sample() const override;
  double activation_numel_per_sample() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  bool maskable_;
  Tensor weight_;   // [out, in]
  Tensor bias_;     // [out]
  Tensor dweight_;
  Tensor dbias_;
  std::vector<std::uint8_t> mask_;  // empty = all active
  Tensor cached_input_;             // training-mode forward input
};

}  // namespace helios::nn
