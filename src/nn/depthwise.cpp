#include "nn/depthwise.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

using tensor::Shape;

DepthwiseConv2d::DepthwiseConv2d(int channels, int in_h, int in_w, int kernel,
                                 int stride, int pad, util::Rng& rng,
                                 bool follower)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      follower_(follower),
      weight_(Tensor::randn({channels, kernel * kernel}, rng,
                            std::sqrt(2.0F / static_cast<float>(
                                                 kernel * kernel)))),
      bias_(Tensor::zeros({channels})),
      dweight_(Tensor::zeros({channels, kernel * kernel})),
      dbias_(Tensor::zeros({channels})) {
  if (channels <= 0 || kernel <= 0 || stride <= 0 || pad < 0) {
    throw std::invalid_argument("DepthwiseConv2d: bad geometry");
  }
  if (out_h() <= 0 || out_w() <= 0) {
    throw std::invalid_argument("DepthwiseConv2d: kernel larger than input");
  }
}

std::string DepthwiseConv2d::name() const {
  return "DepthwiseConv2d(" + std::to_string(channels_) + ", k=" +
         std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
}

Tensor DepthwiseConv2d::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  if (training) cached_input_ = x;
  const int n = x.dim(0), oh = out_h(), ow = out_w();
  Tensor y({n, channels_, oh, ow});
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      if (!channel_active(c)) continue;  // output stays zero
      const float* src =
          xp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      float* dst =
          yp + (static_cast<std::size_t>(i) * channels_ + c) * out_plane;
      const float* w = weight_.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      const float b = bias_.at(c);
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float acc = b;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= in_h_) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= in_w_) continue;
              acc += w[ky * kernel_ + kx] * src[iy * in_w_ + ix];
            }
          }
          dst[static_cast<std::size_t>(oy) * ow + ox] = acc;
        }
      }
    }
  }
  return y;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(name() + ": backward before training forward");
  }
  const int n = cached_input_.dim(0), oh = out_h(), ow = out_w();
  if (grad_out.shape() != Shape{n, channels_, oh, ow}) {
    throw std::invalid_argument(name() + ": bad grad shape");
  }
  Tensor dx(cached_input_.shape());
  const float* xp = cached_input_.data();
  const float* gp = grad_out.data();
  float* dp = dx.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      if (!channel_active(c)) continue;
      const float* src =
          xp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      const float* g =
          gp + (static_cast<std::size_t>(i) * channels_ + c) * out_plane;
      float* dsrc =
          dp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      const float* w =
          weight_.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      float* dw =
          dweight_.data() + static_cast<std::size_t>(c) * kernel_ * kernel_;
      float db = 0.0F;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float go = g[static_cast<std::size_t>(oy) * ow + ox];
          db += go;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= in_h_) continue;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= in_w_) continue;
              dw[ky * kernel_ + kx] += go * src[iy * in_w_ + ix];
              dsrc[iy * in_w_ + ix] += go * w[ky * kernel_ + kx];
            }
          }
        }
      }
      dbias_.at(c) += db;
    }
  }
  return dx;
}

void DepthwiseConv2d::set_mask(std::span<const std::uint8_t> mask) {
  check_mask_size(mask, channels_, "DepthwiseConv2d");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> DepthwiseConv2d::neuron_slices(int j) const {
  if (j < 0 || j >= channels_) {
    throw std::out_of_range("DepthwiseConv2d::neuron_slices");
  }
  const std::size_t taps = static_cast<std::size_t>(kernel_) * kernel_;
  return {
      {0, static_cast<std::size_t>(j) * taps, taps},
      {1, static_cast<std::size_t>(j), 1},
  };
}

double DepthwiseConv2d::forward_flops_per_sample() const {
  const int active = mask_.empty() ? channels_ : active_count(mask_);
  return static_cast<double>(active) * kernel_ * kernel_ * out_h() *
         out_w() * 2.0;
}

double DepthwiseConv2d::activation_numel_per_sample() const {
  const int active = mask_.empty() ? channels_ : active_count(mask_);
  return static_cast<double>(active) * out_h() * out_w();
}

}  // namespace helios::nn
