// Depthwise 2-D convolution (channel multiplier 1) — the building block of
// MobileNet-style edge architectures. Each input channel is filtered by its
// own k x k kernel; one channel is one maskable neuron.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

class DepthwiseConv2d final : public Layer {
 public:
  /// `follower = true` makes the layer a mask follower: its channels share
  /// identity with the preceding (pointwise) convolution's output channels,
  /// so its per-channel parameters attach to that layer's neurons and its
  /// mask mirrors the leader's — the natural wiring inside a
  /// depthwise-separable block.
  DepthwiseConv2d(int channels, int in_h, int in_w, int kernel, int stride,
                  int pad, util::Rng& rng, bool follower = false);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&dweight_, &dbias_}; }

  int neuron_count() const override { return channels_; }
  bool mask_follower() const override { return follower_; }
  void set_mask(std::span<const std::uint8_t> mask) override;
  void clear_mask() override { mask_.clear(); }
  std::vector<ParamSlice> neuron_slices(int j) const override;

  double forward_flops_per_sample() const override;
  double activation_numel_per_sample() const override;

  int out_h() const { return (in_h_ + 2 * pad_ - kernel_) / stride_ + 1; }
  int out_w() const { return (in_w_ + 2 * pad_ - kernel_) / stride_ + 1; }
  int channels() const { return channels_; }

 private:
  bool channel_active(int c) const {
    return mask_.empty() || mask_[static_cast<std::size_t>(c)] != 0;
  }

  int channels_, in_h_, in_w_, kernel_, stride_, pad_;
  bool follower_;
  Tensor weight_;  // [C, k*k]
  Tensor bias_;    // [C]
  Tensor dweight_, dbias_;
  std::vector<std::uint8_t> mask_;
  Tensor cached_input_;
};

}  // namespace helios::nn
