#include "nn/dropout.h"

#include <stdexcept>

namespace helios::nn {

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0F || rate >= 1.0F) {
    throw std::invalid_argument("Dropout: rate out of [0, 1)");
  }
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0F) {
    cached_numel_ = x.numel();
    kept_.assign(x.numel(), 1);
    scaled_ = false;
    return x;
  }
  Tensor y = x;
  kept_.resize(y.numel());
  cached_numel_ = y.numel();
  scaled_ = true;
  const float scale = 1.0F / (1.0F - rate_);
  float* yp = y.data();
  for (std::size_t i = 0; i < y.numel(); ++i) {
    kept_[i] = !rng_.bernoulli(rate_);
    yp[i] = kept_[i] ? yp[i] * scale : 0.0F;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (grad_out.numel() != cached_numel_) {
    throw std::logic_error("Dropout: backward/forward size mismatch");
  }
  Tensor dx = grad_out;
  if (!scaled_) return dx;
  const float scale = 1.0F / (1.0F - rate_);
  float* dp = dx.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    dp[i] = kept_[i] ? dp[i] * scale : 0.0F;
  }
  return dx;
}

}  // namespace helios::nn
