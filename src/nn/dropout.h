// Inverted dropout (train-time scaling; identity at evaluation).
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace helios::nn {

class Dropout final : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1); kept units are scaled by
  /// 1/(1-rate) so evaluation needs no correction.
  Dropout(float rate, std::uint64_t seed);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  float rate_;
  util::Rng rng_;
  std::vector<std::uint8_t> kept_;
  std::size_t cached_numel_ = 0;
  bool scaled_ = false;  // whether the last forward applied the mask
};

}  // namespace helios::nn
