#include "nn/flatten.h"

#include <stdexcept>

namespace helios::nn {

using tensor::Shape;

Flatten::Flatten(int channels, int in_h, int in_w)
    : channels_(channels), in_h_(in_h), in_w_(in_w) {
  if (channels <= 0 || in_h <= 0 || in_w <= 0) {
    throw std::invalid_argument("Flatten: bad geometry");
  }
}

Tensor Flatten::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument("Flatten: bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  if (training) cached_batch_ = x.dim(0);
  return x.reshaped({x.dim(0), channels_ * in_h_ * in_w_});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_batch_ == 0 ||
      grad_out.shape() != Shape{cached_batch_, channels_ * in_h_ * in_w_}) {
    throw std::logic_error("Flatten: backward shape mismatch");
  }
  return grad_out.reshaped({cached_batch_, channels_, in_h_, in_w_});
}

}  // namespace helios::nn
