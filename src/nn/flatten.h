// Shape adapter between convolutional and dense stages.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

/// [N, C, H, W] -> [N, C*H*W]; backward restores the spatial shape.
class Flatten final : public Layer {
 public:
  Flatten(int channels, int in_h, int in_w);

  std::string name() const override { return "Flatten"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  double activation_numel_per_sample() const override {
    return static_cast<double>(channels_) * in_h_ * in_w_;
  }

 private:
  int channels_, in_h_, in_w_;
  int cached_batch_ = 0;
};

}  // namespace helios::nn
