#include "nn/groupnorm.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

using tensor::Shape;

GroupNorm2d::GroupNorm2d(int channels, int in_h, int in_w, int groups,
                         float eps)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      groups_(groups),
      eps_(eps),
      gamma_(Tensor::full({channels}, 1.0F)),
      beta_(Tensor::zeros({channels})),
      dgamma_(Tensor::zeros({channels})),
      dbeta_(Tensor::zeros({channels})) {
  if (channels <= 0 || in_h <= 0 || in_w <= 0 || groups <= 0 ||
      channels % groups != 0) {
    throw std::invalid_argument("GroupNorm2d: groups must divide channels");
  }
}

std::string GroupNorm2d::name() const {
  return "GroupNorm2d(" + std::to_string(channels_) + "/" +
         std::to_string(groups_) + ")";
}

Tensor GroupNorm2d::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  const int n = x.dim(0);
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const int per_group = channels_ / groups_;
  Tensor y(x.shape());
  if (training) {
    cached_xhat_ = Tensor(x.shape());
    invstd_.assign(static_cast<std::size_t>(n) * groups_, 0.0F);
    cached_batch_ = n;
  }
  const float* xp = x.data();
  float* yp = y.data();
  float* hp = training ? cached_xhat_.data() : nullptr;
  for (int i = 0; i < n; ++i) {
    for (int g = 0; g < groups_; ++g) {
      // Statistics over the group's *active* channels.
      double sum = 0.0;
      std::size_t count = 0;
      for (int k = 0; k < per_group; ++k) {
        const int c = g * per_group + k;
        if (!channel_active(c)) continue;
        const float* src =
            xp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t p = 0; p < plane; ++p) sum += src[p];
        count += plane;
      }
      if (count == 0) continue;  // whole group masked; outputs stay zero
      const float mean =
          static_cast<float>(sum / static_cast<double>(count));
      double var_acc = 0.0;
      for (int k = 0; k < per_group; ++k) {
        const int c = g * per_group + k;
        if (!channel_active(c)) continue;
        const float* src =
            xp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
        for (std::size_t p = 0; p < plane; ++p) {
          const double d = src[p] - mean;
          var_acc += d * d;
        }
      }
      const float invstd = 1.0F / std::sqrt(static_cast<float>(
                                      var_acc / static_cast<double>(count)) +
                                  eps_);
      if (training) {
        invstd_[static_cast<std::size_t>(i) * groups_ + g] = invstd;
      }
      for (int k = 0; k < per_group; ++k) {
        const int c = g * per_group + k;
        if (!channel_active(c)) continue;
        const std::size_t base =
            (static_cast<std::size_t>(i) * channels_ + c) * plane;
        const float gam = gamma_.at(c), bet = beta_.at(c);
        for (std::size_t p = 0; p < plane; ++p) {
          const float xh = (xp[base + p] - mean) * invstd;
          if (training) hp[base + p] = xh;
          yp[base + p] = gam * xh + bet;
        }
      }
    }
  }
  return y;
}

Tensor GroupNorm2d::backward(const Tensor& grad_out) {
  const int n = cached_batch_;
  if (n == 0 || grad_out.shape() != Shape{n, channels_, in_h_, in_w_}) {
    throw std::logic_error(name() + ": backward shape mismatch");
  }
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const int per_group = channels_ / groups_;
  Tensor dx(grad_out.shape());
  const float* gp = grad_out.data();
  const float* hp = cached_xhat_.data();
  float* dp = dx.data();
  for (int i = 0; i < n; ++i) {
    for (int g = 0; g < groups_; ++g) {
      const float invstd = invstd_[static_cast<std::size_t>(i) * groups_ + g];
      if (invstd == 0.0F) continue;  // whole group was masked
      // Group sums of dxhat and dxhat * xhat (dxhat = dy * gamma_c).
      double sum_dxh = 0.0, sum_dxh_xh = 0.0;
      std::size_t count = 0;
      for (int k = 0; k < per_group; ++k) {
        const int c = g * per_group + k;
        if (!channel_active(c)) continue;
        const std::size_t base =
            (static_cast<std::size_t>(i) * channels_ + c) * plane;
        const float gam = gamma_.at(c);
        for (std::size_t p = 0; p < plane; ++p) {
          const double dxh = static_cast<double>(gp[base + p]) * gam;
          sum_dxh += dxh;
          sum_dxh_xh += dxh * hp[base + p];
        }
        count += plane;
      }
      if (count == 0) continue;
      const float mean_dxh = static_cast<float>(sum_dxh / count);
      const float mean_dxh_xh = static_cast<float>(sum_dxh_xh / count);
      for (int k = 0; k < per_group; ++k) {
        const int c = g * per_group + k;
        if (!channel_active(c)) continue;
        const std::size_t base =
            (static_cast<std::size_t>(i) * channels_ + c) * plane;
        const float gam = gamma_.at(c);
        for (std::size_t p = 0; p < plane; ++p) {
          const float dxh = gp[base + p] * gam;
          dp[base + p] =
              invstd * (dxh - mean_dxh - hp[base + p] * mean_dxh_xh);
        }
      }
    }
  }
  // Parameter gradients (per channel, over batch).
  for (int c = 0; c < channels_; ++c) {
    if (!channel_active(c)) continue;
    double dgam = 0.0, dbet = 0.0;
    for (int i = 0; i < n; ++i) {
      const std::size_t base =
          (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        dgam += static_cast<double>(gp[base + p]) * hp[base + p];
        dbet += gp[base + p];
      }
    }
    dgamma_.at(c) += static_cast<float>(dgam);
    dbeta_.at(c) += static_cast<float>(dbet);
  }
  return dx;
}

void GroupNorm2d::set_mask(std::span<const std::uint8_t> mask) {
  check_mask_size(mask, channels_, "GroupNorm2d");
  mask_.assign(mask.begin(), mask.end());
}

std::vector<ParamSlice> GroupNorm2d::neuron_slices(int j) const {
  if (j < 0 || j >= channels_) {
    throw std::out_of_range("GroupNorm2d::neuron_slices");
  }
  return {
      {0, static_cast<std::size_t>(j), 1},  // gamma_j
      {1, static_cast<std::size_t>(j), 1},  // beta_j
  };
}

}  // namespace helios::nn
