// Group normalization (Wu & He, 2018) — the batch-independent alternative
// to BatchNorm that federated learning work often prefers: it carries no
// running statistics, so nothing needs to be averaged across clients and
// small local batches do not corrupt the normalizer.
//
// Like BatchNorm2d it is a mask follower: its per-channel affine pair
// belongs to the leading conv's neuron, and masked channels emit zero.
// Masked channels are also excluded from their group's statistics.
#pragma once

#include "nn/layer.h"

namespace helios::nn {

class GroupNorm2d final : public Layer {
 public:
  /// `groups` must divide `channels`.
  GroupNorm2d(int channels, int in_h, int in_w, int groups, float eps = 1e-5F);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }

  int neuron_count() const override { return channels_; }
  bool mask_follower() const override { return true; }
  void set_mask(std::span<const std::uint8_t> mask) override;
  void clear_mask() override { mask_.clear(); }
  std::vector<ParamSlice> neuron_slices(int j) const override;

  double activation_numel_per_sample() const override {
    return static_cast<double>(channels_) * in_h_ * in_w_;
  }

  int groups() const { return groups_; }

 private:
  bool channel_active(int c) const {
    return mask_.empty() || mask_[static_cast<std::size_t>(c)] != 0;
  }

  int channels_, in_h_, in_w_, groups_;
  float eps_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  std::vector<std::uint8_t> mask_;
  // Training caches (per sample, per group).
  Tensor cached_xhat_;
  std::vector<float> invstd_;  // [n * groups]
  int cached_batch_ = 0;
};

}  // namespace helios::nn
