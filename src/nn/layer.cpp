#include "nn/layer.h"

#include <stdexcept>

namespace helios::nn {

void Layer::zero_grad() {
  for (Tensor* g : grads()) g->fill(0.0F);
}

void Layer::set_mask(std::span<const std::uint8_t> mask) {
  if (!mask.empty() && neuron_count() == 0) {
    throw std::logic_error(name() + ": layer is not maskable");
  }
}

void check_mask_size(std::span<const std::uint8_t> mask, int expected,
                     const char* layer_name) {
  if (static_cast<int>(mask.size()) != expected) {
    throw std::invalid_argument(std::string(layer_name) +
                                ": mask size " + std::to_string(mask.size()) +
                                " != neuron count " + std::to_string(expected));
  }
}

int active_count(std::span<const std::uint8_t> mask) {
  int n = 0;
  for (auto b : mask) n += (b != 0);
  return n;
}

}  // namespace helios::nn
