// Layer abstraction with explicit forward/backward and first-class support
// for *neuron masking* — the mechanism behind Helios soft-training.
//
// A "neuron" is an output unit of a layer: a dense row or a conv filter.
// Maskable layers accept a byte mask over their output units; masked units
// are excluded from forward and backward (their activations are zero, their
// parameters receive no gradient, and their FLOPs are not spent). A layer can
// also be a *mask follower* (e.g. BatchNorm after a conv): it carries
// per-unit parameters that logically belong to the leading layer's neurons
// and mirrors the leader's mask instead of owning neurons of its own.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace helios::nn {

using tensor::Tensor;

/// Locates a contiguous run of parameters belonging to one neuron:
/// `param_index` selects the tensor in the layer's params() list, and
/// [offset, offset+length) the run inside it.
struct ParamSlice {
  int param_index = 0;
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Base class for all layers (including composites such as ResidualBlock).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual std::string name() const = 0;

  /// Computes the layer output for a batch. `training` selects batch-stat /
  /// cache behaviour (BatchNorm, dropout-style layers).
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Propagates `grad_out` (dL/doutput) to dL/dinput, accumulating parameter
  /// gradients along the way. Must be called after a training-mode forward.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameter tensors (paired index-wise with grads()).
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Non-learnable state that must travel with the model in federated
  /// exchange (e.g. BatchNorm running statistics). Not optimized, not part
  /// of the neuron index; the server averages buffers across clients.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Number of maskable output units; 0 for non-maskable layers.
  virtual int neuron_count() const { return 0; }

  /// True for layers whose mask is dictated by a leading layer (BatchNorm).
  virtual bool mask_follower() const { return false; }

  /// Installs an output-unit mask (size must equal neuron_count()).
  /// No-op default for non-maskable layers.
  virtual void set_mask(std::span<const std::uint8_t> mask);

  /// Restores the fully-active state.
  virtual void clear_mask() {}

  /// Parameter slices owned by output unit `j` (for contribution metrics and
  /// per-neuron aggregation). Empty for layers without per-unit parameters.
  virtual std::vector<ParamSlice> neuron_slices(int j) const {
    (void)j;
    return {};
  }

  /// Forward multiply-accumulate FLOPs per sample under the current mask.
  virtual double forward_flops_per_sample() const { return 0.0; }

  /// Output activation element count per sample (memory model input).
  virtual double activation_numel_per_sample() const { return 0.0; }

  /// Appends the leaf layers in execution order (composites recurse).
  virtual void append_leaves(std::vector<Layer*>& out) { out.push_back(this); }
};

/// Throws unless `mask.size() == expected`; shared by maskable layers.
void check_mask_size(std::span<const std::uint8_t> mask, int expected,
                     const char* layer_name);

/// Number of active entries in a mask.
int active_count(std::span<const std::uint8_t> mask);

}  // namespace helios::nn
