#include "nn/model.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "nn/residual.h"
#include "nn/sgd.h"
#include "tensor/ops.h"

namespace helios::nn {

std::size_t NeuronInfo::param_count() const {
  std::size_t n = 0;
  for (const auto& s : slices) n += s.length;
  return n;
}

Layer& Model::add(std::unique_ptr<Layer> layer) {
  if (finalized_) throw std::logic_error("Model::add after finalize");
  if (!layer) throw std::invalid_argument("Model::add: null layer");
  // Composite layers carry their own internal follower wiring.
  if (auto* block = dynamic_cast<ResidualBlock*>(layer.get())) {
    for (auto [follower, leader] : block->follower_links()) {
      links_.emplace_back(follower, leader);
    }
  }
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

void Model::link_follower(Layer& follower, Layer& leader) {
  if (finalized_) throw std::logic_error("Model::link_follower after finalize");
  if (!follower.mask_follower()) {
    throw std::invalid_argument("link_follower: " + follower.name() +
                                " is not a mask follower");
  }
  if (leader.neuron_count() == 0 || leader.mask_follower()) {
    throw std::invalid_argument("link_follower: " + leader.name() +
                                " cannot lead masks");
  }
  if (follower.neuron_count() != leader.neuron_count()) {
    throw std::invalid_argument("link_follower: unit count mismatch between " +
                                follower.name() + " and " + leader.name());
  }
  links_.emplace_back(&follower, &leader);
}

void Model::finalize() {
  if (finalized_) return;
  if (layers_.empty()) throw std::logic_error("Model::finalize: empty model");

  leaves_.clear();
  for (auto& l : layers_) l->append_leaves(leaves_);

  // Flat parameter layout, leaf by leaf, tensor by tensor.
  param_refs_.clear();
  param_count_ = 0;
  std::unordered_map<Layer*, std::vector<std::size_t>> layer_param_offsets;
  for (Layer* leaf : leaves_) {
    auto params = leaf->params();
    auto grads = leaf->grads();
    if (params.size() != grads.size()) {
      throw std::logic_error(leaf->name() + ": params/grads arity mismatch");
    }
    auto& offsets = layer_param_offsets[leaf];
    for (std::size_t i = 0; i < params.size(); ++i) {
      offsets.push_back(param_count_);
      param_refs_.push_back({params[i], grads[i], param_count_});
      param_count_ += params[i]->numel();
    }
  }

  // Follower wiring sanity: every follower leaf must be linked to a leader
  // exactly once (otherwise a BatchNorm would silently never be masked).
  std::unordered_map<Layer*, Layer*> leader_of;
  for (auto [follower, leader] : links_) {
    if (!leader_of.emplace(follower, leader).second) {
      throw std::logic_error("Model: follower linked twice: " +
                             follower->name());
    }
  }
  std::unordered_map<Layer*, std::vector<Layer*>> followers_of;
  for (auto [follower, leader] : links_) {
    followers_of[leader].push_back(follower);
  }

  // Neuron index: leaders only, in leaf order, each unit carrying its own
  // slices plus those of its followers.
  neurons_.clear();
  for (Layer* leaf : leaves_) {
    if (leaf->neuron_count() == 0 || leaf->mask_follower()) continue;
    const auto& offsets = layer_param_offsets.at(leaf);
    for (int j = 0; j < leaf->neuron_count(); ++j) {
      NeuronInfo info;
      info.leader = leaf;
      info.unit = j;
      for (const ParamSlice& s : leaf->neuron_slices(j)) {
        info.slices.push_back(
            {offsets.at(static_cast<std::size_t>(s.param_index)) + s.offset,
             s.length});
      }
      auto it = followers_of.find(leaf);
      if (it != followers_of.end()) {
        for (Layer* follower : it->second) {
          const auto& foffsets = layer_param_offsets.at(follower);
          for (const ParamSlice& s : follower->neuron_slices(j)) {
            info.slices.push_back(
                {foffsets.at(static_cast<std::size_t>(s.param_index)) +
                     s.offset,
                 s.length});
          }
        }
      }
      neurons_.push_back(std::move(info));
    }
  }
  finalized_ = true;
}

void Model::require_finalized() const {
  if (!finalized_) {
    throw std::logic_error("Model: call finalize() (or an accessor) first");
  }
}

Tensor Model::forward(const Tensor& x, bool training) {
  finalize();
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

Tensor Model::backward(const Tensor& grad_out) {
  require_finalized();
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Model::zero_grad() {
  finalize();
  for (Layer* leaf : leaves_) leaf->zero_grad();
}

std::size_t Model::param_count() {
  finalize();
  return param_count_;
}

const std::vector<ParamRef>& Model::param_refs() {
  finalize();
  return param_refs_;
}

void Model::copy_params(std::span<float> out) {
  finalize();
  if (out.size() != param_count_) {
    throw std::invalid_argument("copy_params: size mismatch");
  }
  for (const ParamRef& ref : param_refs_) {
    std::copy_n(ref.param->data(), ref.param->numel(),
                out.data() + ref.flat_offset);
  }
}

std::vector<float> Model::params_flat() {
  std::vector<float> out(param_count());
  copy_params(out);
  return out;
}

void Model::load_params(std::span<const float> in) {
  finalize();
  if (in.size() != param_count_) {
    throw std::invalid_argument("load_params: size mismatch");
  }
  for (const ParamRef& ref : param_refs_) {
    std::copy_n(in.data() + ref.flat_offset, ref.param->numel(),
                ref.param->data());
  }
}

std::size_t Model::buffer_count() {
  finalize();
  std::size_t n = 0;
  for (Layer* leaf : leaves_) {
    for (Tensor* b : leaf->buffers()) n += b->numel();
  }
  return n;
}

void Model::copy_buffers(std::span<float> out) {
  if (out.size() != buffer_count()) {
    throw std::invalid_argument("copy_buffers: size mismatch");
  }
  std::size_t cursor = 0;
  for (Layer* leaf : leaves_) {
    for (Tensor* b : leaf->buffers()) {
      std::copy_n(b->data(), b->numel(), out.data() + cursor);
      cursor += b->numel();
    }
  }
}

std::vector<float> Model::buffers_flat() {
  std::vector<float> out(buffer_count());
  copy_buffers(out);
  return out;
}

void Model::load_buffers(std::span<const float> in) {
  if (in.size() != buffer_count()) {
    throw std::invalid_argument("load_buffers: size mismatch");
  }
  std::size_t cursor = 0;
  for (Layer* leaf : leaves_) {
    for (Tensor* b : leaf->buffers()) {
      std::copy_n(in.data() + cursor, b->numel(), b->data());
      cursor += b->numel();
    }
  }
}

int Model::neuron_total() {
  finalize();
  return static_cast<int>(neurons_.size());
}

const std::vector<NeuronInfo>& Model::neurons() {
  finalize();
  return neurons_;
}

void Model::set_neuron_mask(std::span<const std::uint8_t> mask) {
  finalize();
  if (static_cast<int>(mask.size()) != neuron_total()) {
    throw std::invalid_argument("set_neuron_mask: size " +
                                std::to_string(mask.size()) + " != " +
                                std::to_string(neuron_total()));
  }
  mask_.assign(mask.begin(), mask.end());
  frozen_flat_dirty_ = true;

  // Distribute per-leader sub-masks, mirroring onto followers.
  std::unordered_map<Layer*, std::vector<Layer*>> followers_of;
  for (auto [follower, leader] : links_) {
    followers_of[leader].push_back(follower);
  }
  std::size_t cursor = 0;
  for (Layer* leaf : leaves_) {
    if (leaf->neuron_count() == 0 || leaf->mask_follower()) continue;
    const auto n = static_cast<std::size_t>(leaf->neuron_count());
    std::span<const std::uint8_t> sub = mask.subspan(cursor, n);
    leaf->set_mask(sub);
    auto it = followers_of.find(leaf);
    if (it != followers_of.end()) {
      for (Layer* follower : it->second) follower->set_mask(sub);
    }
    cursor += n;
  }
}

void Model::clear_neuron_mask() {
  finalize();
  mask_.clear();
  frozen_flat_dirty_ = true;
  for (Layer* leaf : leaves_) leaf->clear_mask();
}

const std::vector<std::uint8_t>& Model::frozen_flat_mask() {
  finalize();
  if (frozen_flat_dirty_) {
    frozen_flat_.clear();
    if (!mask_.empty()) {
      frozen_flat_.assign(param_count_, 0);
      for (std::size_t i = 0; i < neurons_.size(); ++i) {
        if (mask_[i]) continue;
        for (const FlatSlice& s : neurons_[i].slices) {
          std::fill_n(frozen_flat_.begin() +
                          static_cast<std::ptrdiff_t>(s.offset),
                      s.length, std::uint8_t{1});
        }
      }
    }
    frozen_flat_dirty_ = false;
  }
  return frozen_flat_;
}

double Model::forward_flops_per_sample() {
  finalize();
  double f = 0.0;
  for (Layer* leaf : leaves_) f += leaf->forward_flops_per_sample();
  return f;
}

double Model::train_flops_per_sample() {
  // Standard estimate: backward costs roughly twice the forward pass
  // (gradient wrt inputs + gradient wrt weights).
  return 3.0 * forward_flops_per_sample();
}

double Model::activation_numel_per_sample() {
  finalize();
  double a = 0.0;
  for (Layer* leaf : leaves_) a += leaf->activation_numel_per_sample();
  return a;
}

std::vector<Layer*>& Model::leaves() {
  finalize();
  return leaves_;
}

StepResult train_step(Model& model, Sgd& opt, const Tensor& x,
                      std::span<const int> labels) {
  model.zero_grad();
  Tensor logits = model.forward(x, /*training=*/true);
  Tensor dlogits;
  StepResult result;
  result.loss = tensor::softmax_cross_entropy(logits, labels, dlogits);
  result.correct = tensor::count_correct(logits, labels);
  model.backward(dlogits);
  opt.step(model);
  return result;
}

int evaluate_batch(Model& model, const Tensor& x,
                   std::span<const int> labels) {
  Tensor logits = model.forward(x, /*training=*/false);
  return tensor::count_correct(logits, labels);
}

}  // namespace helios::nn
