// Model container: an ordered stack of layers with flat-parameter access and
// a global neuron index.
//
// The flat parameter vector is the unit of exchange in federated learning
// (clients upload it, the server averages it), and the neuron index maps
// every logical neuron — a dense unit or a conv filter together with any
// follower parameters such as its BatchNorm affine pair — to the slices of
// that vector it owns. Soft-training, the contribution metric U^ij, rotation
// regulation and per-neuron aggregation are all expressed against this index.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/layer.h"

namespace helios::nn {

/// Contiguous run inside the model's flat parameter vector.
struct FlatSlice {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// One logical neuron: unit `unit` of maskable leaf `leader`, plus the flat
/// slices of every parameter it owns (leader row/filter + follower affines).
struct NeuronInfo {
  Layer* leader = nullptr;
  int unit = 0;
  std::vector<FlatSlice> slices;
  /// Total parameter count across slices.
  std::size_t param_count() const;
};

/// A parameter tensor, its gradient, and its offset in the flat vector.
struct ParamRef {
  Tensor* param = nullptr;
  Tensor* grad = nullptr;
  std::size_t flat_offset = 0;
};

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns a stable reference for wiring calls.
  /// Must be called before finalize().
  Layer& add(std::unique_ptr<Layer> layer);

  /// Declares `follower`'s mask (and neuron-parameter ownership) to be
  /// dictated by `leader`. Both must be leaves already added (directly or
  /// inside a composite). Composite layers register their internal links
  /// automatically.
  void link_follower(Layer& follower, Layer& leader);

  /// Freezes the architecture: builds the leaf list, flat parameter layout
  /// and neuron index. Called implicitly by the accessors that need it.
  void finalize();
  bool finalized() const { return finalized_; }

  // -- Execution ------------------------------------------------------------

  Tensor forward(const Tensor& x, bool training);
  /// Backpropagates through the whole stack; returns dL/dinput.
  Tensor backward(const Tensor& grad_out);
  void zero_grad();

  // -- Parameters -----------------------------------------------------------

  std::size_t param_count();
  const std::vector<ParamRef>& param_refs();
  /// Serializes all parameters into `out` (size must equal param_count()).
  void copy_params(std::span<float> out);
  std::vector<float> params_flat();
  /// Loads all parameters from `in` (size must equal param_count()).
  void load_params(std::span<const float> in);

  // -- Buffers (non-learnable federated state, e.g. BatchNorm stats) -------

  std::size_t buffer_count();
  void copy_buffers(std::span<float> out);
  std::vector<float> buffers_flat();
  void load_buffers(std::span<const float> in);

  // -- Neurons & masking ----------------------------------------------------

  /// Global neuron count m (leaders only; followers attribute to leaders).
  int neuron_total();
  const std::vector<NeuronInfo>& neurons();

  /// Installs a global mask (size neuron_total()); distributed to leaders
  /// and mirrored onto their followers. An all-ones mask equals clear_mask().
  void set_neuron_mask(std::span<const std::uint8_t> mask);
  void clear_neuron_mask();
  /// Current global mask; empty when fully active.
  const std::vector<std::uint8_t>& neuron_mask() const { return mask_; }

  /// Byte-per-flat-parameter mask: 1 where the parameter is frozen because
  /// its neuron is inactive. Empty when no mask is installed.
  const std::vector<std::uint8_t>& frozen_flat_mask();

  // -- Cost model hooks -------------------------------------------------------

  /// Forward multiply-accumulate FLOPs per sample under the current mask.
  double forward_flops_per_sample();
  /// Training FLOPs per sample (forward + backward ~ 3x forward).
  double train_flops_per_sample();
  /// Peak activation element count per sample (sum over leaves).
  double activation_numel_per_sample();

  std::vector<Layer*>& leaves();

 private:
  void require_finalized() const;

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Layer*> leaves_;
  std::vector<std::pair<Layer*, Layer*>> links_;  // (follower, leader)
  std::vector<ParamRef> param_refs_;
  std::size_t param_count_ = 0;
  std::vector<NeuronInfo> neurons_;
  std::vector<std::uint8_t> mask_;
  std::vector<std::uint8_t> frozen_flat_;
  bool frozen_flat_dirty_ = true;
  bool finalized_ = false;
};

/// One SGD step over a batch. Returns the mean loss and the number of
/// correctly classified samples (argmax vs label).
struct StepResult {
  double loss = 0.0;
  int correct = 0;
};

class Sgd;  // sgd.h
StepResult train_step(Model& model, Sgd& opt, const Tensor& x,
                      std::span<const int> labels);

/// Inference-mode correct-count on a batch.
int evaluate_batch(Model& model, const Tensor& x, std::span<const int> labels);

}  // namespace helios::nn
