#include "nn/pool.h"

#include <limits>
#include <stdexcept>

namespace helios::nn {

using tensor::Shape;

MaxPool2d::MaxPool2d(int channels, int in_h, int in_w, int kernel, int stride)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      kernel_(kernel),
      stride_(stride) {
  if (channels <= 0 || kernel <= 0 || stride <= 0 || in_h < kernel ||
      in_w < kernel) {
    throw std::invalid_argument("MaxPool2d: bad geometry");
  }
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k=" + std::to_string(kernel_) + ")";
}

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  const int n = x.dim(0), oh = out_h(), ow = out_w();
  Tensor y({n, channels_, oh, ow});
  if (training) {
    argmax_.assign(static_cast<std::size_t>(n) * channels_ * oh * ow, 0);
    cached_batch_ = n;
  }
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  std::size_t out_idx = 0;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      const float* plane =
          xp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              const int idx = iy * in_w_ + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          yp[out_idx] = best;
          if (training) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  const int n = cached_batch_, oh = out_h(), ow = out_w();
  if (n == 0 || grad_out.shape() != Shape{n, channels_, oh, ow}) {
    throw std::logic_error(name() + ": backward shape mismatch");
  }
  Tensor dx({n, channels_, in_h_, in_w_});
  float* dp = dx.data();
  const float* gp = grad_out.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  std::size_t out_idx = 0;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      float* plane =
          dp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      for (int p = 0; p < oh * ow; ++p, ++out_idx) {
        plane[argmax_[out_idx]] += gp[out_idx];
      }
    }
  }
  return dx;
}

double MaxPool2d::activation_numel_per_sample() const {
  return static_cast<double>(channels_) * out_h() * out_w();
}

AvgPool2d::AvgPool2d(int channels, int in_h, int in_w, int kernel, int stride)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      kernel_(kernel),
      stride_(stride) {
  if (channels <= 0 || kernel <= 0 || stride <= 0 || in_h < kernel ||
      in_w < kernel) {
    throw std::invalid_argument("AvgPool2d: bad geometry");
  }
}

std::string AvgPool2d::name() const {
  return "AvgPool2d(k=" + std::to_string(kernel_) + ")";
}

Tensor AvgPool2d::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument(name() + ": bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  const int n = x.dim(0), oh = out_h(), ow = out_w();
  if (training) cached_batch_ = n;
  Tensor y({n, channels_, oh, ow});
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  std::size_t out_idx = 0;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      const float* plane =
          xp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float acc = 0.0F;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              acc += plane[iy * in_w_ + ox * stride_ + kx];
            }
          }
          yp[out_idx] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const int n = cached_batch_, oh = out_h(), ow = out_w();
  if (n == 0 || grad_out.shape() != Shape{n, channels_, oh, ow}) {
    throw std::logic_error(name() + ": backward shape mismatch");
  }
  Tensor dx({n, channels_, in_h_, in_w_});
  float* dp = dx.data();
  const float* gp = grad_out.data();
  const std::size_t in_plane = static_cast<std::size_t>(in_h_) * in_w_;
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  std::size_t out_idx = 0;
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      float* plane =
          dp + (static_cast<std::size_t>(i) * channels_ + c) * in_plane;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = gp[out_idx] * inv;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              plane[iy * in_w_ + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

double AvgPool2d::activation_numel_per_sample() const {
  return static_cast<double>(channels_) * out_h() * out_w();
}

GlobalAvgPool::GlobalAvgPool(int channels, int in_h, int in_w)
    : channels_(channels), in_h_(in_h), in_w_(in_w) {
  if (channels <= 0 || in_h <= 0 || in_w <= 0) {
    throw std::invalid_argument("GlobalAvgPool: bad geometry");
  }
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  if (x.shape() != Shape{x.dim(0), channels_, in_h_, in_w_}) {
    throw std::invalid_argument("GlobalAvgPool: bad input shape " +
                                tensor::shape_to_string(x.shape()));
  }
  const int n = x.dim(0);
  if (training) cached_batch_ = n;
  Tensor y({n, channels_});
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const float inv = 1.0F / static_cast<float>(plane);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      const float* src =
          xp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
      float acc = 0.0F;
      for (std::size_t p = 0; p < plane; ++p) acc += src[p];
      yp[static_cast<std::size_t>(i) * channels_ + c] = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int n = cached_batch_;
  if (n == 0 || grad_out.shape() != Shape{n, channels_}) {
    throw std::logic_error("GlobalAvgPool: backward shape mismatch");
  }
  Tensor dx({n, channels_, in_h_, in_w_});
  float* dp = dx.data();
  const float* gp = grad_out.data();
  const std::size_t plane = static_cast<std::size_t>(in_h_) * in_w_;
  const float inv = 1.0F / static_cast<float>(plane);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < channels_; ++c) {
      const float g = gp[static_cast<std::size_t>(i) * channels_ + c] * inv;
      float* dst = dp + (static_cast<std::size_t>(i) * channels_ + c) * plane;
      for (std::size_t p = 0; p < plane; ++p) dst[p] = g;
    }
  }
  return dx;
}

}  // namespace helios::nn
