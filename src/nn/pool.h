// Pooling layers (NCHW).
#pragma once

#include "nn/layer.h"

namespace helios::nn {

/// Non-overlapping-or-strided max pooling with a square window.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(int channels, int in_h, int in_w, int kernel, int stride);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  double activation_numel_per_sample() const override;

  int out_h() const { return (in_h_ - kernel_) / stride_ + 1; }
  int out_w() const { return (in_w_ - kernel_) / stride_ + 1; }

 private:
  int channels_, in_h_, in_w_, kernel_, stride_;
  std::vector<int> argmax_;  // flat input index per output element
  int cached_batch_ = 0;
};

/// Strided average pooling with a square window.
class AvgPool2d final : public Layer {
 public:
  AvgPool2d(int channels, int in_h, int in_w, int kernel, int stride);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  double activation_numel_per_sample() const override;

  int out_h() const { return (in_h_ - kernel_) / stride_ + 1; }
  int out_w() const { return (in_w_ - kernel_) / stride_ + 1; }

 private:
  int channels_, in_h_, in_w_, kernel_, stride_;
  int cached_batch_ = 0;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  GlobalAvgPool(int channels, int in_h, int in_w);

  std::string name() const override { return "GlobalAvgPool"; }
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  double activation_numel_per_sample() const override { return channels_; }

 private:
  int channels_, in_h_, in_w_;
  int cached_batch_ = 0;
};

}  // namespace helios::nn
