#include "nn/residual.h"

#include "tensor/ops.h"

namespace helios::nn {

ResidualBlock::ResidualBlock(int in_channels, int in_h, int in_w,
                             int out_channels, int stride, util::Rng& rng)
    : conv1_(std::make_unique<Conv2d>(in_channels, in_h, in_w, out_channels,
                                      3, stride, 1, rng)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels, conv1_->out_h(),
                                         conv1_->out_w())),
      relu1_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2d>(out_channels, conv1_->out_h(),
                                      conv1_->out_w(), out_channels, 3, 1, 1,
                                      rng)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels, conv2_->out_h(),
                                         conv2_->out_w())),
      relu2_(std::make_unique<ReLU>()) {
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2d>(in_channels, in_h, in_w, out_channels, 1,
                                     stride, 0, rng, /*maskable=*/false);
    projbn_ = std::make_unique<BatchNorm2d>(out_channels, proj_->out_h(),
                                            proj_->out_w());
  }
}

std::string ResidualBlock::name() const {
  return "ResidualBlock(" + std::to_string(conv1_->geometry().in_channels) +
         "->" + std::to_string(out_channels()) + ")";
}

Tensor ResidualBlock::forward(const Tensor& x, bool training) {
  Tensor h = conv1_->forward(x, training);
  h = bn1_->forward(h, training);
  h = relu1_->forward(h, training);
  Tensor f = conv2_->forward(h, training);
  f = bn2_->forward(f, training);
  Tensor s = proj_ ? projbn_->forward(proj_->forward(x, training), training)
                   : x;
  tensor::add_inplace(f, s);
  return relu2_->forward(f, training);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor d = relu2_->backward(grad_out);
  // Main path.
  Tensor g = bn2_->backward(d);
  g = conv2_->backward(g);
  g = relu1_->backward(g);
  g = bn1_->backward(g);
  Tensor dx = conv1_->backward(g);
  // Skip path.
  if (proj_) {
    Tensor ds = projbn_->backward(d);
    ds = proj_->backward(ds);
    tensor::add_inplace(dx, ds);
  } else {
    tensor::add_inplace(dx, d);
  }
  return dx;
}

void ResidualBlock::append_leaves(std::vector<Layer*>& out) {
  conv1_->append_leaves(out);
  bn1_->append_leaves(out);
  relu1_->append_leaves(out);
  conv2_->append_leaves(out);
  bn2_->append_leaves(out);
  if (proj_) {
    proj_->append_leaves(out);
    projbn_->append_leaves(out);
  }
  relu2_->append_leaves(out);
}

std::vector<std::pair<Layer*, Layer*>> ResidualBlock::follower_links() {
  return {{bn1_.get(), conv1_.get()}, {bn2_.get(), conv2_.get()}};
}

}  // namespace helios::nn
