// Basic ResNet residual block (two 3x3 conv+BN stages plus identity or
// 1x1-projection skip). A composite layer: its sub-layers are exposed as
// leaves so the Model can flatten parameters and route neuron masks.
//
// Mask semantics inside a block: both 3x3 convs are maskable (each filter +
// its BatchNorm affine pair is one logical neuron). The projection conv is
// structural and never masked — when soft-training drops a conv2 filter, the
// block's output on that channel degrades gracefully to the skip path, which
// is exactly the "neuron sits out this cycle without leaving the model"
// behaviour Helios requires.
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace helios::nn {

class ResidualBlock final : public Layer {
 public:
  ResidualBlock(int in_channels, int in_h, int in_w, int out_channels,
                int stride, util::Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  void append_leaves(std::vector<Layer*>& out) override;

  /// (follower, leader) pairs for the Model's mask wiring.
  std::vector<std::pair<Layer*, Layer*>> follower_links();

  int out_h() const { return conv1_->out_h(); }
  int out_w() const { return conv1_->out_w(); }
  int out_channels() const { return conv2_->out_channels(); }

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_;        // null for identity skip
  std::unique_ptr<BatchNorm2d> projbn_;
  std::unique_ptr<ReLU> relu2_;
};

}  // namespace helios::nn
