#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace helios::nn {
namespace {

constexpr char kMagic[8] = {'H', 'E', 'L', 'I', 'O', 'S', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_checkpoint(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  const std::vector<float> params = model.params_flat();
  const std::vector<float> buffers = model.buffers_flat();
  const std::uint64_t param_count = params.size();
  const std::uint64_t buffer_count = buffers.size();
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&param_count), sizeof(param_count));
  out.write(reinterpret_cast<const char*>(&buffer_count),
            sizeof(buffer_count));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(buffers.data()),
            static_cast<std::streamsize>(buffers.size() * sizeof(float)));
  if (!out) throw std::runtime_error("save_checkpoint: write failed: " + path);
}

void load_checkpoint(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  std::uint64_t param_count = 0, buffer_count = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&param_count), sizeof(param_count));
  in.read(reinterpret_cast<char*>(&buffer_count), sizeof(buffer_count));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: not a Helios checkpoint: " +
                             path);
  }
  if (version != kVersion) {
    throw std::runtime_error("load_checkpoint: unsupported version " +
                             std::to_string(version));
  }
  if (param_count != model.param_count() ||
      buffer_count != model.buffer_count()) {
    throw std::runtime_error(
        "load_checkpoint: checkpoint sized for a different architecture");
  }
  std::vector<float> params(param_count);
  std::vector<float> buffers(buffer_count);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  in.read(reinterpret_cast<char*>(buffers.data()),
          static_cast<std::streamsize>(buffers.size() * sizeof(float)));
  if (!in) throw std::runtime_error("load_checkpoint: truncated file: " + path);
  model.load_params(params);
  model.load_buffers(buffers);
}

}  // namespace helios::nn
