// Binary model checkpointing.
//
// Format: magic "HELIOSCK", u32 version, u64 param count, u64 buffer count,
// raw float32 parameters, raw float32 buffers. The architecture itself is
// not serialized — checkpoints are loaded into a model built from the same
// ModelSpec, and the counts are validated on load.
#pragma once

#include <string>

#include "nn/model.h"

namespace helios::nn {

/// Writes `model`'s parameters and buffers to `path`. Throws on I/O error.
void save_checkpoint(Model& model, const std::string& path);

/// Loads a checkpoint written by save_checkpoint into `model`.
/// Throws if the file is missing, malformed, or sized for a different
/// architecture.
void load_checkpoint(Model& model, const std::string& path);

}  // namespace helios::nn
