#include <algorithm>

#include "nn/sgd.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

Sgd::Sgd(float lr, float momentum, float weight_decay, float clip_norm)
    : lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {
  if (lr <= 0.0F) throw std::invalid_argument("Sgd: non-positive lr");
  if (momentum < 0.0F || momentum >= 1.0F) {
    throw std::invalid_argument("Sgd: momentum out of [0, 1)");
  }
  if (weight_decay < 0.0F) {
    throw std::invalid_argument("Sgd: negative weight decay");
  }
  if (clip_norm < 0.0F) {
    throw std::invalid_argument("Sgd: negative clip norm");
  }
}

void Sgd::step(Model& model) {
  const std::size_t n = model.param_count();
  const bool use_momentum = momentum_ > 0.0F;
  if (use_momentum && velocity_.size() != n) velocity_.assign(n, 0.0F);
  const auto& frozen = model.frozen_flat_mask();

  float clip_scale = 1.0F;
  if (clip_norm_ > 0.0F) {
    double norm_sq = 0.0;
    for (const ParamRef& ref : model.param_refs()) {
      const float* g = ref.grad->data();
      for (std::size_t i = 0; i < ref.param->numel(); ++i) {
        norm_sq += static_cast<double>(g[i]) * g[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) {
      clip_scale = static_cast<float>(clip_norm_ / norm);
    }
  }

  for (const ParamRef& ref : model.param_refs()) {
    float* w = ref.param->data();
    const float* g = ref.grad->data();
    const std::size_t count = ref.param->numel();
    const std::uint8_t* fz =
        frozen.empty() ? nullptr : frozen.data() + ref.flat_offset;
    float* v = use_momentum ? velocity_.data() + ref.flat_offset : nullptr;
    for (std::size_t i = 0; i < count; ++i) {
      if (fz && fz[i]) continue;
      float grad = g[i] * clip_scale + weight_decay_ * w[i];
      if (use_momentum) {
        v[i] = momentum_ * v[i] + grad;
        grad = v[i];
      }
      w[i] -= lr_ * grad;
    }
  }
}

}  // namespace helios::nn
