#include <algorithm>

#include "nn/sgd.h"

#include "tensor/backend/dispatch.h"

#include <cmath>
#include <stdexcept>

namespace helios::nn {

Sgd::Sgd(float lr, float momentum, float weight_decay, float clip_norm)
    : lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {
  if (lr <= 0.0F) throw std::invalid_argument("Sgd: non-positive lr");
  if (momentum < 0.0F || momentum >= 1.0F) {
    throw std::invalid_argument("Sgd: momentum out of [0, 1)");
  }
  if (weight_decay < 0.0F) {
    throw std::invalid_argument("Sgd: negative weight decay");
  }
  if (clip_norm < 0.0F) {
    throw std::invalid_argument("Sgd: negative clip norm");
  }
}

void Sgd::step(Model& model) {
  const std::size_t n = model.param_count();
  const bool use_momentum = momentum_ > 0.0F;
  if (use_momentum && velocity_.size() != n) velocity_.assign(n, 0.0F);
  const auto& frozen = model.frozen_flat_mask();

  float clip_scale = 1.0F;
  if (clip_norm_ > 0.0F) {
    double norm_sq = 0.0;
    for (const ParamRef& ref : model.param_refs()) {
      const float* g = ref.grad->data();
      for (std::size_t i = 0; i < ref.param->numel(); ++i) {
        norm_sq += static_cast<double>(g[i]) * g[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) {
      clip_scale = static_cast<float>(clip_norm_ / norm);
    }
  }

  // The per-element update loop runs through the dispatched kernel table
  // (tensor/backend): elementwise with no FMA, so every backend is bitwise
  // identical to the scalar reference (checkasm pins this).
  const auto& kernels = tensor::backend::active_kernels();
  for (const ParamRef& ref : model.param_refs()) {
    tensor::backend::SgdArgs args;
    args.w = ref.param->data();
    args.g = ref.grad->data();
    args.v = use_momentum ? velocity_.data() + ref.flat_offset : nullptr;
    args.frozen = frozen.empty() ? nullptr : frozen.data() + ref.flat_offset;
    args.count = ref.param->numel();
    args.lr = lr_;
    args.momentum = momentum_;
    args.weight_decay = weight_decay_;
    args.clip_scale = clip_scale;
    kernels.sgd_update(args);
  }
}

}  // namespace helios::nn
