// Stochastic gradient descent with optional momentum and weight decay.
//
// The optimizer respects the model's frozen-parameter mask: parameters of
// neurons sitting out the current soft-training cycle receive no update of
// any kind (no momentum drift, no weight decay), so a straggler's skipped
// neurons stay bit-identical to the last value received from the server.
#pragma once

#include "nn/model.h"

namespace helios::nn {

class Sgd {
 public:
  /// `clip_norm > 0` rescales the whole gradient so its global L2 norm is
  /// at most clip_norm before the update (0 disables). Clipping keeps the
  /// highly skewed local objectives of Non-IID federated clients stable at
  /// learning rates the IID setting tolerates.
  explicit Sgd(float lr, float momentum = 0.0F, float weight_decay = 0.0F,
               float clip_norm = 0.0F);

  /// Applies one update using the gradients accumulated in `model`.
  void step(Model& model);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  float momentum() const { return momentum_; }

  // Checkpoint hooks: the velocity buffer is the only cross-step state.
  // Empty until the first momentum step (lazily sized), and stays empty
  // forever when momentum == 0 — round-trips either way.
  const std::vector<float>& velocity() const { return velocity_; }
  void set_velocity(std::vector<float> v) { velocity_ = std::move(v); }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  float clip_norm_;
  std::vector<float> velocity_;  // flat, lazily sized to the model
};

}  // namespace helios::nn
