#include "obs/dashboard.h"

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "obs/metrics.h"  // json_escape
#include "util/stats.h"
#include "util/table.h"

namespace helios::obs {

DeviceStats StragglerDashboard::device(int device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = devices_.find(device_id);
  return it != devices_.end() ? it->second : DeviceStats{};
}

std::size_t StragglerDashboard::device_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.size();
}

void StragglerDashboard::record_tier(std::string_view tier,
                                     std::uint64_t frames_folded,
                                     std::uint64_t bytes_forwarded,
                                     int deadline_misses, int retransmits,
                                     int lost_frames, double fold_seconds,
                                     std::uint64_t raw_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tiers_.find(tier);
  if (it == tiers_.end()) it = tiers_.emplace(std::string(tier), TierTotals{}).first;
  TierTotals& t = it->second;
  ++t.merges;
  t.frames_folded += static_cast<long long>(frames_folded);
  t.bytes_forwarded += static_cast<long long>(bytes_forwarded);
  t.raw_bytes += static_cast<long long>(raw_bytes);
  t.deadline_misses += deadline_misses;
  t.retransmits += retransmits;
  t.lost_frames += lost_frames;
  t.fold_seconds += fold_seconds;
}

TierTotals StragglerDashboard::tier(std::string_view tier) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tiers_.find(tier);
  return it != tiers_.end() ? it->second : TierTotals{};
}

void StragglerDashboard::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (devices_.size() > summary_threshold_) {
    render_summary(os);
  } else {
    render_devices(os);
  }
}

void StragglerDashboard::render_devices(std::ostream& os) const {
  util::Table table({"device", "role", "volume", "cycles", "r_n", "alpha_n",
                     "forced", "C_s 0/1/2/3+", "compute (s)", "comm (s)",
                     "upload (MB)", "wire (MB)", "saved (MB)", "retx",
                     "drops"});
  for (const auto& [id, d] : devices_) {
    const std::string cs = std::to_string(d.cs_hist[0]) + "/" +
                           std::to_string(d.cs_hist[1]) + "/" +
                           std::to_string(d.cs_hist[2]) + "/" +
                           std::to_string(d.cs_hist[3]);
    std::string role = d.straggler ? "straggler" : "capable";
    if (d.dead) role += " (dead)";
    table.add_row({d.name.empty() ? std::to_string(id) : d.name, role,
                   util::Table::num(d.volume, 2), std::to_string(d.cycles),
                   util::Table::num(d.r_n, 3), util::Table::num(d.alpha_n, 3),
                   std::to_string(d.forced_neurons), cs,
                   util::Table::num(d.compute_seconds, 3),
                   util::Table::num(d.comm_seconds, 3),
                   util::Table::num(d.upload_mb, 2),
                   util::Table::num(static_cast<double>(d.wire_bytes) / 1e6, 2),
                   util::Table::num(static_cast<double>(d.bytes_saved) / 1e6,
                                    2),
                   std::to_string(d.retransmits), std::to_string(d.drops)});
  }
  table.print(os);
}

namespace {

/// Everything the fleet summary reports, computed once and shared between
/// the console rendering and the JSON export so the two never drift.
struct FleetSummary {
  std::vector<double> r_n;
  std::vector<double> alpha_n;
  std::vector<double> wire_mb;
  std::vector<double> compute_s;
  std::vector<double> comm_s;
  std::size_t devices = 0;
  std::size_t stragglers = 0;
  std::size_t dead = 0;
  long long cycles = 0;
  long long forced = 0;
  long long drops = 0;
  long long retransmits = 0;
  long long bytes_saved = 0;  // fleet total the wire codec avoided
};

FleetSummary collect_summary(const std::map<int, DeviceStats>& devices) {
  FleetSummary s;
  s.devices = devices.size();
  for (const auto& [id, d] : devices) {
    s.r_n.push_back(d.mean_r_n());
    s.alpha_n.push_back(d.alpha_n);
    s.wire_mb.push_back(static_cast<double>(d.wire_bytes) / 1e6);
    s.compute_s.push_back(d.compute_seconds);
    s.comm_s.push_back(d.comm_seconds);
    s.stragglers += d.straggler ? 1 : 0;
    s.dead += d.dead ? 1 : 0;
    s.cycles += d.cycles;
    s.forced += d.forced_neurons;
    s.drops += d.drops;
    s.retransmits += d.retransmits;
    s.bytes_saved += d.bytes_saved;
  }
  return s;
}

/// The summary's metric rows, in render order.
struct SummaryRow {
  const char* label;      // console label
  const char* json_key;   // JSON object key
  std::span<const double> values;
  int precision;
};

std::array<SummaryRow, 5> summary_rows(const FleetSummary& s) {
  return {SummaryRow{"r_n (run mean)", "r_n", s.r_n, 3},
          SummaryRow{"alpha_n", "alpha_n", s.alpha_n, 4},
          SummaryRow{"wire (MB)", "wire_mb", s.wire_mb, 2},
          SummaryRow{"compute (s)", "compute_seconds", s.compute_s, 3},
          SummaryRow{"comm (s)", "comm_seconds", s.comm_s, 3}};
}

}  // namespace

void StragglerDashboard::render_summary(std::ostream& os) const {
  const FleetSummary s = collect_summary(devices_);

  os << "fleet: " << s.devices << " devices (" << s.stragglers
     << " stragglers, " << s.dead << " dead), " << s.cycles << " cycles, "
     << s.forced << " forced neurons, " << s.retransmits << " retx, "
     << s.drops << " drops";
  if (s.bytes_saved != 0) {
    os << ", codec saved "
       << util::Table::num(static_cast<double>(s.bytes_saved) / 1e6, 2)
       << " MB";
  }
  os << "\n";

  util::Table table({"metric", "p50", "p90", "p99", "mean", "max"});
  for (const SummaryRow& r : summary_rows(s)) {
    if (r.values.empty()) continue;
    table.add_row(
        {r.label, util::Table::num(util::percentile(r.values, 50.0), r.precision),
         util::Table::num(util::percentile(r.values, 90.0), r.precision),
         util::Table::num(util::percentile(r.values, 99.0), r.precision),
         util::Table::num(util::mean(r.values), r.precision),
         util::Table::num(
             *std::max_element(r.values.begin(), r.values.end()),
             r.precision)});
  }
  table.print(os);
  render_tiers(os);
}

void StragglerDashboard::render_tiers(std::ostream& os) const {
  if (tiers_.empty()) return;
  util::Table table({"tier", "merges", "frames folded", "fwd (MB)",
                     "raw (MB)", "tier misses", "retx", "lost", "fold (s)"});
  for (const auto& [name, t] : tiers_) {
    table.add_row(
        {name, std::to_string(t.merges), std::to_string(t.frames_folded),
         util::Table::num(static_cast<double>(t.bytes_forwarded) / 1e6, 2),
         util::Table::num(static_cast<double>(t.raw_bytes) / 1e6, 2),
         std::to_string(t.deadline_misses), std::to_string(t.retransmits),
         std::to_string(t.lost_frames), util::Table::num(t.fold_seconds, 3)});
  }
  table.print(os);
}

void StragglerDashboard::write_summary_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const FleetSummary s = collect_summary(devices_);
  os << "{\n  \"devices\": " << s.devices
     << ",\n  \"stragglers\": " << s.stragglers << ",\n  \"dead\": " << s.dead
     << ",\n  \"cycles\": " << s.cycles
     << ",\n  \"forced_neurons\": " << s.forced
     << ",\n  \"retransmits\": " << s.retransmits
     << ",\n  \"drops\": " << s.drops
     << ",\n  \"bytes_saved\": " << s.bytes_saved << ",\n  \"metrics\": {";
  bool first = true;
  for (const SummaryRow& r : summary_rows(s)) {
    if (r.values.empty()) continue;
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << r.json_key
       << "\": {\"p50\": " << util::percentile(r.values, 50.0)
       << ", \"p90\": " << util::percentile(r.values, 90.0)
       << ", \"p99\": " << util::percentile(r.values, 99.0)
       << ", \"mean\": " << util::mean(r.values) << ", \"max\": "
       << *std::max_element(r.values.begin(), r.values.end()) << '}';
  }
  os << "\n  }";
  if (!tiers_.empty()) {
    os << ",\n  \"tiers\": {";
    bool first_tier = true;
    for (const auto& [name, t] : tiers_) {
      if (!first_tier) os << ',';
      first_tier = false;
      os << "\n    \"";
      json_escape(os, name);
      os << "\": {\"merges\": " << t.merges
         << ", \"frames_folded\": " << t.frames_folded
         << ", \"bytes_forwarded\": " << t.bytes_forwarded
         << ", \"deadline_misses\": " << t.deadline_misses
         << ", \"retransmits\": " << t.retransmits
         << ", \"lost_frames\": " << t.lost_frames
         << ", \"fold_seconds\": " << t.fold_seconds << '}';
    }
    os << "\n  }";
  }
  os << "\n}\n";
}

void StragglerDashboard::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "[\n";
  bool first = true;
  for (const auto& [id, d] : devices_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"device_id\":" << id << ",\"name\":\"";
    json_escape(os, d.name);
    os << "\",\"straggler\":" << (d.straggler ? "true" : "false")
       << ",\"volume\":" << d.volume << ",\"cycles\":" << d.cycles
       << ",\"trained_neurons\":" << d.trained_neurons
       << ",\"neuron_total\":" << d.neuron_total << ",\"r_n\":" << d.r_n
       << ",\"mean_r_n\":" << d.mean_r_n() << ",\"alpha_n\":" << d.alpha_n
       << ",\"forced_neurons\":" << d.forced_neurons
       << ",\"cs_hist\":[" << d.cs_hist[0] << ',' << d.cs_hist[1] << ','
       << d.cs_hist[2] << ',' << d.cs_hist[3] << ']'
       << ",\"compute_seconds\":" << d.compute_seconds
       << ",\"comm_seconds\":" << d.comm_seconds
       << ",\"upload_mb\":" << d.upload_mb
       << ",\"wire_bytes\":" << d.wire_bytes
       << ",\"bytes_saved\":" << d.bytes_saved
       << ",\"frames_sent\":" << d.frames_sent
       << ",\"frames_lost\":" << d.frames_lost
       << ",\"retransmits\":" << d.retransmits
       << ",\"drops\":" << d.drops
       << ",\"dead\":" << (d.dead ? "true" : "false")
       << ",\"last_loss\":" << d.last_loss << '}';
  }
  os << "\n]\n";
}

}  // namespace helios::obs
