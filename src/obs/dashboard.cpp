#include "obs/dashboard.h"

#include "obs/metrics.h"  // json_escape
#include "util/table.h"

namespace helios::obs {

DeviceStats StragglerDashboard::device(int device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = devices_.find(device_id);
  return it != devices_.end() ? it->second : DeviceStats{};
}

std::size_t StragglerDashboard::device_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.size();
}

void StragglerDashboard::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  util::Table table({"device", "role", "volume", "cycles", "r_n", "alpha_n",
                     "forced", "C_s 0/1/2/3+", "compute (s)", "comm (s)",
                     "upload (MB)", "wire (MB)", "retx", "drops"});
  for (const auto& [id, d] : devices_) {
    const std::string cs = std::to_string(d.cs_hist[0]) + "/" +
                           std::to_string(d.cs_hist[1]) + "/" +
                           std::to_string(d.cs_hist[2]) + "/" +
                           std::to_string(d.cs_hist[3]);
    std::string role = d.straggler ? "straggler" : "capable";
    if (d.dead) role += " (dead)";
    table.add_row({d.name.empty() ? std::to_string(id) : d.name, role,
                   util::Table::num(d.volume, 2), std::to_string(d.cycles),
                   util::Table::num(d.r_n, 3), util::Table::num(d.alpha_n, 3),
                   std::to_string(d.forced_neurons), cs,
                   util::Table::num(d.compute_seconds, 3),
                   util::Table::num(d.comm_seconds, 3),
                   util::Table::num(d.upload_mb, 2),
                   util::Table::num(static_cast<double>(d.wire_bytes) / 1e6, 2),
                   std::to_string(d.retransmits), std::to_string(d.drops)});
  }
  table.print(os);
}

void StragglerDashboard::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "[\n";
  bool first = true;
  for (const auto& [id, d] : devices_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"device_id\":" << id << ",\"name\":\"";
    json_escape(os, d.name);
    os << "\",\"straggler\":" << (d.straggler ? "true" : "false")
       << ",\"volume\":" << d.volume << ",\"cycles\":" << d.cycles
       << ",\"trained_neurons\":" << d.trained_neurons
       << ",\"neuron_total\":" << d.neuron_total << ",\"r_n\":" << d.r_n
       << ",\"mean_r_n\":" << d.mean_r_n() << ",\"alpha_n\":" << d.alpha_n
       << ",\"forced_neurons\":" << d.forced_neurons
       << ",\"cs_hist\":[" << d.cs_hist[0] << ',' << d.cs_hist[1] << ','
       << d.cs_hist[2] << ',' << d.cs_hist[3] << ']'
       << ",\"compute_seconds\":" << d.compute_seconds
       << ",\"comm_seconds\":" << d.comm_seconds
       << ",\"upload_mb\":" << d.upload_mb
       << ",\"wire_bytes\":" << d.wire_bytes
       << ",\"frames_sent\":" << d.frames_sent
       << ",\"frames_lost\":" << d.frames_lost
       << ",\"retransmits\":" << d.retransmits
       << ",\"drops\":" << d.drops
       << ",\"dead\":" << (d.dead ? "true" : "false")
       << ",\"last_loss\":" << d.last_loss << '}';
  }
  os << "\n]\n";
}

}  // namespace helios::obs
