#include "obs/dashboard.h"

#include <algorithm>
#include <span>
#include <vector>

#include "obs/metrics.h"  // json_escape
#include "util/stats.h"
#include "util/table.h"

namespace helios::obs {

DeviceStats StragglerDashboard::device(int device_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = devices_.find(device_id);
  return it != devices_.end() ? it->second : DeviceStats{};
}

std::size_t StragglerDashboard::device_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.size();
}

void StragglerDashboard::render(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (devices_.size() > summary_threshold_) {
    render_summary(os);
  } else {
    render_devices(os);
  }
}

void StragglerDashboard::render_devices(std::ostream& os) const {
  util::Table table({"device", "role", "volume", "cycles", "r_n", "alpha_n",
                     "forced", "C_s 0/1/2/3+", "compute (s)", "comm (s)",
                     "upload (MB)", "wire (MB)", "retx", "drops"});
  for (const auto& [id, d] : devices_) {
    const std::string cs = std::to_string(d.cs_hist[0]) + "/" +
                           std::to_string(d.cs_hist[1]) + "/" +
                           std::to_string(d.cs_hist[2]) + "/" +
                           std::to_string(d.cs_hist[3]);
    std::string role = d.straggler ? "straggler" : "capable";
    if (d.dead) role += " (dead)";
    table.add_row({d.name.empty() ? std::to_string(id) : d.name, role,
                   util::Table::num(d.volume, 2), std::to_string(d.cycles),
                   util::Table::num(d.r_n, 3), util::Table::num(d.alpha_n, 3),
                   std::to_string(d.forced_neurons), cs,
                   util::Table::num(d.compute_seconds, 3),
                   util::Table::num(d.comm_seconds, 3),
                   util::Table::num(d.upload_mb, 2),
                   util::Table::num(static_cast<double>(d.wire_bytes) / 1e6, 2),
                   std::to_string(d.retransmits), std::to_string(d.drops)});
  }
  table.print(os);
}

void StragglerDashboard::render_summary(std::ostream& os) const {
  std::vector<double> r_n;
  std::vector<double> alpha_n;
  std::vector<double> wire_mb;
  std::vector<double> compute_s;
  std::vector<double> comm_s;
  std::size_t stragglers = 0;
  std::size_t dead = 0;
  long long cycles = 0;
  long long forced = 0;
  long long drops = 0;
  long long retransmits = 0;
  for (const auto& [id, d] : devices_) {
    r_n.push_back(d.mean_r_n());
    alpha_n.push_back(d.alpha_n);
    wire_mb.push_back(static_cast<double>(d.wire_bytes) / 1e6);
    compute_s.push_back(d.compute_seconds);
    comm_s.push_back(d.comm_seconds);
    stragglers += d.straggler ? 1 : 0;
    dead += d.dead ? 1 : 0;
    cycles += d.cycles;
    forced += d.forced_neurons;
    drops += d.drops;
    retransmits += d.retransmits;
  }

  os << "fleet: " << devices_.size() << " devices (" << stragglers
     << " stragglers, " << dead << " dead), " << cycles << " cycles, "
     << forced << " forced neurons, " << retransmits << " retx, " << drops
     << " drops\n";

  util::Table table({"metric", "p50", "p90", "p99", "mean", "max"});
  auto row = [&](const std::string& name, std::span<const double> xs,
                 int prec) {
    if (xs.empty()) return;
    table.add_row({name, util::Table::num(util::percentile(xs, 50.0), prec),
                   util::Table::num(util::percentile(xs, 90.0), prec),
                   util::Table::num(util::percentile(xs, 99.0), prec),
                   util::Table::num(util::mean(xs), prec),
                   util::Table::num(*std::max_element(xs.begin(), xs.end()),
                                    prec)});
  };
  row("r_n (run mean)", r_n, 3);
  row("alpha_n", alpha_n, 4);
  row("wire (MB)", wire_mb, 2);
  row("compute (s)", compute_s, 3);
  row("comm (s)", comm_s, 3);
  table.print(os);
}

void StragglerDashboard::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "[\n";
  bool first = true;
  for (const auto& [id, d] : devices_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"device_id\":" << id << ",\"name\":\"";
    json_escape(os, d.name);
    os << "\",\"straggler\":" << (d.straggler ? "true" : "false")
       << ",\"volume\":" << d.volume << ",\"cycles\":" << d.cycles
       << ",\"trained_neurons\":" << d.trained_neurons
       << ",\"neuron_total\":" << d.neuron_total << ",\"r_n\":" << d.r_n
       << ",\"mean_r_n\":" << d.mean_r_n() << ",\"alpha_n\":" << d.alpha_n
       << ",\"forced_neurons\":" << d.forced_neurons
       << ",\"cs_hist\":[" << d.cs_hist[0] << ',' << d.cs_hist[1] << ','
       << d.cs_hist[2] << ',' << d.cs_hist[3] << ']'
       << ",\"compute_seconds\":" << d.compute_seconds
       << ",\"comm_seconds\":" << d.comm_seconds
       << ",\"upload_mb\":" << d.upload_mb
       << ",\"wire_bytes\":" << d.wire_bytes
       << ",\"frames_sent\":" << d.frames_sent
       << ",\"frames_lost\":" << d.frames_lost
       << ",\"retransmits\":" << d.retransmits
       << ",\"drops\":" << d.drops
       << ",\"dead\":" << (d.dead ? "true" : "false")
       << ",\"last_loss\":" << d.last_loss << '}';
  }
  os << "\n]\n";
}

}  // namespace helios::obs
