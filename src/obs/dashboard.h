// Per-device straggler dashboard (paper Secs. IV-VI as *observed*, not as
// configured): for every device the trained-neuron fraction r_n it actually
// uploaded, the aggregation weight share alpha_n the server actually used,
// rotation-regulation pressure (forced neuron count, skipped-cycle C_s
// distribution), and the virtual-time split between compute and
// communication. Rendered as a util::Table for the console and as JSON next
// to the CSV traces.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace helios::obs {

/// Accumulated per-tier aggregator-tree statistics (hierarchical
/// aggregation runs only; empty otherwise). Keyed by tier name —
/// "edge" / "regional" / "root".
struct TierTotals {
  long long merges = 0;           // rounds this tier reported
  long long frames_folded = 0;
  long long bytes_forwarded = 0;
  /// f64-equivalent cost of the forwarded merge payloads — what the uplink
  /// would have carried without a quantized merge codec.
  long long raw_bytes = 0;
  long long deadline_misses = 0;
  long long retransmits = 0;
  long long lost_frames = 0;
  double fold_seconds = 0.0;      // wall-clock folding/merging time
};

/// Accumulated per-device run statistics. All times are virtual seconds.
struct DeviceStats {
  int device_id = -1;
  std::string name;          // resource profile name, when known
  bool straggler = false;
  double volume = 1.0;       // last expected model volume P

  // Client-side, accumulated by run_cycle.
  int cycles = 0;
  int trained_neurons = 0;   // last cycle
  int neuron_total = 0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double upload_mb = 0.0;
  double last_loss = 0.0;

  // Server-side, recorded by aggregation (Eq. 10).
  double r_n = 1.0;          // last trained fraction used by aggregate()
  double r_n_sum = 0.0;      // for the run mean
  int r_n_count = 0;
  double alpha_n = 0.0;      // last normalized weight share (sums to 1)

  // Rotation regulation: cumulative forced pull-backs and the latest
  // skipped-cycle distribution (neurons with C_s = 0, 1, 2, >= 3).
  long long forced_neurons = 0;
  std::array<int, 4> cs_hist{0, 0, 0, 0};

  // Network simulation, accumulated per transfer (zero unless a
  // NetworkSession is attached).
  long long wire_bytes = 0;     // bytes that actually transited the wire
  long long bytes_saved = 0;    // fp32-dense bytes the wire codec avoided
  int frames_sent = 0;          // transmissions (retransmits included)
  int frames_lost = 0;
  int retransmits = 0;
  int drops = 0;                // transfers the server never accepted
  bool dead = false;            // device's channel died permanently

  double mean_r_n() const {
    return r_n_count > 0 ? r_n_sum / r_n_count : r_n;
  }
};

/// Thread-safe collection of DeviceStats keyed by device id.
///
/// Small fleets render one row per device; populations larger than the
/// summary threshold render a fleet summary instead (p50/p90/p99 across
/// devices of r_n, alpha_n, wire bytes and time splits, plus straggler
/// and churn counts) so a 1024-device run stays readable.
class StragglerDashboard {
 public:
  /// Above this many devices render() switches to the fleet summary.
  static constexpr std::size_t kDefaultSummaryThreshold = 32;

  /// Mutates under the dashboard lock; callers use the returned reference
  /// only within the update lambda passed to `update`.
  template <typename Fn>
  void update(int device_id, Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    DeviceStats& d = devices_[device_id];
    d.device_id = device_id;
    fn(d);
  }

  /// Copy of a device's stats (zero-valued default if never seen).
  DeviceStats device(int device_id) const;
  std::size_t device_count() const;

  /// One aggregator-tree tier's round rollup (TelemetrySink forwards
  /// helios.agg.* tier merges here). The fleet summary renders a per-tier
  /// breakdown when any tier has reported.
  void record_tier(std::string_view tier, std::uint64_t frames_folded,
                   std::uint64_t bytes_forwarded, int deadline_misses,
                   int retransmits, int lost_frames, double fold_seconds,
                   std::uint64_t raw_bytes = 0);
  /// Copy of a tier's totals (zero-valued default if never seen).
  TierTotals tier(std::string_view tier) const;

  /// Console rendering via util::Table: per-device rows up to the summary
  /// threshold, percentile fleet summary beyond it.
  void render(std::ostream& os) const;
  /// Machine-readable dump, one object per device.
  void write_json(std::ostream& os) const;
  /// Machine-readable fleet percentile summary: the same p50/p90/p99/mean/max
  /// rows render_summary prints, plus the header counts, as one JSON object.
  void write_summary_json(std::ostream& os) const;

  /// Override the per-device vs fleet-summary cutover (device count).
  void set_summary_threshold(std::size_t n) { summary_threshold_ = n; }
  std::size_t summary_threshold() const { return summary_threshold_; }

 private:
  void render_devices(std::ostream& os) const;  // callers hold mu_
  void render_summary(std::ostream& os) const;  // callers hold mu_

  void render_tiers(std::ostream& os) const;     // callers hold mu_

  mutable std::mutex mu_;
  std::map<int, DeviceStats> devices_;  // ordered by device id
  // Ordered by name — conveniently edge < regional < root.
  std::map<std::string, TierTotals, std::less<>> tiers_;
  std::size_t summary_threshold_ = kDefaultSummaryThreshold;
};

}  // namespace helios::obs
