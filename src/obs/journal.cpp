#include "obs/journal.h"

#include <cstdio>

#include "obs/metrics.h"  // json_escape

namespace helios::obs {
namespace {

/// %.17g: enough digits that strtod returns the exact same double, so a
/// journal parse -> replay round trip accumulates bit-identical sums.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_field(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_double(out, v);
}

void append_field(std::string& out, const char* key, long long v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_field(std::string& out, const char* key, int v) {
  append_field(out, key, static_cast<long long>(v));
}

void append_field(std::string& out, const char* key, std::size_t v) {
  append_field(out, key, static_cast<long long>(v));
}

void append_string_field(std::string& out, const char* key,
                         std::string_view v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  // Profile names and strategy names are plain identifiers in practice, but
  // escape anyway so the line stays parseable whatever they contain.
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

RunJournal::RunJournal(std::ostream* os)
    : os_(os), epoch_(std::chrono::steady_clock::now()) {
  if (os_ == nullptr) return;
  std::string line;
  line.reserve(64);
  line = "{\"v\":1,\"t\":\"run_start\",\"r\":-1,\"dev\":-1,\"vt\":0,\"w\":0";
  append_field(line, "schema", kSchemaVersion);
  commit(line);
}

RunJournal::RunJournal(std::ostream* os, std::uint64_t resumed_events)
    : os_(os), epoch_(std::chrono::steady_clock::now()) {
  if (os_ == nullptr) return;
  events_ = resumed_events;
}

RunJournal::~RunJournal() { close(); }

double RunJournal::wall_ms() const {
  const std::chrono::duration<double, std::milli> dt =
      std::chrono::steady_clock::now() - epoch_;
  return dt.count();
}

void RunJournal::commit(std::string& line) {
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  ++events_;
}

namespace {

/// Starts a line with the schema version, type and stamps. The journal's
/// wall clock is passed in because only enabled paths may read clocks.
std::string open_line(const char* type, const RunJournal::Stamp& s,
                      double wall_ms) {
  std::string line;
  line.reserve(192);
  line = "{\"v\":1,\"t\":\"";
  line += type;
  line += '"';
  append_field(line, "r", s.round);
  append_field(line, "dev", s.device);
  append_field(line, "vt", s.vt);
  append_field(line, "w", wall_ms);
  return line;
}

}  // namespace

void RunJournal::cohort(const Stamp& s, std::size_t population,
                        std::size_t active, std::size_t sampled) {
  if (os_ == nullptr) return;
  std::string line = open_line("cohort", s, wall_ms());
  append_field(line, "pop", population);
  append_field(line, "act", active);
  append_field(line, "sam", sampled);
  commit(line);
}

void RunJournal::skip(const Stamp& s, std::string_view why) {
  if (os_ == nullptr) return;
  std::string line = open_line("skip", s, wall_ms());
  append_string_field(line, "why", why);
  commit(line);
}

void RunJournal::train(const Stamp& s, std::string_view profile,
                       bool straggler, double volume, int mask_neurons,
                       int neuron_total, double train_seconds,
                       double upload_seconds, double upload_mb,
                       double mean_loss) {
  if (os_ == nullptr) return;
  std::string line = open_line("train", s, wall_ms());
  append_string_field(line, "prof", profile);
  append_field(line, "strag", straggler ? 1 : 0);
  append_field(line, "vol", volume);
  append_field(line, "mask", mask_neurons);
  append_field(line, "tot", neuron_total);
  append_field(line, "train_s", train_seconds);
  append_field(line, "up_s", upload_seconds);
  append_field(line, "up_mb", upload_mb);
  append_field(line, "loss", mean_loss);
  commit(line);
}

void RunJournal::transfer(const Stamp& s, std::size_t bytes_on_wire,
                          int transmissions, int lost_frames, bool delivered,
                          bool deadline_missed, bool died,
                          double comm_seconds) {
  if (os_ == nullptr) return;
  std::string line = open_line("xfer", s, wall_ms());
  append_field(line, "bytes", bytes_on_wire);
  append_field(line, "tx", transmissions);
  append_field(line, "lost", lost_frames);
  append_field(line, "ok", delivered ? 1 : 0);
  append_field(line, "miss", deadline_missed ? 1 : 0);
  append_field(line, "dead", died ? 1 : 0);
  append_field(line, "comm_s", comm_seconds);
  commit(line);
}

void RunJournal::codec(const Stamp& s, std::size_t bytes_in,
                       std::size_t bytes_out, double residual_norm) {
  if (os_ == nullptr) return;
  std::string line = open_line("codec", s, wall_ms());
  append_field(line, "in", bytes_in);
  append_field(line, "out", bytes_out);
  append_field(line, "res", residual_norm);
  commit(line);
}

void RunJournal::aggregation(const Stamp& s, double r_n, double alpha_share) {
  if (os_ == nullptr) return;
  std::string line = open_line("agg", s, wall_ms());
  append_field(line, "r_n", r_n);
  append_field(line, "alpha", alpha_share);
  commit(line);
}

void RunJournal::rotation(const Stamp& s, int forced, int cs0, int cs1,
                          int cs2, int cs3) {
  if (os_ == nullptr) return;
  std::string line = open_line("rot", s, wall_ms());
  append_field(line, "forced", forced);
  append_field(line, "cs0", cs0);
  append_field(line, "cs1", cs1);
  append_field(line, "cs2", cs2);
  append_field(line, "cs3", cs3);
  commit(line);
}

void RunJournal::network_round(const Stamp& s, std::size_t bytes_on_wire,
                               int participants, int delivered,
                               int lost_frames, int retransmits,
                               int deadline_misses, int deaths,
                               bool renormalized) {
  if (os_ == nullptr) return;
  std::string line = open_line("net_round", s, wall_ms());
  append_field(line, "bytes", bytes_on_wire);
  append_field(line, "n", participants);
  append_field(line, "okn", delivered);
  append_field(line, "lost", lost_frames);
  append_field(line, "retx", retransmits);
  append_field(line, "miss", deadline_misses);
  append_field(line, "dead", deaths);
  append_field(line, "renorm", renormalized ? 1 : 0);
  commit(line);
}

void RunJournal::tier_merge(const Stamp& s, std::string_view tier,
                            std::uint64_t frames_folded,
                            std::uint64_t bytes_forwarded, int deadline_misses,
                            int retransmits, int lost_frames,
                            double fold_seconds, std::uint64_t raw_bytes) {
  if (os_ == nullptr) return;
  std::string line = open_line("merge", s, wall_ms());
  append_string_field(line, "tier", tier);
  append_field(line, "frames", static_cast<long long>(frames_folded));
  append_field(line, "bytes", static_cast<long long>(bytes_forwarded));
  append_field(line, "raw", static_cast<long long>(raw_bytes));
  append_field(line, "miss", deadline_misses);
  append_field(line, "retx", retransmits);
  append_field(line, "lost", lost_frames);
  append_field(line, "fold_s", fold_seconds);
  commit(line);
}

void RunJournal::churn(const Stamp& s, int arrivals, int departures,
                       std::size_t population) {
  if (os_ == nullptr) return;
  std::string line = open_line("churn", s, wall_ms());
  append_field(line, "in", arrivals);
  append_field(line, "out", departures);
  append_field(line, "pop", population);
  commit(line);
}

void RunJournal::round_result(const Stamp& s, std::string_view strategy,
                              double accuracy, double mean_loss,
                              double upload_mb) {
  if (os_ == nullptr) return;
  std::string line = open_line("round", s, wall_ms());
  append_string_field(line, "strat", strategy);
  append_field(line, "acc", accuracy);
  append_field(line, "loss", mean_loss);
  append_field(line, "up_mb", upload_mb);
  commit(line);
}

void RunJournal::close() {
  if (os_ == nullptr) return;
  std::string line = open_line("run_end", Stamp{}, wall_ms());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    append_field(line, "events", static_cast<long long>(events_ + 1));
    line += "}\n";
    os_->write(line.data(), static_cast<std::streamsize>(line.size()));
    os_->flush();
    ++events_;
    closed_ = true;
  }
}

}  // namespace helios::obs
