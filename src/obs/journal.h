// Run journal — the flight recorder.
//
// An append-only JSONL event stream recording every round's lifecycle at
// per-device granularity: cohort draws, devices trained or skipped (hollow /
// dead), submodel mask sizes, upload attempts / retransmits / drops /
// deadline misses, frame wire bytes, aggregation weights and renormalized
// partial rounds, rotation pressure and churn. Where the metrics registry
// keeps aggregates and the dashboard keeps per-device *totals*, the journal
// keeps the individual events, so a finished run can be summarized, diffed
// against another run, or replayed into the dashboard after the fact
// (see obs/journal_reader.h and the `helios-journal` CLI).
//
// Line format (schema v1) — one flat JSON object per line, short keys:
//   {"v":1,"t":"train","r":3,"dev":7,"vt":1.25,"w":18.4, ...fields...}
//     v    schema version (on every line, so a file tail is self-describing)
//     t    event type
//     r    round / cycle id (-1 when not in a round)
//     dev  device id (-1 for fleet-level events)
//     vt   virtual-clock seconds at emission
//     w    wall-clock milliseconds since the journal opened
// Doubles are printed with %.17g, so a parse -> replay round trip is
// bit-exact.
//
// Event types:
//   run_start  run_end                   — journal lifecycle
//   cohort     {pop, act, sam}           — round cohort draw
//   skip       {why: "hollow" | "dead"}  — device not participating
//   train      {prof, strag, vol, mask, tot, train_s, up_s, up_mb, loss}
//   xfer       {bytes, tx, lost, ok, miss, dead, comm_s}
//   agg        {r_n, alpha}              — aggregation weight actually used
//   rot        {forced, cs0..cs3}        — rotation regulation snapshot
//   net_round  {bytes, n, okn, lost, retx, miss, dead, renorm}
//   merge      {tier, frames, bytes, miss, retx, lost, fold_s}
//                                        — one aggregator-tree tier's round
//                                          rollup (hierarchical runs only;
//                                          old readers may skip the type)
//   churn      {in, out, pop}
//   round      {strat, acc, loss, up_mb} — cycle completed
//
// Threading: writes are serialized by one mutex (journaling is for insight;
// events are rare next to kernel work). Per-device causality is preserved —
// one device's events appear in their program order — while events of
// different devices may interleave differently across thread counts, which
// is why the reader's summaries aggregate per device before comparing.
//
// Disabled path: a RunJournal constructed with a null stream ignores every
// call after one branch — no clock read, no allocation, no I/O.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>

namespace helios::obs {

class RunJournal {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Journals to `os` (not owned; must outlive the journal). A null stream
  /// produces a disabled journal: every record call returns after one
  /// branch. Writes the run_start line immediately when enabled.
  explicit RunJournal(std::ostream* os);

  /// Resume variant (checkpoint/resume): continues an existing journal whose
  /// first `resumed_events` events are already on disk — no run_start line is
  /// written and the event counter starts at `resumed_events`, so the
  /// eventual run_end's count covers the whole run seamlessly, with no
  /// duplicated or missing events across the crash.
  RunJournal(std::ostream* os, std::uint64_t resumed_events);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  bool enabled() const { return os_ != nullptr; }
  std::uint64_t event_count() const { return events_; }

  /// Common stamps carried by every event. `round` / `device` use -1 for
  /// "not applicable"; `vt` is the virtual clock in seconds.
  struct Stamp {
    int round = -1;
    int device = -1;
    double vt = 0.0;
  };

  // ---- Event records (no-ops when disabled) ----

  void cohort(const Stamp& s, std::size_t population, std::size_t active,
              std::size_t sampled);
  /// A device sitting a round out: `why` is "hollow" (active but not
  /// sampled, replica hibernated) or "dead" (deactivated).
  void skip(const Stamp& s, std::string_view why);
  void train(const Stamp& s, std::string_view profile, bool straggler,
             double volume, int mask_neurons, int neuron_total,
             double train_seconds, double upload_seconds, double upload_mb,
             double mean_loss);
  void transfer(const Stamp& s, std::size_t bytes_on_wire, int transmissions,
                int lost_frames, bool delivered, bool deadline_missed,
                bool died, double comm_seconds);
  /// One quantized upload encode: fp32-dense equivalent bytes in, actual
  /// wire bytes out, and the client's carried error-feedback residual norm.
  void codec(const Stamp& s, std::size_t bytes_in, std::size_t bytes_out,
             double residual_norm);
  void aggregation(const Stamp& s, double r_n, double alpha_share);
  void rotation(const Stamp& s, int forced, int cs0, int cs1, int cs2,
                int cs3);
  /// One synchronous round's network closure; `renormalized` marks a
  /// partial round (fewer arrivals than participants, weights re-spread).
  void network_round(const Stamp& s, std::size_t bytes_on_wire,
                     int participants, int delivered, int lost_frames,
                     int retransmits, int deadline_misses, int deaths,
                     bool renormalized);
  /// One aggregator-tree tier's rollup for the round (`tier` is "edge",
  /// "regional" or "root"). Schema-compatible addition: readers that predate
  /// it skip unknown event types.
  void tier_merge(const Stamp& s, std::string_view tier,
                  std::uint64_t frames_folded, std::uint64_t bytes_forwarded,
                  int deadline_misses, int retransmits, int lost_frames,
                  double fold_seconds, std::uint64_t raw_bytes = 0);
  void churn(const Stamp& s, int arrivals, int departures,
             std::size_t population);
  void round_result(const Stamp& s, std::string_view strategy,
                    double accuracy, double mean_loss, double upload_mb);

  /// Writes the run_end line (once); further events are dropped.
  void close();

 private:
  /// Appends one finished line under the lock and counts it.
  void commit(std::string& line);
  double wall_ms() const;

  std::ostream* os_;  // null = disabled
  std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t events_ = 0;
  bool closed_ = false;
};

}  // namespace helios::obs
