#include "obs/journal_reader.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "obs/journal.h"
#include "obs/metrics.h"  // json_escape
#include "util/stats.h"
#include "util/table.h"

namespace helios::obs {

std::vector<JournalEvent> read_journal(std::istream& is) {
  std::vector<JournalEvent> events;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    util::JsonValue v;
    try {
      v = util::JsonValue::parse(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("journal line " + std::to_string(lineno) +
                               ": " + e.what());
    }
    if (!v.is_object()) {
      throw std::runtime_error("journal line " + std::to_string(lineno) +
                               ": not an object");
    }
    const int schema = static_cast<int>(v.number_or("v", 0));
    if (schema != RunJournal::kSchemaVersion) {
      throw std::runtime_error("journal line " + std::to_string(lineno) +
                               ": unsupported schema v" +
                               std::to_string(schema));
    }
    JournalEvent ev;
    ev.type = v.string_or("t", "");
    ev.round = static_cast<int>(v.number_or("r", -1));
    ev.device = static_cast<int>(v.number_or("dev", -1));
    ev.vt = v.number_or("vt", 0.0);
    ev.wall_ms = v.number_or("w", 0.0);
    ev.fields = std::move(v);
    events.push_back(std::move(ev));
  }
  return events;
}

JournalSummary summarize_journal(const std::vector<JournalEvent>& events) {
  JournalSummary s;
  s.events = events.size();
  for (const JournalEvent& ev : events) {
    const util::JsonValue& f = ev.fields;
    s.schema = std::max(s.schema, static_cast<int>(f.number_or("v", 0)));
    s.wall_seconds = std::max(s.wall_seconds, ev.wall_ms / 1e3);
    if (ev.type == "train") {
      DeviceJournal& d = s.devices[ev.device];
      d.device = ev.device;
      if (d.profile.empty()) d.profile = f.string_or("prof", "");
      d.straggler = f.number_or("strag", 0) != 0;
      ++d.trained_rounds;
      const double vol = f.number_or("vol", 1.0);
      if (d.first_volume < 0.0) d.first_volume = vol;
      d.last_volume = vol;
      d.compute_seconds += f.number_or("train_s", 0.0);
      d.comm_seconds += f.number_or("up_s", 0.0);
    } else if (ev.type == "skip") {
      DeviceJournal& d = s.devices[ev.device];
      d.device = ev.device;
      if (f.string_or("why", "") == "dead") {
        ++d.skipped_dead;
      } else {
        ++d.skipped_hollow;
      }
    } else if (ev.type == "agg") {
      DeviceJournal& d = s.devices[ev.device];
      d.device = ev.device;
      d.r_n_sum += f.number_or("r_n", 0.0);
      ++d.r_n_count;
    } else if (ev.type == "xfer") {
      DeviceJournal& d = s.devices[ev.device];
      d.device = ev.device;
      const auto bytes = static_cast<long long>(f.number_or("bytes", 0.0));
      const int tx = static_cast<int>(f.number_or("tx", 0.0));
      d.wire_bytes += bytes;
      d.frames_sent += tx;
      d.frames_lost += static_cast<int>(f.number_or("lost", 0.0));
      d.retransmits += std::max(0, tx - 1);
      if (f.number_or("ok", 1.0) == 0.0) ++d.drops;
      if (f.number_or("miss", 0.0) != 0.0) ++d.deadline_misses;
      if (f.number_or("dead", 0.0) != 0.0) d.dead = true;
      s.bytes_on_wire += bytes;
      s.frames_sent += tx;
      s.frames_lost += static_cast<int>(f.number_or("lost", 0.0));
      s.retransmits += std::max(0, tx - 1);
      if (f.number_or("ok", 1.0) == 0.0) ++s.drops;
      if (f.number_or("miss", 0.0) != 0.0) ++s.deadline_misses;
      if (f.number_or("dead", 0.0) != 0.0) ++s.deaths;
    } else if (ev.type == "net_round") {
      if (f.number_or("renorm", 0.0) != 0.0) ++s.renormalized_rounds;
    } else if (ev.type == "merge") {
      TierTotals& t = s.tiers[f.string_or("tier", "?")];
      ++t.merges;
      t.frames_folded += static_cast<long long>(f.number_or("frames", 0.0));
      t.bytes_forwarded += static_cast<long long>(f.number_or("bytes", 0.0));
      t.raw_bytes += static_cast<long long>(f.number_or("raw", 0.0));
      t.deadline_misses += static_cast<int>(f.number_or("miss", 0.0));
      t.retransmits += static_cast<int>(f.number_or("retx", 0.0));
      t.lost_frames += static_cast<int>(f.number_or("lost", 0.0));
      t.fold_seconds += f.number_or("fold_s", 0.0);
    } else if (ev.type == "codec") {
      DeviceJournal& d = s.devices[ev.device];
      d.device = ev.device;
      const auto in = static_cast<long long>(f.number_or("in", 0.0));
      const auto out = static_cast<long long>(f.number_or("out", 0.0));
      d.codec_raw_bytes += in;
      d.codec_wire_bytes += out;
      s.codec_raw_bytes += in;
      s.codec_wire_bytes += out;
    } else if (ev.type == "churn") {
      s.churn_arrivals += static_cast<int>(f.number_or("in", 0.0));
      s.churn_departures += static_cast<int>(f.number_or("out", 0.0));
    } else if (ev.type == "round") {
      s.rounds = std::max(s.rounds, ev.round + 1);
      s.strategy = f.string_or("strat", s.strategy);
      s.final_accuracy = f.number_or("acc", s.final_accuracy);
      s.final_virtual_time = ev.vt;
    }
    // Unknown types (newer writers) are intentionally ignored.
  }
  return s;
}

namespace {

struct Percentiles {
  double p50 = 0.0, p90 = 0.0, max = 0.0;
};

Percentiles percentiles_of(std::vector<double>& xs) {
  Percentiles p;
  if (xs.empty()) return p;
  p.p50 = util::percentile(xs, 50.0);
  p.p90 = util::percentile(xs, 90.0);
  p.max = *std::max_element(xs.begin(), xs.end());
  return p;
}

}  // namespace

void write_summary(std::ostream& os, const JournalSummary& s) {
  os << "run: " << (s.strategy.empty() ? "?" : s.strategy) << ", "
     << s.rounds << " rounds, " << s.devices.size() << " devices, "
     << s.events << " events (schema v" << s.schema << ")\n";
  os << "final: accuracy " << util::Table::num(s.final_accuracy * 100.0, 2)
     << "%, virtual time " << util::Table::num(s.final_virtual_time, 3)
     << " s, wall " << util::Table::num(s.wall_seconds, 2) << " s\n";
  os << "network: " << util::Table::num(
            static_cast<double>(s.bytes_on_wire) / 1e6, 2)
     << " MB on wire, " << s.frames_sent << " frames (" << s.frames_lost
     << " lost, " << s.retransmits << " retx), " << s.drops << " drops, "
     << s.deadline_misses << " deadline misses, " << s.deaths << " deaths, "
     << s.renormalized_rounds << " renormalized rounds\n";
  if (s.codec_raw_bytes > 0 && s.codec_raw_bytes != s.codec_wire_bytes) {
    const double ratio =
        s.codec_wire_bytes > 0
            ? static_cast<double>(s.codec_raw_bytes) /
                  static_cast<double>(s.codec_wire_bytes)
            : 0.0;
    os << "codec: "
       << util::Table::num(static_cast<double>(s.codec_raw_bytes) / 1e6, 2)
       << " MB fp32-dense -> "
       << util::Table::num(static_cast<double>(s.codec_wire_bytes) / 1e6, 2)
       << " MB on wire (" << util::Table::num(ratio, 2) << "x, saved "
       << util::Table::num(
              static_cast<double>(s.codec_raw_bytes - s.codec_wire_bytes) /
                  1e6,
              2)
       << " MB)\n";
  }
  if (s.churn_arrivals > 0 || s.churn_departures > 0) {
    os << "churn: +" << s.churn_arrivals << " / -" << s.churn_departures
       << " devices\n";
  }
  if (!s.tiers.empty()) {
    os << "hierarchy:\n";
    util::Table tiers({"tier", "merges", "frames folded", "fwd (MB)",
                       "raw (MB)", "tier misses", "retx", "lost", "fold (s)"});
    for (const auto& [name, t] : s.tiers) {
      tiers.add_row({name, std::to_string(t.merges),
                     std::to_string(t.frames_folded),
                     util::Table::num(
                         static_cast<double>(t.bytes_forwarded) / 1e6, 2),
                     util::Table::num(
                         static_cast<double>(t.raw_bytes) / 1e6, 2),
                     std::to_string(t.deadline_misses),
                     std::to_string(t.retransmits),
                     std::to_string(t.lost_frames),
                     util::Table::num(t.fold_seconds, 3)});
    }
    tiers.print(os);
  }

  std::vector<double> trained, skipped, drift, r_n;
  int stragglers = 0, dead = 0;
  for (const auto& [id, d] : s.devices) {
    trained.push_back(d.trained_rounds);
    skipped.push_back(d.skipped_hollow + d.skipped_dead);
    if (d.straggler && d.first_volume > 0.0) {
      drift.push_back(d.last_volume - d.first_volume);
    }
    if (d.r_n_count > 0) r_n.push_back(d.mean_r_n());
    stragglers += d.straggler ? 1 : 0;
    dead += d.dead ? 1 : 0;
  }
  os << "participation: " << stragglers << " stragglers, " << dead
     << " dead\n";
  util::Table table({"per device", "p50", "p90", "max"});
  auto row = [&](const char* name, std::vector<double>& xs, int prec) {
    if (xs.empty()) return;
    const Percentiles p = percentiles_of(xs);
    table.add_row({name, util::Table::num(p.p50, prec),
                   util::Table::num(p.p90, prec),
                   util::Table::num(p.max, prec)});
  };
  row("rounds trained", trained, 0);
  row("rounds skipped", skipped, 0);
  row("mean r_n", r_n, 3);
  row("volume drift", drift, 3);
  table.print(os);
}

void write_summary_json(std::ostream& os, const JournalSummary& s) {
  os << "{\"schema\":" << s.schema << ",\"strategy\":\"";
  json_escape(os, s.strategy);
  os << "\",\"rounds\":" << s.rounds << ",\"events\":" << s.events
     << ",\"devices\":" << s.devices.size()
     << ",\"final_accuracy\":" << s.final_accuracy
     << ",\"final_virtual_time\":" << s.final_virtual_time
     << ",\"wall_seconds\":" << s.wall_seconds
     << ",\"bytes_on_wire\":" << s.bytes_on_wire
     << ",\"frames_sent\":" << s.frames_sent
     << ",\"frames_lost\":" << s.frames_lost
     << ",\"retransmits\":" << s.retransmits << ",\"drops\":" << s.drops
     << ",\"deadline_misses\":" << s.deadline_misses
     << ",\"deaths\":" << s.deaths
     << ",\"renormalized_rounds\":" << s.renormalized_rounds
     << ",\"churn_arrivals\":" << s.churn_arrivals
     << ",\"churn_departures\":" << s.churn_departures
     << ",\"codec_raw_bytes\":" << s.codec_raw_bytes
     << ",\"codec_wire_bytes\":" << s.codec_wire_bytes;
  if (!s.tiers.empty()) {
    os << ",\"tiers\":{";
    bool first_tier = true;
    for (const auto& [name, t] : s.tiers) {
      if (!first_tier) os << ',';
      first_tier = false;
      os << '"';
      json_escape(os, name);
      os << "\":{\"merges\":" << t.merges
         << ",\"frames_folded\":" << t.frames_folded
         << ",\"bytes_forwarded\":" << t.bytes_forwarded
         << ",\"raw_bytes\":" << t.raw_bytes
         << ",\"deadline_misses\":" << t.deadline_misses
         << ",\"retransmits\":" << t.retransmits
         << ",\"lost_frames\":" << t.lost_frames
         << ",\"fold_seconds\":" << t.fold_seconds << '}';
    }
    os << '}';
  }
  os << ",\"per_device\":[";
  bool first = true;
  for (const auto& [id, d] : s.devices) {
    if (!first) os << ',';
    first = false;
    os << "{\"device\":" << id << ",\"profile\":\"";
    json_escape(os, d.profile);
    os << "\",\"straggler\":" << (d.straggler ? "true" : "false")
       << ",\"trained_rounds\":" << d.trained_rounds
       << ",\"skipped_hollow\":" << d.skipped_hollow
       << ",\"skipped_dead\":" << d.skipped_dead
       << ",\"first_volume\":" << d.first_volume
       << ",\"last_volume\":" << d.last_volume
       << ",\"mean_r_n\":" << d.mean_r_n()
       << ",\"compute_seconds\":" << d.compute_seconds
       << ",\"comm_seconds\":" << d.comm_seconds
       << ",\"wire_bytes\":" << d.wire_bytes
       << ",\"codec_raw_bytes\":" << d.codec_raw_bytes
       << ",\"codec_wire_bytes\":" << d.codec_wire_bytes
       << ",\"frames_sent\":" << d.frames_sent
       << ",\"frames_lost\":" << d.frames_lost
       << ",\"retransmits\":" << d.retransmits << ",\"drops\":" << d.drops
       << ",\"deadline_misses\":" << d.deadline_misses
       << ",\"dead\":" << (d.dead ? "true" : "false") << '}';
  }
  os << "]}\n";
}

void replay_dashboard(const std::vector<JournalEvent>& events,
                      StragglerDashboard& dash) {
  for (const JournalEvent& ev : events) {
    const util::JsonValue& f = ev.fields;
    if (ev.type == "train") {
      // Mirrors TelemetrySink::record_client_cycle's dashboard update.
      dash.update(ev.device, [&](DeviceStats& d) {
        if (d.name.empty()) d.name = f.string_or("prof", "");
        d.straggler = f.number_or("strag", 0.0) != 0.0;
        d.volume = f.number_or("vol", 1.0);
        ++d.cycles;
        d.trained_neurons = static_cast<int>(f.number_or("mask", 0.0));
        d.neuron_total = static_cast<int>(f.number_or("tot", 0.0));
        d.compute_seconds += f.number_or("train_s", 0.0);
        d.comm_seconds += f.number_or("up_s", 0.0);
        d.upload_mb += f.number_or("up_mb", 0.0);
        d.last_loss = f.number_or("loss", 0.0);
      });
    } else if (ev.type == "agg") {
      // Mirrors record_aggregation_weight.
      dash.update(ev.device, [&](DeviceStats& d) {
        d.r_n = f.number_or("r_n", 1.0);
        d.r_n_sum += f.number_or("r_n", 1.0);
        ++d.r_n_count;
        d.alpha_n = f.number_or("alpha", 0.0);
      });
    } else if (ev.type == "rot") {
      // Mirrors record_rotation.
      dash.update(ev.device, [&](DeviceStats& d) {
        d.forced_neurons += static_cast<long long>(f.number_or("forced", 0.0));
        d.cs_hist = std::array<int, 4>{
            static_cast<int>(f.number_or("cs0", 0.0)),
            static_cast<int>(f.number_or("cs1", 0.0)),
            static_cast<int>(f.number_or("cs2", 0.0)),
            static_cast<int>(f.number_or("cs3", 0.0))};
      });
    } else if (ev.type == "merge") {
      // Mirrors record_tier_merge: one dashboard tier update per merge
      // event, so replayed tier totals match the live dashboard's.
      dash.record_tier(
          f.string_or("tier", "?"),
          static_cast<std::uint64_t>(f.number_or("frames", 0.0)),
          static_cast<std::uint64_t>(f.number_or("bytes", 0.0)),
          static_cast<int>(f.number_or("miss", 0.0)),
          static_cast<int>(f.number_or("retx", 0.0)),
          static_cast<int>(f.number_or("lost", 0.0)),
          f.number_or("fold_s", 0.0),
          static_cast<std::uint64_t>(f.number_or("raw", 0.0)));
    } else if (ev.type == "codec") {
      // Mirrors record_codec's dashboard update.
      dash.update(ev.device, [&](DeviceStats& d) {
        d.bytes_saved += static_cast<long long>(f.number_or("in", 0.0)) -
                         static_cast<long long>(f.number_or("out", 0.0));
      });
    } else if (ev.type == "xfer") {
      // Mirrors record_device_transfer.
      dash.update(ev.device, [&](DeviceStats& d) {
        const int tx = static_cast<int>(f.number_or("tx", 0.0));
        d.wire_bytes += static_cast<long long>(f.number_or("bytes", 0.0));
        d.frames_sent += tx;
        d.frames_lost += static_cast<int>(f.number_or("lost", 0.0));
        d.retransmits += std::max(0, tx - 1);
        if (f.number_or("ok", 1.0) == 0.0) ++d.drops;
        if (f.number_or("dead", 0.0) != 0.0) d.dead = true;
      });
    }
  }
}

namespace {

struct DiffRow {
  const char* field;
  double a;
  double b;
};

int emit_diff_rows(std::ostream& os, const char* scope,
                   std::span<const DiffRow> rows) {
  int differing = 0;
  util::Table table({"field", "a", "b", "delta"});
  for (const DiffRow& r : rows) {
    if (r.a == r.b) continue;
    ++differing;
    table.add_row({r.field, util::Table::num(r.a, 4),
                   util::Table::num(r.b, 4),
                   util::Table::num(r.b - r.a, 4)});
  }
  if (differing > 0) {
    os << scope << ":\n";
    table.print(os);
  }
  return differing;
}

}  // namespace

int write_diff(std::ostream& os, const JournalSummary& a,
               const JournalSummary& b) {
  const DiffRow run_rows[] = {
      {"rounds", static_cast<double>(a.rounds), static_cast<double>(b.rounds)},
      {"devices", static_cast<double>(a.devices.size()),
       static_cast<double>(b.devices.size())},
      {"final_accuracy", a.final_accuracy, b.final_accuracy},
      {"final_virtual_time", a.final_virtual_time, b.final_virtual_time},
      {"bytes_on_wire", static_cast<double>(a.bytes_on_wire),
       static_cast<double>(b.bytes_on_wire)},
      {"frames_sent", static_cast<double>(a.frames_sent),
       static_cast<double>(b.frames_sent)},
      {"frames_lost", static_cast<double>(a.frames_lost),
       static_cast<double>(b.frames_lost)},
      {"retransmits", static_cast<double>(a.retransmits),
       static_cast<double>(b.retransmits)},
      {"drops", static_cast<double>(a.drops), static_cast<double>(b.drops)},
      {"deadline_misses", static_cast<double>(a.deadline_misses),
       static_cast<double>(b.deadline_misses)},
      {"deaths", static_cast<double>(a.deaths),
       static_cast<double>(b.deaths)},
      {"renormalized_rounds", static_cast<double>(a.renormalized_rounds),
       static_cast<double>(b.renormalized_rounds)},
      {"churn_arrivals", static_cast<double>(a.churn_arrivals),
       static_cast<double>(b.churn_arrivals)},
      {"churn_departures", static_cast<double>(a.churn_departures),
       static_cast<double>(b.churn_departures)},
      {"codec_raw_bytes", static_cast<double>(a.codec_raw_bytes),
       static_cast<double>(b.codec_raw_bytes)},
      {"codec_wire_bytes", static_cast<double>(a.codec_wire_bytes),
       static_cast<double>(b.codec_wire_bytes)},
  };
  int differing = emit_diff_rows(os, "run", run_rows);

  // Per-device diff over the union of device ids.
  for (auto ita = a.devices.begin(), itb = b.devices.begin();
       ita != a.devices.end() || itb != b.devices.end();) {
    int id = 0;
    const DeviceJournal* da = nullptr;
    const DeviceJournal* db = nullptr;
    if (itb == b.devices.end() ||
        (ita != a.devices.end() && ita->first <= itb->first)) {
      id = ita->first;
      da = &ita->second;
      if (itb != b.devices.end() && itb->first == id) db = &itb->second;
    } else {
      id = itb->first;
      db = &itb->second;
    }
    static const DeviceJournal kEmpty;
    const DeviceJournal& x = da != nullptr ? *da : kEmpty;
    const DeviceJournal& y = db != nullptr ? *db : kEmpty;
    const DiffRow device_rows[] = {
        {"trained_rounds", static_cast<double>(x.trained_rounds),
         static_cast<double>(y.trained_rounds)},
        {"skipped", static_cast<double>(x.skipped_hollow + x.skipped_dead),
         static_cast<double>(y.skipped_hollow + y.skipped_dead)},
        {"mean_r_n", x.mean_r_n(), y.mean_r_n()},
        {"last_volume", x.last_volume, y.last_volume},
        {"wire_bytes", static_cast<double>(x.wire_bytes),
         static_cast<double>(y.wire_bytes)},
        {"retransmits", static_cast<double>(x.retransmits),
         static_cast<double>(y.retransmits)},
        {"drops", static_cast<double>(x.drops),
         static_cast<double>(y.drops)},
        {"dead", x.dead ? 1.0 : 0.0, y.dead ? 1.0 : 0.0},
    };
    const std::string scope = "device " + std::to_string(id);
    differing += emit_diff_rows(os, scope.c_str(), device_rows);
    if (da != nullptr) ++ita;
    if (db != nullptr) ++itb;
  }
  if (differing == 0) os << "journals agree on all compared fields\n";
  return differing;
}

}  // namespace helios::obs
