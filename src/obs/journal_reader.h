// Reading side of the run journal (obs/journal.h): parse a JSONL stream
// back into events, aggregate them into a run summary (per-device
// participation, straggler drift, loss / retransmit breakdown), diff two
// runs, and replay a journal into a StragglerDashboard that matches the
// live run's dashboard bit-for-bit.
//
// Summaries aggregate per device before rendering, so two journals of the
// same run recorded at different thread counts — whose lines interleave
// differently — summarize identically.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/dashboard.h"
#include "util/json.h"

namespace helios::obs {

/// One parsed journal line: the common stamps plus the raw fields.
struct JournalEvent {
  std::string type;
  int round = -1;
  int device = -1;
  double vt = 0.0;
  double wall_ms = 0.0;
  util::JsonValue fields;  // the whole line object (stamps included)
};

/// Parses every line of a journal. Throws std::runtime_error on a
/// malformed line (with its line number) or an unsupported schema version.
/// Unknown event types are preserved — summaries simply ignore them — so
/// old readers tolerate newer writers.
std::vector<JournalEvent> read_journal(std::istream& is);

/// Per-device aggregates a summary reports (a superset of what the
/// dashboard keeps, plus participation bookkeeping).
struct DeviceJournal {
  int device = -1;
  std::string profile;
  bool straggler = false;
  int trained_rounds = 0;
  int skipped_hollow = 0;
  int skipped_dead = 0;
  double first_volume = -1.0;  // straggler drift: volume at first
  double last_volume = -1.0;   // participation vs at last
  double r_n_sum = 0.0;
  int r_n_count = 0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  long long wire_bytes = 0;
  /// From "codec" events: fp32-dense bytes the update would have cost vs
  /// what the wire codec actually encoded (equal when the codec is fp32).
  long long codec_raw_bytes = 0;
  long long codec_wire_bytes = 0;
  int frames_sent = 0;
  int frames_lost = 0;
  int retransmits = 0;
  int drops = 0;
  int deadline_misses = 0;
  bool dead = false;

  double mean_r_n() const {
    return r_n_count > 0 ? r_n_sum / r_n_count : 1.0;
  }
};

struct JournalSummary {
  int schema = 0;
  std::uint64_t events = 0;
  int rounds = 0;  // max round id + 1 over round events
  std::string strategy;
  double final_accuracy = 0.0;
  double final_virtual_time = 0.0;
  double wall_seconds = 0.0;  // last event's wall stamp

  // Fleet-level totals.
  long long bytes_on_wire = 0;
  int frames_sent = 0;
  int frames_lost = 0;
  int retransmits = 0;
  int drops = 0;
  int deadline_misses = 0;
  int deaths = 0;
  int renormalized_rounds = 0;
  int churn_arrivals = 0;
  int churn_departures = 0;
  /// Wire-codec totals over "codec" events (zero when the run never
  /// quantized): fp32-dense baseline vs encoded bytes.
  long long codec_raw_bytes = 0;
  long long codec_wire_bytes = 0;

  std::map<int, DeviceJournal> devices;  // ordered by device id

  /// Per-tier rollups from "merge" events (hierarchical aggregation runs
  /// only; empty for flat runs). Keyed by tier name ("edge" < "regional" <
  /// "root"), same shape as the live dashboard's TierTotals.
  std::map<std::string, TierTotals> tiers;
};

JournalSummary summarize_journal(const std::vector<JournalEvent>& events);

/// Human-readable summary: run header, loss/retx breakdown, per-device
/// participation percentiles and the straggler-drift table.
void write_summary(std::ostream& os, const JournalSummary& s);
/// Machine-readable equivalent.
void write_summary_json(std::ostream& os, const JournalSummary& s);

/// Replays a journal into a dashboard by applying each event exactly as the
/// live TelemetrySink recorders would have: rendering the result matches
/// the live run's dashboard output byte-for-byte. Fills `dash` in place
/// (the dashboard owns a mutex, so it cannot be returned by value).
void replay_dashboard(const std::vector<JournalEvent>& events,
                      StragglerDashboard& dash);

/// Field-by-field numeric diff of two run summaries; returns the number of
/// differing fields (0 = the runs agree on everything compared).
int write_diff(std::ostream& os, const JournalSummary& a,
               const JournalSummary& b);

}  // namespace helios::obs
