#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace helios::obs {

Histogram::Histogram(HistogramOptions opts) {
  if (opts.lowest <= 0.0 || opts.growth <= 1.0 || opts.buckets < 1) {
    throw std::invalid_argument("Histogram: need lowest > 0, growth > 1, "
                                "buckets >= 1");
  }
  bounds_.resize(static_cast<std::size_t>(opts.buckets));
  double b = opts.lowest;
  for (double& bound : bounds_) {
    bound = b;
    b *= opts.growth;
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::bucket_index(double v) const {
  // Buckets are (bounds_[i-1], bounds_[i]]; anything above the last finite
  // bound lands in the overflow slot bounds_.size().
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double v) {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    std::string_view name, LabelSet&& labels, Kind kind,
    const HistogramOptions* opts) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : series_) {
    if (s->name == name && s->labels == labels) {
      if (s->kind != kind) {
        throw std::logic_error("MetricsRegistry: series '" +
                               std::string(name) +
                               "' already registered with another type");
      }
      return *s;
    }
  }
  auto s = std::make_unique<Series>();
  s->name = std::string(name);
  s->labels = std::move(labels);
  s->kind = kind;
  switch (kind) {
    case Kind::kCounter: s->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: s->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      s->histogram = std::make_unique<Histogram>(opts ? *opts
                                                      : HistogramOptions{});
      break;
  }
  series_.push_back(std::move(s));
  return *series_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::kCounter, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, LabelSet labels,
                                      HistogramOptions opts) {
  return *find_or_create(name, std::move(labels), Kind::kHistogram, &opts)
              .histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

namespace {

void write_labels_json(std::ostream& os, const LabelSet& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ',';
    os << '"';
    json_escape(os, labels[i].first);
    os << "\":\"";
    json_escape(os, labels[i].second);
    os << '"';
  }
  os << '}';
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; Helios uses dotted names.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Prometheus label values escape backslash, double quote and newline
/// (exposition format text/plain 0.0.4).
void prom_escape(std::ostream& os, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

void write_labels_prom(std::ostream& os, const LabelSet& labels,
                       const char* extra_key = nullptr,
                       const std::string& extra_value = {}) {
  if (labels.empty() && !extra_key) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << prom_name(k) << "=\"";
    prom_escape(os, v);
    os << '"';
  }
  if (extra_key) {
    if (!first) os << ',';
    os << extra_key << "=\"";
    prom_escape(os, extra_value);
    os << '"';
  }
  os << '}';
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "[\n";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = *series_[i];
    if (i) os << ",\n";
    os << "  {\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"labels\":";
    write_labels_json(os, s.labels);
    switch (s.kind) {
      case Kind::kCounter:
        os << ",\"type\":\"counter\",\"value\":"
           << format_double(s.counter->value());
        break;
      case Kind::kGauge:
        os << ",\"type\":\"gauge\",\"value\":"
           << format_double(s.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        os << ",\"type\":\"histogram\",\"count\":" << h.count()
           << ",\"sum\":" << format_double(h.sum()) << ",\"buckets\":[";
        for (std::size_t b = 0; b <= h.bucket_count(); ++b) {
          if (b) os << ',';
          const double le = b < h.bucket_count()
                                ? h.upper_bound(b)
                                : std::numeric_limits<double>::infinity();
          os << "{\"le\":";
          if (std::isinf(le)) {
            os << "\"+Inf\"";
          } else {
            os << format_double(le);
          }
          os << ",\"n\":" << h.bucket(b) << '}';
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "\n]\n";
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string last_family;
  for (const auto& sp : series_) {
    const Series& s = *sp;
    const std::string family = prom_name(s.name);
    if (family != last_family) {
      const char* type = s.kind == Kind::kCounter   ? "counter"
                         : s.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      // The dotted registry name doubles as the help string: it is the one
      // piece of metadata the exposition would otherwise lose to prom_name's
      // character mangling.
      os << "# HELP " << family << ' ' << s.name << '\n';
      os << "# TYPE " << family << ' ' << type << '\n';
      last_family = family;
    }
    switch (s.kind) {
      case Kind::kCounter:
      case Kind::kGauge: {
        const double v = s.kind == Kind::kCounter ? s.counter->value()
                                                  : s.gauge->value();
        os << family;
        write_labels_prom(os, s.labels);
        os << ' ' << format_double(v) << '\n';
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= h.bucket_count(); ++b) {
          cumulative += h.bucket(b);
          const std::string le =
              b < h.bucket_count() ? format_double(h.upper_bound(b)) : "+Inf";
          os << family << "_bucket";
          write_labels_prom(os, s.labels, "le", le);
          os << ' ' << cumulative << '\n';
        }
        os << family << "_sum";
        write_labels_prom(os, s.labels);
        os << ' ' << format_double(h.sum()) << '\n';
        os << family << "_count";
        write_labels_prom(os, s.labels);
        os << ' ' << h.count() << '\n';
        break;
      }
    }
  }
}

}  // namespace helios::obs
