// Metrics registry: named, labeled Counter / Gauge / Histogram instruments
// with JSON and Prometheus-text exporters.
//
// Design goals, in order:
//   1. Hot-path friendliness. Instruments are updated through atomics only
//      (no locks); callers resolve an instrument once (one mutex-guarded
//      registry lookup) and cache the reference. References stay valid for
//      the registry's lifetime — instruments are never moved or erased.
//   2. Label-first identity. A time series is (family name, label set);
//      labels carry the Helios dimensions (device, layer, cycle, strategy).
//   3. Self-describing export. `write_json` is the machine-readable dump
//      placed next to the CSV traces; `write_prometheus` emits the standard
//      text exposition format for scrape-style consumption.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace helios::obs {

/// Ordered key/value labels. Registry lookups canonicalize by sorting on
/// key, so {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} are one series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Lock-free add for atomic doubles (fetch_add on floating atomics is C++20
/// but not universally lowered; the CAS loop is portable and wait-free in
/// the uncontended single-writer case the simulator has).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing value.
class Counter {
 public:
  void add(double v = 1.0) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log-scale bucket layout: bucket i covers
/// (lowest * growth^(i-1), lowest * growth^i], bucket 0 covers
/// (-inf, lowest], plus an implicit +Inf overflow bucket.
struct HistogramOptions {
  double lowest = 1e-6;  // upper bound of the first bucket
  double growth = 4.0;   // per-bucket multiplier
  int buckets = 20;      // finite buckets (excluding +Inf)
};

/// Histogram with fixed log-scale buckets, atomically updated.
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  void observe(double v);

  /// Upper bound of finite bucket `i` (lowest * growth^i ... precomputed).
  double upper_bound(std::size_t i) const { return bounds_.at(i); }
  std::size_t bucket_count() const { return bounds_.size(); }  // finite only
  /// Index of the finite bucket `v` falls into; bucket_count() = overflow.
  std::size_t bucket_index(double v) const;

  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns all instruments; hands out stable references keyed by
/// (family, labels). Thread-safe; lookups lock, updates do not.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, LabelSet labels = {});
  Gauge& gauge(std::string_view name, LabelSet labels = {});
  Histogram& histogram(std::string_view name, LabelSet labels = {},
                       HistogramOptions opts = {});

  /// JSON array of every series: name, type, labels, value(s).
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition format ('.' in names becomes '_').
  void write_prometheus(std::ostream& os) const;

  std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    LabelSet labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(std::string_view name, LabelSet&& labels, Kind kind,
                         const HistogramOptions* opts);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Series>> series_;
};

/// JSON string escaping shared by the exporters and the trace writer.
void json_escape(std::ostream& os, std::string_view s);

}  // namespace helios::obs
