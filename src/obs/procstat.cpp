#include "obs/procstat.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace helios::obs {
namespace {

/// Parses a "VmRSS:   123456 kB" style line; returns kB or -1.
double parse_kb_line(const std::string& line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) return -1.0;
  double kb = -1.0;
  if (std::sscanf(line.c_str() + colon + 1, "%lf", &kb) != 1) return -1.0;
  return kb;
}

}  // namespace

ProcMemory read_proc_memory() {
  ProcMemory mem;
  std::ifstream status("/proc/self/status");
  if (status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmRSS:", 0) == 0) {
        const double kb = parse_kb_line(line);
        if (kb >= 0) {
          mem.rss_mb = kb / 1024.0;
          mem.ok = true;
        }
      } else if (line.rfind("VmHWM:", 0) == 0) {
        const double kb = parse_kb_line(line);
        if (kb >= 0) {
          mem.peak_rss_mb = kb / 1024.0;
          mem.ok = true;
        }
      }
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  if (mem.peak_rss_mb <= 0.0) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
      mem.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
      mem.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
      mem.ok = true;
    }
  }
#endif
  return mem;
}

void sample_process_memory(MetricsRegistry& metrics) {
  const ProcMemory mem = read_proc_memory();
  if (!mem.ok) return;
  if (mem.rss_mb > 0.0) metrics.gauge("helios.proc.rss_mb").set(mem.rss_mb);
  if (mem.peak_rss_mb > 0.0) {
    metrics.gauge("helios.proc.peak_rss_mb").set(mem.peak_rss_mb);
  }
}

}  // namespace helios::obs
