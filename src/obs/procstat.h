// Process-level resource probes: current and peak RSS, read from
// /proc/self/status (VmRSS / VmHWM) with a getrusage fallback for the peak
// on systems without procfs. Used by TelemetrySink::flush and the bench
// writers so every artifact reports memory the same way.
#pragma once

namespace helios::obs {

class MetricsRegistry;

struct ProcMemory {
  double rss_mb = 0.0;       // resident set right now (0 when unavailable)
  double peak_rss_mb = 0.0;  // high-water mark since process start
  bool ok = false;           // at least one of the two was read
};

/// Snapshot of the process's memory footprint.
ProcMemory read_proc_memory();

/// Sets the helios.proc.rss_mb / helios.proc.peak_rss_mb gauges from a
/// fresh snapshot (no-op when neither value is available).
void sample_process_memory(MetricsRegistry& metrics);

}  // namespace helios::obs
