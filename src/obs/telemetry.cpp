#include "obs/telemetry.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <system_error>

#include "obs/procstat.h"
#include "util/atomic_file.h"
#include "util/log.h"

namespace helios::obs {
namespace {

std::atomic<TelemetrySink*> g_sink{nullptr};

std::string device_label(int device) { return std::to_string(device); }

}  // namespace

TelemetrySink* global_sink() {
  return g_sink.load(std::memory_order_relaxed);
}

TelemetrySink::TelemetrySink(TelemetryConfig config)
    : config_(std::move(config)) {
  if (config_.tracing) {
    if (!config_.artifact_prefix.empty()) {
      trace_file_ = std::make_unique<std::ofstream>(
          config_.artifact_prefix + ".trace.json");
      tracer_ = std::make_unique<TraceWriter>(*trace_file_);
    } else {
      tracer_ = std::make_unique<TraceWriter>(trace_buffer_);
    }
    tracer_->name_process(1, "helios (wall clock)");
    tracer_->name_process(2, "helios (virtual time)");
  }
  if (config_.journal) {
    if (!config_.artifact_prefix.empty()) {
      const std::string path = config_.artifact_prefix + ".journal.jsonl";
      if (config_.journal_resume) {
        // Continue the crashed run's journal: drop any torn tail written
        // after the checkpoint, then append. The checkpointed offset is a
        // line boundary (the journal flushes before reporting its
        // position), so the file stays valid JSONL.
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
          std::filesystem::resize_file(path, config_.journal_resume_offset,
                                       ec);
        }
        // in|out|ate (not app): positions at the end immediately, so
        // tellp() — the next checkpoint's journal offset — is valid even
        // before the first new event lands.
        journal_file_ = std::make_unique<std::ofstream>(
            path, std::ios::in | std::ios::out | std::ios::ate);
        if (!journal_file_->is_open()) {
          // No prior journal survived (e.g. crash before the first flush):
          // start a fresh file but keep the resumed event counter.
          journal_file_ = std::make_unique<std::ofstream>(path);
        }
        journal_ = std::make_unique<RunJournal>(
            journal_file_.get(), config_.journal_resume_events);
      } else {
        journal_file_ = std::make_unique<std::ofstream>(path);
        journal_ = std::make_unique<RunJournal>(journal_file_.get());
      }
    } else if (config_.journal_resume) {
      journal_ = std::make_unique<RunJournal>(
          &journal_buffer_, config_.journal_resume_events);
    } else {
      journal_ = std::make_unique<RunJournal>(&journal_buffer_);
    }
  }
}

TelemetrySink::~TelemetrySink() {
  uninstall();
  flush();
}

void TelemetrySink::install() {
  g_sink.store(this, std::memory_order_release);
  set_active_tracer(tracer_.get());
  util::set_log_context_provider([this]() -> std::string {
    const int cycle = cycle_.load(std::memory_order_relaxed);
    const int device = device_.load(std::memory_order_relaxed);
    std::string out;
    if (cycle >= 0) out += "cycle=" + std::to_string(cycle);
    if (device >= 0) {
      if (!out.empty()) out += ' ';
      out += "device=" + std::to_string(device);
    }
    return out;
  });
}

void TelemetrySink::uninstall() {
  if (g_sink.load(std::memory_order_acquire) != this) return;
  g_sink.store(nullptr, std::memory_order_release);
  if (active_tracer() == tracer_.get()) set_active_tracer(nullptr);
  util::set_log_context_provider(nullptr);
}

void TelemetrySink::set_virtual_time(double seconds) {
  virtual_time_.store(seconds, std::memory_order_relaxed);
  if (tracer_) tracer_->set_virtual_time(seconds);
  metrics_.gauge("helios.run.virtual_time_seconds").set(seconds);
}

void TelemetrySink::record_client_cycle(
    int device, std::string_view profile_name, bool straggler, double volume,
    int trained_neurons, int neuron_total, double train_seconds,
    double upload_seconds, double upload_mb, double mean_loss) {
  const LabelSet labels{{"device", device_label(device)}};
  metrics_.counter("helios.client.cycles_total", labels).add(1.0);
  metrics_.counter("helios.client.upload_mb_total", labels).add(upload_mb);
  metrics_.histogram("helios.client.train_seconds", labels)
      .observe(train_seconds);
  metrics_.histogram("helios.client.upload_seconds", labels)
      .observe(upload_seconds);
  metrics_.gauge("helios.client.volume", labels).set(volume);
  metrics_.gauge("helios.client.mean_loss", labels).set(mean_loss);

  dashboard_.update(device, [&](DeviceStats& d) {
    if (d.name.empty()) d.name = std::string(profile_name);
    d.straggler = straggler;
    d.volume = volume;
    ++d.cycles;
    d.trained_neurons = trained_neurons;
    d.neuron_total = neuron_total;
    d.compute_seconds += train_seconds;
    d.comm_seconds += upload_seconds;
    d.upload_mb += upload_mb;
    d.last_loss = mean_loss;
  });

  if (journal_) {
    journal_->train(journal_stamp(device), profile_name, straggler, volume,
                    trained_neurons, neuron_total, train_seconds,
                    upload_seconds, upload_mb, mean_loss);
  }

  // Virtual-time Gantt: one "train" + one "upload" slab per cycle on the
  // device's track, starting at the sink's current virtual time (set by the
  // strategy when the cycle began).
  if (tracer_) {
    const double start_us = virtual_time() * 1e6;
    tracer_->complete("train", device, start_us, train_seconds * 1e6,
                      {{"device", device}, {"loss", mean_loss}});
    tracer_->complete("upload", device, start_us + train_seconds * 1e6,
                      upload_seconds * 1e6,
                      {{"device", device}, {"mb", upload_mb}});
    if (!profile_name.empty()) {
      tracer_->name_thread(device, profile_name, /*pid=*/2);
    }
  }
}

void TelemetrySink::record_aggregation_weight(int device, double r_n,
                                              double alpha_share) {
  const LabelSet labels{{"device", device_label(device)}};
  metrics_.gauge("helios.server.r_n", labels).set(r_n);
  metrics_.gauge("helios.server.alpha_share", labels).set(alpha_share);
  dashboard_.update(device, [&](DeviceStats& d) {
    d.r_n = r_n;
    d.r_n_sum += r_n;
    ++d.r_n_count;
    d.alpha_n = alpha_share;
  });
  if (journal_) {
    journal_->aggregation(journal_stamp(device), r_n, alpha_share);
  }
}

void TelemetrySink::record_rotation(int device, int forced_count,
                                    const std::array<int, 4>& cs_hist) {
  const LabelSet labels{{"device", device_label(device)}};
  metrics_.counter("helios.rotation.forced_total", labels)
      .add(static_cast<double>(forced_count));
  // C_s is small and integer-valued; log-scale buckets starting at 1 with
  // growth 2 give exact 0/1/2-ish resolution where it matters.
  metrics_.histogram("helios.rotation.skipped_cycles", labels,
                     HistogramOptions{1.0, 2.0, 6})
      .observe(static_cast<double>(cs_hist[1] + cs_hist[2] + cs_hist[3]));
  dashboard_.update(device, [&](DeviceStats& d) {
    d.forced_neurons += forced_count;
    d.cs_hist = cs_hist;
  });
  if (journal_) {
    journal_->rotation(journal_stamp(device), forced_count, cs_hist[0],
                       cs_hist[1], cs_hist[2], cs_hist[3]);
  }
}

void TelemetrySink::record_cycle_result(std::string_view strategy, int cycle,
                                        double virtual_time, double accuracy,
                                        double mean_loss, double upload_mb) {
  set_cycle(cycle);
  set_virtual_time(virtual_time);
  const LabelSet labels{{"strategy", std::string(strategy)}};
  metrics_.counter("helios.run.cycles_total", labels).add(1.0);
  metrics_.gauge("helios.run.accuracy", labels).set(accuracy);
  metrics_.gauge("helios.run.mean_loss", labels).set(mean_loss);
  metrics_.counter("helios.run.upload_mb_total", labels).add(upload_mb);
  if (tracer_) {
    tracer_->instant("cycle.complete",
                     {{"cycle", cycle},
                      {"accuracy", accuracy},
                      {"strategy", strategy}});
  }
  if (journal_) {
    journal_->round_result(RunJournal::Stamp{cycle, -1, virtual_time},
                           strategy, accuracy, mean_loss, upload_mb);
  }
}

void TelemetrySink::record_device_transfer(int device,
                                           std::size_t bytes_on_wire,
                                           int transmissions, int lost_frames,
                                           bool delivered,
                                           bool deadline_missed, bool died,
                                           double comm_seconds) {
  const LabelSet labels{{"device", device_label(device)}};
  metrics_.counter("helios.net.bytes_on_wire_total", labels)
      .add(static_cast<double>(bytes_on_wire));
  metrics_.counter("helios.net.frames_sent_total", labels)
      .add(static_cast<double>(transmissions));
  if (lost_frames > 0) {
    metrics_.counter("helios.net.frames_lost_total", labels)
        .add(static_cast<double>(lost_frames));
  }
  if (!delivered) metrics_.counter("helios.net.drops_total", labels).add(1.0);
  if (died) metrics_.counter("helios.net.device_deaths_total", labels).add(1.0);
  metrics_.histogram("helios.net.comm_seconds", labels).observe(comm_seconds);

  dashboard_.update(device, [&](DeviceStats& d) {
    d.wire_bytes += static_cast<long long>(bytes_on_wire);
    d.frames_sent += transmissions;
    d.frames_lost += lost_frames;
    d.retransmits += std::max(0, transmissions - 1);
    if (!delivered) ++d.drops;
    if (died) d.dead = true;
  });

  if (journal_) {
    journal_->transfer(journal_stamp(device), bytes_on_wire, transmissions,
                       lost_frames, delivered, deadline_missed, died,
                       comm_seconds);
  }

  if (tracer_ && died) {
    tracer_->instant("device.death", {{"device", device}});
  }
}

void TelemetrySink::record_network_round(std::size_t bytes_on_wire,
                                         int participants, int delivered,
                                         int lost_frames, int retransmits,
                                         int deadline_misses, int deaths) {
  metrics_.counter("helios.net.round_bytes_on_wire_total")
      .add(static_cast<double>(bytes_on_wire));
  metrics_.counter("helios.net.round_participants_total")
      .add(static_cast<double>(participants));
  metrics_.counter("helios.net.round_delivered_total")
      .add(static_cast<double>(delivered));
  metrics_.counter("helios.net.round_lost_total")
      .add(static_cast<double>(lost_frames));
  metrics_.counter("helios.net.round_retransmits_total")
      .add(static_cast<double>(retransmits));
  metrics_.counter("helios.net.deadline_missed_total")
      .add(static_cast<double>(deadline_misses));
  metrics_.counter("helios.net.deaths_total").add(static_cast<double>(deaths));
  if (journal_) {
    // A partial round (fewer arrivals than participants) makes the server
    // renormalize the aggregation weights over what actually arrived.
    journal_->network_round(journal_stamp(-1), bytes_on_wire, participants,
                            delivered, lost_frames, retransmits,
                            deadline_misses, deaths,
                            /*renormalized=*/delivered < participants);
  }
}

void TelemetrySink::record_codec(int device, std::size_t raw_bytes,
                                 std::size_t wire_bytes,
                                 double residual_norm) {
  const LabelSet labels{{"device", device_label(device)}};
  metrics_.counter("helios.codec.bytes_in_total", labels)
      .add(static_cast<double>(raw_bytes));
  metrics_.counter("helios.codec.bytes_out_total", labels)
      .add(static_cast<double>(wire_bytes));
  if (wire_bytes > 0) {
    metrics_.histogram("helios.codec.ratio")
        .observe(static_cast<double>(raw_bytes) /
                 static_cast<double>(wire_bytes));
  }
  metrics_.gauge("helios.codec.residual_norm", labels).set(residual_norm);

  dashboard_.update(device, [&](DeviceStats& d) {
    d.bytes_saved += static_cast<long long>(raw_bytes) -
                     static_cast<long long>(wire_bytes);
  });

  if (journal_) {
    journal_->codec(journal_stamp(device), raw_bytes, wire_bytes,
                    residual_norm);
  }
}

void TelemetrySink::record_tier_merge(std::string_view tier,
                                      std::uint64_t frames_folded,
                                      std::uint64_t bytes_forwarded,
                                      int deadline_misses, int retransmits,
                                      int lost_frames, double fold_seconds,
                                      std::uint64_t raw_bytes) {
  const LabelSet labels{{"tier", std::string(tier)}};
  metrics_.counter("helios.agg.frames_folded_total", labels)
      .add(static_cast<double>(frames_folded));
  metrics_.counter("helios.agg.bytes_forwarded_total", labels)
      .add(static_cast<double>(bytes_forwarded));
  if (raw_bytes > 0) {
    metrics_.counter("helios.agg.raw_bytes_total", labels)
        .add(static_cast<double>(raw_bytes));
  }
  if (deadline_misses > 0) {
    metrics_.counter("helios.agg.deadline_missed_total", labels)
        .add(static_cast<double>(deadline_misses));
  }
  if (retransmits > 0) {
    metrics_.counter("helios.agg.retransmits_total", labels)
        .add(static_cast<double>(retransmits));
  }
  if (lost_frames > 0) {
    metrics_.counter("helios.agg.frames_lost_total", labels)
        .add(static_cast<double>(lost_frames));
  }
  metrics_.histogram("helios.agg.fold_seconds", labels).observe(fold_seconds);

  dashboard_.record_tier(tier, frames_folded, bytes_forwarded,
                         deadline_misses, retransmits, lost_frames,
                         fold_seconds, raw_bytes);

  if (journal_) {
    journal_->tier_merge(journal_stamp(-1), tier, frames_folded,
                         bytes_forwarded, deadline_misses, retransmits,
                         lost_frames, fold_seconds, raw_bytes);
  }
}

void TelemetrySink::record_cohort(int round, std::size_t population,
                                  std::size_t active, std::size_t sampled) {
  metrics_.gauge("helios.sim.population").set(static_cast<double>(population));
  metrics_.gauge("helios.sim.active").set(static_cast<double>(active));
  metrics_.gauge("helios.sim.cohort").set(static_cast<double>(sampled));
  metrics_.counter("helios.sim.sampled_total")
      .add(static_cast<double>(sampled));
  metrics_.histogram("helios.sim.cohort_size")
      .observe(static_cast<double>(sampled));
  if (tracer_) {
    tracer_->instant("sim.cohort", {{"round", round},
                                    {"sampled", static_cast<int>(sampled)},
                                    {"active", static_cast<int>(active)}});
  }
  if (journal_) {
    journal_->cohort(RunJournal::Stamp{round, -1, virtual_time()}, population,
                     active, sampled);
  }
}

void TelemetrySink::record_churn(int round, int arrivals, int departures,
                                 std::size_t population) {
  metrics_.gauge("helios.sim.population").set(static_cast<double>(population));
  if (arrivals > 0) {
    metrics_.counter("helios.sim.arrivals_total")
        .add(static_cast<double>(arrivals));
  }
  if (departures > 0) {
    metrics_.counter("helios.sim.departures_total")
        .add(static_cast<double>(departures));
  }
  if (tracer_ && (arrivals > 0 || departures > 0)) {
    tracer_->instant("sim.churn", {{"round", round},
                                   {"arrivals", arrivals},
                                   {"departures", departures}});
  }
  if (journal_ && (arrivals > 0 || departures > 0)) {
    journal_->churn(RunJournal::Stamp{round, -1, virtual_time()}, arrivals,
                    departures, population);
  }
}

void TelemetrySink::record_device_skipped(int round, int device, bool dead) {
  metrics_.counter("helios.sim.skipped_total",
                   {{"reason", dead ? "dead" : "hollow"}})
      .add(1.0);
  if (journal_) {
    journal_->skip(RunJournal::Stamp{round, device, virtual_time()},
                   dead ? "dead" : "hollow");
  }
}

void TelemetrySink::record_kernel_backend(std::string_view name) {
  metrics_.gauge("helios.kernel.backend", {{"backend", std::string(name)}})
      .set(1.0);
}

void TelemetrySink::flush() {
  if (tracer_) tracer_->close();
  if (journal_) journal_->close();
  if (flushed_ || config_.artifact_prefix.empty()) return;
  flushed_ = true;
  sample_process_memory(metrics_);
  const std::string& p = config_.artifact_prefix;
  // Artifacts are written atomically (temp + rename): a crash mid-flush —
  // or a dashboard scraping concurrently — never sees a half-written file.
  const auto write_atomic = [&](const char* suffix, auto&& emit) {
    std::ostringstream os;
    emit(os);
    util::atomic_write_file(p + suffix, os.str());
  };
  write_atomic(".metrics.json",
               [&](std::ostream& os) { metrics_.write_json(os); });
  write_atomic(".metrics.prom",
               [&](std::ostream& os) { metrics_.write_prometheus(os); });
  write_atomic(".dashboard.json",
               [&](std::ostream& os) { dashboard_.write_json(os); });
  write_atomic(".summary.json",
               [&](std::ostream& os) { dashboard_.write_summary_json(os); });
  if (trace_file_) trace_file_->flush();
  if (journal_file_) journal_file_->flush();
}

TelemetrySink::JournalPosition TelemetrySink::journal_position() {
  JournalPosition pos;
  if (!journal_) return pos;
  pos.events = journal_->event_count();
  if (journal_file_) {
    journal_file_->flush();
    const auto p = journal_file_->tellp();
    pos.byte_offset = p < 0 ? 0 : static_cast<std::uint64_t>(p);
  } else {
    pos.byte_offset = journal_buffer_.str().size();
  }
  return pos;
}

std::string TelemetrySink::trace_text() const { return trace_buffer_.str(); }

std::string TelemetrySink::journal_text() const {
  return journal_buffer_.str();
}

}  // namespace helios::obs
