// TelemetrySink — the one handle a run needs for observability.
//
// Bundles the four pillars:
//   * MetricsRegistry   — counters / gauges / histograms, exported as JSON
//                         and Prometheus text,
//   * TraceWriter       — Chrome trace_event JSONL (chrome://tracing,
//                         Perfetto), wall-clock spans + a virtual-time
//                         device Gantt,
//   * StragglerDashboard — the per-device r_n / alpha_n / rotation / time
//                         split table,
//   * RunJournal        — the flight recorder: an append-only JSONL event
//                         stream of every round's lifecycle (opt-in via
//                         TelemetryConfig::journal; see obs/journal.h and
//                         the `helios-journal` CLI).
//
// Opt-in is one line: construct a sink and hand it to the fleet —
//
//   obs::TelemetrySink telemetry(obs::TelemetryConfig{.artifact_prefix =
//                                                     "helios_run"});
//   fleet.set_telemetry(&telemetry);
//   ...
//   telemetry.flush();   // writes <prefix>.trace.json/.metrics.json/
//                        // .metrics.prom/.dashboard.json
//
// Fleet::set_telemetry installs the sink globally so the HELIOS_TRACE_SPAN
// macros in the nn kernels and strategies see it. With no sink installed,
// every instrumentation point reduces to a relaxed atomic load and a branch.
#pragma once

#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/dashboard.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace helios::obs {

struct TelemetryConfig {
  /// Emit trace events (spans, instants, virtual-time Gantt).
  bool tracing = true;
  /// Record the run journal (flight recorder, obs/journal.h). With an
  /// artifact prefix it lands in <prefix>.journal.jsonl; without one it
  /// accumulates in memory (see journal_text()). Off by default: every
  /// record call then reduces to a null-pointer branch.
  bool journal = false;
  /// When non-empty, artifacts land in <prefix>.trace.json,
  /// <prefix>.metrics.json, <prefix>.metrics.prom, <prefix>.dashboard.json,
  /// <prefix>.summary.json and (with journal) <prefix>.journal.jsonl.
  /// When empty, the trace accumulates in memory (see trace_text()).
  std::string artifact_prefix;
  /// Checkpoint/resume continuation of an existing <prefix>.journal.jsonl:
  /// the file is truncated to `journal_resume_offset` bytes (discarding any
  /// partial tail from the crashed process), reopened in append mode, and
  /// the journal continues counting from `journal_resume_events` with no new
  /// run_start line — so the resumed file reads as ONE uninterrupted run.
  /// Both values come from the checkpoint (fl::peek_checkpoint).
  bool journal_resume = false;
  std::uint64_t journal_resume_offset = 0;
  std::uint64_t journal_resume_events = 0;
};

class TelemetrySink {
 public:
  TelemetrySink() : TelemetrySink(TelemetryConfig{}) {}
  explicit TelemetrySink(TelemetryConfig config);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  StragglerDashboard& dashboard() { return dashboard_; }
  TraceWriter* tracer() { return tracer_.get(); }
  /// The run journal (nullptr when TelemetryConfig::journal is off).
  RunJournal* journal() { return journal_.get(); }

  /// Makes this sink the process-global one: HELIOS_TRACE_SPAN targets its
  /// tracer and util::log lines gain cycle/device context. Fleet calls this
  /// from set_telemetry; idempotent.
  void install();
  /// Clears the global hooks if they point at this sink.
  void uninstall();

  /// Simulation time, attached to trace events and the run gauges. The
  /// strategies set it as their cycle loop advances the fleet clock.
  void set_virtual_time(double seconds);
  double virtual_time() const {
    return virtual_time_.load(std::memory_order_relaxed);
  }

  /// Log-context fields (shown on every util::log line while installed).
  void set_cycle(int cycle) {
    cycle_.store(cycle, std::memory_order_relaxed);
  }
  void set_device(int device) {
    device_.store(device, std::memory_order_relaxed);
  }

  // ---- Recorders called from the instrumented layers ----

  /// Client::run_cycle completion: updates the dashboard's client-side
  /// columns, the per-device metrics, and draws the cycle on the
  /// virtual-time Gantt track.
  void record_client_cycle(int device, std::string_view profile_name,
                           bool straggler, double volume, int trained_neurons,
                           int neuron_total, double train_seconds,
                           double upload_seconds, double upload_mb,
                           double mean_loss);

  /// Server::aggregate per-update weights: r_n is the trained fraction of
  /// Eq. 10, alpha_share the normalized weight actually applied (shares sum
  /// to 1 across a cycle's participants).
  void record_aggregation_weight(int device, double r_n, double alpha_share);

  /// Rotation regulation snapshot: how many neurons were force-included
  /// this cycle and the current skipped-cycle distribution
  /// (C_s = 0 / 1 / 2 / >= 3).
  void record_rotation(int device, int forced_count,
                       const std::array<int, 4>& cs_hist);

  /// One strategy cycle completed (accuracy evaluated).
  void record_cycle_result(std::string_view strategy, int cycle,
                           double virtual_time, double accuracy,
                           double mean_loss, double upload_mb);

  /// One device's upload transfer across the simulated network (attempts
  /// collapsed): actual bytes on the wire, transmissions incl. retransmits,
  /// whether the server accepted the frame, whether the round deadline was
  /// missed, and whether the channel died.
  void record_device_transfer(int device, std::size_t bytes_on_wire,
                              int transmissions, int lost_frames,
                              bool delivered, bool deadline_missed, bool died,
                              double comm_seconds);

  /// One synchronous round's network totals.
  void record_network_round(std::size_t bytes_on_wire, int participants,
                            int delivered, int lost_frames, int retransmits,
                            int deadline_misses, int deaths);

  /// One quantized upload encode (src/codec): the bytes a v1 fp32-dense
  /// frame would have cost, the actual wire bytes, and the client's carried
  /// error-feedback residual L2 norm. Exported as the helios.codec.*
  /// metrics, the dashboard's bytes-saved column, and the journal's
  /// "codec" event.
  void record_codec(int device, std::size_t raw_bytes, std::size_t wire_bytes,
                    double residual_norm);

  /// One aggregator-tree tier's rollup for the round (hierarchical
  /// aggregation runs; `tier` is "edge", "regional" or "root"). Exported as
  /// the helios.agg.* counters labeled {tier=<name>}, the dashboard's
  /// per-tier breakdown, and the journal's "merge" event. `raw_bytes` is
  /// what the forwarded merge payloads would have cost at f64 — the
  /// quantized-uplink savings baseline (equal to bytes_forwarded minus
  /// riders/retransmits when the tree runs the kF64 codec).
  void record_tier_merge(std::string_view tier, std::uint64_t frames_folded,
                         std::uint64_t bytes_forwarded, int deadline_misses,
                         int retransmits, int lost_frames, double fold_seconds,
                         std::uint64_t raw_bytes = 0);

  /// One round's cohort draw (population-scale simulation): fleet size,
  /// active roster, and how many clients were sampled to participate.
  void record_cohort(int round, std::size_t population, std::size_t active,
                     std::size_t sampled);

  /// Churn applied to the fleet around round `round`: devices that arrived
  /// (admitted joiners) and departed (deactivated / killed).
  void record_churn(int round, int arrivals, int departures,
                    std::size_t population);

  /// A device sitting round `round` out. `dead` distinguishes a
  /// deactivated device from an active-but-unsampled (hollow) one.
  void record_device_skipped(int round, int device, bool dead);

  /// Which SIMD kernel backend the tensor layer dispatched to at startup
  /// ("scalar", "avx2", ...). Exported as the gauge
  /// `helios.kernel.backend{backend=<name>}` = 1 so dashboards can tell
  /// runs on different hardware (or HELIOS_KERNEL_BACKEND overrides) apart.
  void record_kernel_backend(std::string_view name);

  // ---- Exports ----

  void write_metrics_json(std::ostream& os) const { metrics_.write_json(os); }
  void write_metrics_prometheus(std::ostream& os) const {
    metrics_.write_prometheus(os);
  }
  void write_dashboard_json(std::ostream& os) const {
    dashboard_.write_json(os);
  }
  void render_dashboard(std::ostream& os) const { dashboard_.render(os); }

  /// Closes the trace and journal, samples the process RSS gauges one last
  /// time, and — when an artifact prefix is configured — writes the
  /// metrics / dashboard / summary files. Safe to call more than once.
  void flush();

  /// In-memory trace contents (only when no artifact prefix was given).
  std::string trace_text() const;
  /// In-memory journal contents (only when no artifact prefix was given).
  std::string journal_text() const;

  /// Current journal position for checkpointing: the durable byte offset of
  /// the journal file (flushed first) and the number of events committed so
  /// far. {0, 0} when the journal is off. A checkpoint stores this pair so a
  /// resumed process can truncate the file past any torn tail and continue
  /// the event stream exactly where the snapshot left it.
  struct JournalPosition {
    std::uint64_t byte_offset = 0;
    std::uint64_t events = 0;
  };
  JournalPosition journal_position();

 private:
  /// Stamps shared by every journal event: current cycle as the round id
  /// plus the virtual clock. The journal is only consulted when non-null.
  RunJournal::Stamp journal_stamp(int device) const {
    return RunJournal::Stamp{cycle_.load(std::memory_order_relaxed), device,
                             virtual_time()};
  }

  TelemetryConfig config_;
  MetricsRegistry metrics_;
  StragglerDashboard dashboard_;
  std::unique_ptr<std::ofstream> trace_file_;
  std::ostringstream trace_buffer_;
  std::unique_ptr<TraceWriter> tracer_;
  std::unique_ptr<std::ofstream> journal_file_;
  std::ostringstream journal_buffer_;
  std::unique_ptr<RunJournal> journal_;
  std::atomic<double> virtual_time_{0.0};
  std::atomic<int> cycle_{-1};
  std::atomic<int> device_{-1};
  bool flushed_ = false;
};

/// Globally installed sink (nullptr when telemetry is off). Deep layers
/// that cannot be handed a sink explicitly read this.
TelemetrySink* global_sink();

}  // namespace helios::obs
