#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"  // json_escape

namespace helios::obs {
namespace {

std::atomic<TraceWriter*> g_tracer{nullptr};

/// Small dense thread ids for the "tid" field (std::thread::id is opaque).
int this_thread_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void write_number(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void write_args(std::ostream& os, const TraceArg* args, std::size_t n,
                bool with_vt, double vt) {
  os << "\"args\":{";
  bool first = true;
  if (with_vt) {
    os << "\"vt\":";
    write_number(os, vt);
    first = false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(os, args[i].key);
    os << "\":";
    switch (args[i].kind) {
      case TraceArg::Kind::kInt: os << args[i].i; break;
      case TraceArg::Kind::kDouble: write_number(os, args[i].d); break;
      case TraceArg::Kind::kString:
        os << '"';
        json_escape(os, args[i].s);
        os << '"';
        break;
    }
  }
  os << '}';
}

}  // namespace

TraceWriter* active_tracer() {
  return g_tracer.load(std::memory_order_relaxed);
}

void set_active_tracer(TraceWriter* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

TraceWriter::TraceWriter(std::ostream& os)
    : os_(os), epoch_(std::chrono::steady_clock::now()) {
  os_ << "[\n";
}

TraceWriter::~TraceWriter() {
  close();
  if (active_tracer() == this) set_active_tracer(nullptr);
}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceWriter::set_virtual_time(double seconds) {
  virtual_time_.store(seconds, std::memory_order_relaxed);
}

void TraceWriter::event(std::string_view name, char phase, int pid, int tid,
                        double ts_us, const double* dur_us,
                        const TraceArg* args, std::size_t n_args,
                        bool with_vt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  if (!first_) os_ << ",\n";
  first_ = false;
  os_ << "{\"name\":\"";
  json_escape(os_, name);
  os_ << "\",\"ph\":\"" << phase << "\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"ts\":";
  write_number(os_, ts_us);
  if (dur_us) {
    os_ << ",\"dur\":";
    write_number(os_, *dur_us);
  }
  if (phase == 'i') os_ << ",\"s\":\"t\"";
  os_ << ',';
  write_args(os_, args, n_args, with_vt,
             virtual_time_.load(std::memory_order_relaxed));
  os_ << '}';
  events_.fetch_add(1, std::memory_order_relaxed);
}

void TraceWriter::begin(std::string_view name,
                        std::initializer_list<TraceArg> args) {
  event(name, 'B', 1, this_thread_tid(), now_us(), nullptr, args.begin(),
        args.size(), /*with_vt=*/true);
}

void TraceWriter::end() {
  event("", 'E', 1, this_thread_tid(), now_us(), nullptr, nullptr, 0,
        /*with_vt=*/false);
}

void TraceWriter::complete(std::string_view name, int tid, double ts_us,
                           double dur_us,
                           std::initializer_list<TraceArg> args) {
  event(name, 'X', 2, tid, ts_us, &dur_us, args.begin(), args.size(),
        /*with_vt=*/false);
}

void TraceWriter::instant(std::string_view name,
                          std::initializer_list<TraceArg> args) {
  event(name, 'i', 1, this_thread_tid(), now_us(), nullptr, args.begin(),
        args.size(), /*with_vt=*/true);
}

void TraceWriter::metadata(std::string_view meta_name, int pid, int tid,
                           std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  if (!first_) os_ << ",\n";
  first_ = false;
  os_ << "{\"name\":\"" << meta_name << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
  json_escape(os_, value);
  os_ << "\"}}";
  events_.fetch_add(1, std::memory_order_relaxed);
}

void TraceWriter::name_thread(int tid, std::string_view name, int pid) {
  metadata("thread_name", pid, tid, name);
}

void TraceWriter::name_process(int pid, std::string_view name) {
  metadata("process_name", pid, 0, name);
}

void TraceWriter::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  os_ << "\n]\n";
  os_.flush();
}

}  // namespace helios::obs
