// Scoped tracing in Chrome trace_event format.
//
// A TraceWriter emits one JSON event per line ("JSON Array Format" with a
// leading '[', so the file loads directly in chrome://tracing and Perfetto
// even when the process exits without closing it). Spans are RAII:
//
//   HELIOS_TRACE_SPAN("client.run_cycle", {{"device", id}});
//
// writes a Begin event now and the matching End event at scope exit, on the
// calling thread's track. Events carry wall-clock timestamps ("ts", in
// microseconds since the writer was created) and, when the owning sink has
// one, the simulation's virtual-clock time as a "vt" argument.
//
// Disabled path: when no tracer is installed (`active_tracer()` returns
// nullptr — one relaxed atomic load), HELIOS_TRACE_SPAN constructs a dead
// span and performs no clock read, no allocation, and no I/O. Argument
// expressions in the macro ARE still evaluated, so keep them to integers /
// pointers / string literals on hot paths.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string_view>

namespace helios::obs {

/// One key/value trace argument. Non-owning: string values must outlive the
/// call (string literals and interned names in practice).
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  constexpr TraceArg(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(std::string_view k, long v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(std::string_view k, long long v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr TraceArg(std::string_view k, std::size_t v)
      : key(k), kind(Kind::kInt), i(static_cast<long long>(v)) {}
  constexpr TraceArg(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr TraceArg(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  constexpr TraceArg(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  std::string_view key;
  Kind kind;
  long long i = 0;
  double d = 0.0;
  std::string_view s;
};

/// Serializes trace events to a stream. Thread-safe (one mutex per writer;
/// tracing is for insight, not for the disabled-path fast case).
class TraceWriter {
 public:
  /// Writes to `os` (not owned; must outlive the writer). Emits the opening
  /// '[' immediately.
  explicit TraceWriter(std::ostream& os);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Begin ("B") / End ("E") duration events on the calling thread's track.
  void begin(std::string_view name, std::initializer_list<TraceArg> args);
  void end();

  /// Complete ("X") event on an explicit track with explicit microsecond
  /// timestamps — used to draw the *virtual-time* Gantt chart of a round
  /// (one track per device) next to the wall-clock tracks.
  void complete(std::string_view name, int tid, double ts_us, double dur_us,
                std::initializer_list<TraceArg> args);

  /// Instant ("i") event, e.g. cycle boundaries.
  void instant(std::string_view name, std::initializer_list<TraceArg> args);

  /// Labels a tid so Perfetto shows device names instead of numbers. Wall
  /// clock tracks live in pid 1, the virtual-time device Gantt in pid 2.
  void name_thread(int tid, std::string_view name, int pid = 1);
  void name_process(int pid, std::string_view name);

  /// Wall-clock microseconds since construction.
  double now_us() const;

  /// Virtual-clock seconds attached to subsequent events as "vt".
  void set_virtual_time(double seconds);
  double virtual_time() const {
    return virtual_time_.load(std::memory_order_relaxed);
  }

  /// Terminates the JSON array; further events are dropped.
  void close();

  std::uint64_t event_count() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  void event(std::string_view name, char phase, int pid, int tid,
             double ts_us, const double* dur_us, const TraceArg* args,
             std::size_t n_args, bool with_vt);
  void metadata(std::string_view meta_name, int pid, int tid,
                std::string_view value);

  std::ostream& os_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<double> virtual_time_{0.0};
  std::atomic<std::uint64_t> events_{0};
  bool closed_ = false;
  bool first_ = true;
};

/// Globally installed tracer (nullptr = tracing disabled). The install is
/// done by TelemetrySink; kernels and strategies only ever read it.
TraceWriter* active_tracer();
void set_active_tracer(TraceWriter* tracer);

/// RAII duration span; dead (no-op) when constructed with a null writer.
class TraceSpan {
 public:
  TraceSpan(TraceWriter* writer, std::string_view name,
            std::initializer_list<TraceArg> args = {})
      : writer_(writer) {
    if (writer_) writer_->begin(name, args);
  }
  ~TraceSpan() {
    if (writer_) writer_->end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceWriter* writer_;
};

#define HELIOS_OBS_CONCAT_IMPL(a, b) a##b
#define HELIOS_OBS_CONCAT(a, b) HELIOS_OBS_CONCAT_IMPL(a, b)

/// Scoped trace span tied to the globally installed tracer. Usage:
///   HELIOS_TRACE_SPAN("server.aggregate");
///   HELIOS_TRACE_SPAN("client.run_cycle", {{"device", id}});
#define HELIOS_TRACE_SPAN(name, ...)                                    \
  ::helios::obs::TraceSpan HELIOS_OBS_CONCAT(helios_trace_span_,        \
                                             __LINE__)(                 \
      ::helios::obs::active_tracer(), name __VA_OPT__(, ) __VA_ARGS__)

}  // namespace helios::obs
