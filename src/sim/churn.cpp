#include "sim/churn.h"

#include <cmath>
#include <stdexcept>

#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::sim {
namespace {

constexpr std::uint64_t kArrivalStream = 0xA221;
constexpr std::uint64_t kLifetimeStream = 0x11FE;

}  // namespace

ChurnProcess::ChurnProcess(const PopulationGenerator& pop,
                           ChurnOptions options)
    : pop_(pop),
      options_(options),
      arrival_rng_(util::Rng(options.seed).fork(kArrivalStream)) {
  if (options_.arrival_rate_per_s < 0.0 || options_.mean_lifetime_s < 0.0) {
    throw std::invalid_argument("ChurnProcess: negative rate or lifetime");
  }
}

double ChurnProcess::lifetime(int id) const {
  if (options_.mean_lifetime_s <= 0.0) return -1.0;
  // Per-device forked draw: one lifetime per device id, independent of
  // every other device and of when it joins.
  util::Rng rng = util::Rng(options_.seed)
                      .fork(kLifetimeStream)
                      .fork(static_cast<std::uint64_t>(id));
  const double u = std::min(rng.uniform(), 1.0 - 1e-12);
  return -std::log(1.0 - u) * options_.mean_lifetime_s;
}

double ChurnProcess::next_exponential(double mean) {
  const double u = std::min(arrival_rng_.uniform(), 1.0 - 1e-12);
  return -std::log(1.0 - u) * mean;
}

double ChurnProcess::death_time(int id) const {
  auto it = death_at_.find(id);
  return it == death_at_.end() ? -1.0 : it->second;
}

RoundChurn ChurnProcess::step(fl::Fleet& fleet, int cycle) {
  RoundChurn churn;
  const double now = fleet.clock().now();

  // First sight of a device (initial fleet or a just-admitted joiner):
  // schedule its departure from its forked lifetime.
  if (options_.mean_lifetime_s > 0.0) {
    for (auto& c : fleet.clients()) {
      if (c->active() && death_at_.find(c->id()) == death_at_.end()) {
        const double life = lifetime(c->id());
        death_at_.emplace(c->id(), life < 0.0 ? -1.0 : now + life);
      }
    }
  }

  // Departures due by now: prefer the network death path (cuts frames in
  // flight, records helios.net death telemetry) when a simulated session is
  // attached; deactivate directly otherwise.
  fl::NetworkSession* session = fleet.network();
  for (auto& c : fleet.clients()) {
    if (!c->active()) continue;
    const double death = death_time(c->id());
    if (death < 0.0 || death > now) continue;
    if (session != nullptr && session->simulated() &&
        session->protocol().has_device(c->id())) {
      session->protocol().script_death(c->id(), death);
    }
    c->set_active(false);
    c->hibernate();
    churn.departed.push_back(c->id());
  }

  // Arrivals due by now. The inter-arrival stream initializes lazily so the
  // process can attach to a fleet whose clock already advanced.
  if (options_.arrival_rate_per_s > 0.0) {
    if (next_arrival_s_ < 0.0) {
      next_arrival_s_ = now + next_exponential(1.0 /
                                               options_.arrival_rate_per_s);
    }
    const int cap = options_.max_devices > 0 ? options_.max_devices
                                             : pop_.config().devices;
    while (next_arrival_s_ <= now &&
           static_cast<int>(fleet.size()) < cap) {
      const int index = static_cast<int>(fleet.size());
      fl::Client& joiner = add_device(fleet, pop_, index);
      if (options_.admit_arrivals) manager_.admit(fleet, joiner.id());
      if (options_.mean_lifetime_s > 0.0) {
        const double life = lifetime(joiner.id());
        death_at_.emplace(joiner.id(),
                          life < 0.0 ? -1.0 : next_arrival_s_ + life);
      }
      churn.arrived.push_back(joiner.id());
      next_arrival_s_ += next_exponential(1.0 / options_.arrival_rate_per_s);
    }
    // Cap reached: park the pending arrival past `now` so the stream stays
    // consistent if capacity frees up later.
    while (next_arrival_s_ <= now) {
      next_arrival_s_ += next_exponential(1.0 / options_.arrival_rate_per_s);
    }
  }

  if (obs::TelemetrySink* tel = fleet.telemetry();
      tel != nullptr &&
      (!churn.arrived.empty() || !churn.departed.empty())) {
    tel->record_churn(cycle, static_cast<int>(churn.arrived.size()),
                      static_cast<int>(churn.departed.size()), fleet.size());
  }
  return churn;
}

}  // namespace helios::sim
