#include "sim/churn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "fl/transport.h"
#include "obs/telemetry.h"

namespace helios::sim {
namespace {

constexpr std::uint64_t kArrivalStream = 0xA221;
constexpr std::uint64_t kLifetimeStream = 0x11FE;

}  // namespace

ChurnProcess::ChurnProcess(const PopulationGenerator& pop,
                           ChurnOptions options)
    : pop_(pop),
      options_(options),
      arrival_rng_(util::Rng(options.seed).fork(kArrivalStream)) {
  if (options_.arrival_rate_per_s < 0.0 || options_.mean_lifetime_s < 0.0) {
    throw std::invalid_argument("ChurnProcess: negative rate or lifetime");
  }
}

double ChurnProcess::lifetime(int id) const {
  if (options_.mean_lifetime_s <= 0.0) return -1.0;
  // Per-device forked draw: one lifetime per device id, independent of
  // every other device and of when it joins.
  util::Rng rng = util::Rng(options_.seed)
                      .fork(kLifetimeStream)
                      .fork(static_cast<std::uint64_t>(id));
  const double u = std::min(rng.uniform(), 1.0 - 1e-12);
  return -std::log(1.0 - u) * options_.mean_lifetime_s;
}

double ChurnProcess::next_exponential(double mean) {
  const double u = std::min(arrival_rng_.uniform(), 1.0 - 1e-12);
  return -std::log(1.0 - u) * mean;
}

double ChurnProcess::death_time(int id) const {
  auto it = death_at_.find(id);
  return it == death_at_.end() ? -1.0 : it->second;
}

RoundChurn ChurnProcess::step(fl::Fleet& fleet, int cycle) {
  RoundChurn churn;
  const double now = fleet.clock().now();

  // First sight of a device (initial fleet or a just-admitted joiner):
  // schedule its departure from its forked lifetime.
  if (options_.mean_lifetime_s > 0.0) {
    for (auto& c : fleet.clients()) {
      if (c->active() && death_at_.find(c->id()) == death_at_.end()) {
        const double life = lifetime(c->id());
        death_at_.emplace(c->id(), life < 0.0 ? -1.0 : now + life);
      }
    }
  }

  // Departures due by now: prefer the network death path (cuts frames in
  // flight, records helios.net death telemetry) when a simulated session is
  // attached; deactivate directly otherwise.
  fl::NetworkSession* session = fleet.network();
  for (auto& c : fleet.clients()) {
    if (!c->active()) continue;
    const double death = death_time(c->id());
    if (death < 0.0 || death > now) continue;
    if (session != nullptr && session->simulated() &&
        session->protocol().has_device(c->id())) {
      session->protocol().script_death(c->id(), death);
    }
    c->set_active(false);
    c->hibernate();
    churn.departed.push_back(c->id());
  }

  // Arrivals due by now. The inter-arrival stream initializes lazily so the
  // process can attach to a fleet whose clock already advanced.
  if (options_.arrival_rate_per_s > 0.0) {
    if (next_arrival_s_ < 0.0) {
      next_arrival_s_ = now + next_exponential(1.0 /
                                               options_.arrival_rate_per_s);
    }
    const int cap = options_.max_devices > 0 ? options_.max_devices
                                             : pop_.config().devices;
    while (next_arrival_s_ <= now &&
           static_cast<int>(fleet.size()) < cap) {
      const int index = static_cast<int>(fleet.size());
      fl::Client& joiner = add_device(fleet, pop_, index);
      joined_indices_.push_back(index);
      if (options_.admit_arrivals) manager_.admit(fleet, joiner.id());
      if (options_.mean_lifetime_s > 0.0) {
        const double life = lifetime(joiner.id());
        death_at_.emplace(joiner.id(),
                          life < 0.0 ? -1.0 : next_arrival_s_ + life);
      }
      churn.arrived.push_back(joiner.id());
      next_arrival_s_ += next_exponential(1.0 / options_.arrival_rate_per_s);
    }
    // Cap reached: park the pending arrival past `now` so the stream stays
    // consistent if capacity frees up later.
    while (next_arrival_s_ <= now) {
      next_arrival_s_ += next_exponential(1.0 / options_.arrival_rate_per_s);
    }
  }

  if (obs::TelemetrySink* tel = fleet.telemetry();
      tel != nullptr &&
      (!churn.arrived.empty() || !churn.departed.empty())) {
    tel->record_churn(cycle, static_cast<int>(churn.arrived.size()),
                      static_cast<int>(churn.departed.size()), fleet.size());
  }
  return churn;
}

void ChurnProcess::save_state(const fl::Fleet& fleet,
                              fl::CheckpointWriter& w) const {
  (void)fleet;
  w.rng(arrival_rng_.state());
  w.f64(next_arrival_s_);
  // unordered_map iteration order is not deterministic; serialize sorted.
  std::vector<int> ids;
  ids.reserve(death_at_.size());
  for (const auto& [id, at] : death_at_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (int id : ids) {
    w.i32(id);
    w.f64(death_at_.at(id));
  }
  w.vec_i32(joined_indices_);
}

void ChurnProcess::load_state(fl::Fleet& fleet, fl::CheckpointReader& r) {
  arrival_rng_ = util::Rng::from_state(r.rng());
  next_arrival_s_ = r.f64();
  death_at_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const int id = r.i32();
    death_at_[id] = r.f64();
  }
  joined_indices_ = r.vec_i32();
  // Replay the joins into the rebuilt fleet (which holds only the initial
  // population). Admission is skipped: the snapshot's per-client section
  // overwrites straggler/volume/active flags right after this.
  for (int index : joined_indices_) {
    if (index < static_cast<int>(fleet.size())) continue;
    if (index != static_cast<int>(fleet.size())) {
      throw fl::CheckpointError(
          "ChurnProcess: joiner index " + std::to_string(index) +
          " does not extend the rebuilt fleet contiguously");
    }
    add_device(fleet, pop_, index);
  }
}

}  // namespace helios::sim
