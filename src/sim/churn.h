// Seeded Poisson churn on the virtual clock: devices stream into and out
// of the collaboration mid-run.
//
// Arrivals follow a Poisson process (exponential inter-arrival times from
// the process's own stream); each device's lifetime is exponential and
// drawn from Rng(seed).fork(device_id) — the per-device forking contract —
// so a new arrival never changes when existing devices depart. Arrivals go
// through the existing core::ScalabilityManager admission path (pace
// estimation, straggler flagging, volume assignment); departures go
// through the net death path when a simulated NetworkSession is attached
// (the channel dies, frames in flight are cut), and deactivate the client
// directly otherwise.
//
// Drive it from a strategy's per-cycle hook:
//
//   sim::ChurnProcess churn(pop, {.arrival_rate_per_s = 0.02,
//                                 .mean_lifetime_s = 300.0});
//   strategy.set_cycle_hook([&](fl::Fleet& f, int cycle) {
//     churn.step(f, cycle);
//   });
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/scalability.h"
#include "fl/checkpoint.h"
#include "sim/population.h"

namespace helios::sim {

struct ChurnOptions {
  /// Poisson arrival rate, devices per virtual second (0 = no arrivals).
  double arrival_rate_per_s = 0.0;
  /// Mean exponential lifetime after joining, virtual seconds
  /// (0 = immortal, no departures).
  double mean_lifetime_s = 0.0;
  std::uint64_t seed = 77;
  /// Hard cap on the fleet's total size, arrivals included (0 = the
  /// population config's device count; arrivals draw specs past it).
  int max_devices = 0;
  /// Run ScalabilityManager admission for each arrival (straggler
  /// identification + volume assignment before its first cycle).
  bool admit_arrivals = true;
};

/// What one step() applied to the fleet.
struct RoundChurn {
  std::vector<int> arrived;   ///< client ids admitted this step
  std::vector<int> departed;  ///< client ids deactivated this step
};

class ChurnProcess : public fl::Checkpointable {
 public:
  /// The generator supplies joiner device specs (indices beyond the initial
  /// fleet) and must outlive the process.
  ChurnProcess(const PopulationGenerator& pop, ChurnOptions options);

  /// Applies all churn events due at the fleet's current virtual time:
  /// departs devices whose lifetime elapsed, admits devices whose arrival
  /// time passed. Deterministic: events depend only on (seed, device id,
  /// virtual time), never on wall clock or thread count. Call once per
  /// cycle (e.g. from a strategy cycle hook). Reports to the fleet's
  /// telemetry sink (helios.sim.* metrics).
  RoundChurn step(fl::Fleet& fleet, int cycle);

  /// Device id's scheduled departure time (negative = immortal or not yet
  /// joined/seen).
  double death_time(int id) const;

  /// Checkpointable: snapshot = (arrival-stream RNG position, pending
  /// arrival time, departure schedule, joiner indices). load_state re-adds
  /// the joiners to the rebuilt fleet — BEFORE the checkpoint's per-client
  /// section loads, so the roster matches — skipping admission (the
  /// snapshotted client flags land afterwards anyway).
  void save_state(const fl::Fleet& fleet, fl::CheckpointWriter& w)
      const override;
  void load_state(fl::Fleet& fleet, fl::CheckpointReader& r) override;

 private:
  double lifetime(int id) const;
  double next_exponential(double mean);

  const PopulationGenerator& pop_;
  ChurnOptions options_;
  util::Rng arrival_rng_;
  core::ScalabilityManager manager_;
  double next_arrival_s_ = -1.0;  ///< lazily initialized on first step
  std::unordered_map<int, double> death_at_;
  /// Population indices of devices this process added mid-run, in join
  /// order (what load_state replays into a rebuilt fleet).
  std::vector<int> joined_indices_;
};

}  // namespace helios::sim
