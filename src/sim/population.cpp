#include "sim/population.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/partition.h"
#include "fl/transport.h"

namespace helios::sim {
namespace {

// Field streams of the population's RNG-forking contract: every per-device
// draw is Rng(seed).fork(stream).fork(i) — independent across fields and
// devices, and insensitive to how many devices exist.
constexpr std::uint64_t kProfileStream = 0x0F11E;
constexpr std::uint64_t kChannelStream = 0xC4A2;
constexpr std::uint64_t kSizeStream = 0x512E;
constexpr std::uint64_t kClassStream = 0xC1A55;
constexpr std::uint64_t kShardStream = 0xDA7A;
constexpr std::uint64_t kTestStream = 0x7E57;

data::SyntheticSpec task_spec(const PopulationConfig& c) {
  data::SyntheticSpec s;
  s.channels = c.channels;
  s.height = c.hw;
  s.width = c.hw;
  s.classes = c.classes;
  s.noise = c.noise;
  // prototype_seed stays at its default: one task identity shared by the
  // pooled split, every per-device shard, and the test set.
  return s;
}

/// Everything a device shard's synthesis depends on, by value — small
/// enough that a lazy client can carry one in its data factory without
/// holding the whole PopulationConfig (or the generator) alive.
struct ShardRecipe {
  data::SyntheticSpec spec;  // task identity; samples filled per call
  std::uint64_t seed = 0;
  int classes = 0;
  int index = 0;
  int shard_samples = 0;
  std::vector<int> label_classes;
};

ShardRecipe shard_recipe(const PopulationConfig& c, const DeviceSpec& d) {
  return ShardRecipe{task_spec(c), c.seed,           c.classes,
                     d.index,      d.shard_samples,  d.label_classes};
}

/// Per-device shard: independently synthesized from the device's own
/// stream (same class prototypes as everyone else), optionally restricted
/// to the device's label classes by oversample-and-filter. Pure function of
/// the recipe, so eager and lazy materialization are bit-identical.
data::Dataset make_shard(const ShardRecipe& r) {
  data::SyntheticSpec s = r.spec;
  util::Rng rng = util::Rng(r.seed).fork(kShardStream).fork(
      static_cast<std::uint64_t>(r.index));
  if (r.label_classes.empty()) {
    s.samples = r.shard_samples;
    return data::make_synthetic(s, rng);
  }
  const int k = static_cast<int>(r.label_classes.size());
  // Labels are drawn uniformly, so oversampling by classes/k (plus slack)
  // leaves ~shard_samples matches to keep.
  s.samples = r.shard_samples * r.classes / k + 2 * r.classes;
  data::Dataset pool = data::make_synthetic(s, rng);
  std::vector<std::size_t> keep;
  keep.reserve(static_cast<std::size_t>(r.shard_samples));
  for (std::size_t i = 0; i < pool.labels.size(); ++i) {
    const int label = pool.labels[i];
    if (std::find(r.label_classes.begin(), r.label_classes.end(), label) !=
        r.label_classes.end()) {
      keep.push_back(i);
    }
    if (keep.size() >= static_cast<std::size_t>(r.shard_samples)) break;
  }
  if (keep.empty()) {  // pathological skew draw: fall back to the pool head
    for (std::size_t i = 0;
         i < std::min<std::size_t>(pool.labels.size(),
                                   static_cast<std::size_t>(r.shard_samples));
         ++i) {
      keep.push_back(i);
    }
  }
  return data::subset(pool, keep);
}

data::Dataset device_shard(const PopulationConfig& c, const DeviceSpec& d) {
  return make_shard(shard_recipe(c, d));
}

fl::ClientConfig client_config(const PopulationConfig& c, int index) {
  fl::ClientConfig cfg;
  cfg.seed = c.seed + static_cast<std::uint64_t>(index);
  cfg.lr = c.lr;
  cfg.batch_size = c.batch;
  return cfg;
}

}  // namespace

PopulationGenerator::PopulationGenerator(PopulationConfig config)
    : config_(std::move(config)) {
  if (config_.devices <= 0) {
    throw std::invalid_argument("PopulationGenerator: devices <= 0");
  }
  if (!config_.model.build) {
    throw std::invalid_argument("PopulationGenerator: config has no model");
  }
  if (config_.samples_per_client <= 0 || config_.classes <= 0 ||
      config_.hw <= 0) {
    throw std::invalid_argument("PopulationGenerator: bad task geometry");
  }
}

DeviceSpec PopulationGenerator::device(int i) const {
  if (i < 0) throw std::invalid_argument("PopulationGenerator: index < 0");
  const auto idx = static_cast<std::uint64_t>(i);
  DeviceSpec d;
  d.index = i;
  d.shard_samples = config_.samples_per_client;

  if (!config_.fixed.empty()) {
    const FixedDevice& f =
        config_.fixed[static_cast<std::size_t>(i) % config_.fixed.size()];
    d.profile = f.profile;
    d.straggler = f.straggler;
    d.volume = f.volume;
    d.channel.latency_s = config_.median_latency_s;
    d.channel.jitter_s = config_.jitter_s;
    d.channel.loss_prob = config_.loss_prob;
    return d;
  }

  util::Rng pr = util::Rng(config_.seed).fork(kProfileStream).fork(idx);
  const double compute = config_.median_gflops *
                         std::exp(config_.compute_log_sigma * pr.normal());
  const double net =
      config_.median_net_mbps * std::exp(config_.net_log_sigma * pr.normal());
  d.profile.name = "sim-" + std::to_string(i);
  d.profile.compute_gflops = compute;
  d.profile.mem_bandwidth_mbps = compute * config_.mem_per_gflop;
  d.profile.net_bandwidth_mbps = net;
  d.profile.memory_mb = config_.memory_mb;

  util::Rng cr = util::Rng(config_.seed).fork(kChannelStream).fork(idx);
  d.channel.latency_s = config_.median_latency_s * std::exp(0.5 * cr.normal());
  d.channel.jitter_s = config_.jitter_s;
  d.channel.loss_prob = config_.loss_prob;

  util::Rng sr = util::Rng(config_.seed).fork(kSizeStream).fork(idx);
  const double u = std::max(1e-12, sr.uniform());
  const double pareto = std::pow(u, -1.0 / config_.shard_pareto_alpha);
  d.shard_samples = std::min(
      config_.max_shard_samples,
      static_cast<int>(static_cast<double>(config_.samples_per_client) *
                       pareto));

  if (config_.classes_per_device > 0 &&
      config_.classes_per_device < config_.classes) {
    util::Rng lr = util::Rng(config_.seed).fork(kClassStream).fork(idx);
    for (std::size_t cls : lr.sample_without_replacement(
             static_cast<std::size_t>(config_.classes),
             static_cast<std::size_t>(config_.classes_per_device))) {
      d.label_classes.push_back(static_cast<int>(cls));
    }
    std::sort(d.label_classes.begin(), d.label_classes.end());
  }
  return d;
}

std::vector<DeviceSpec> PopulationGenerator::all() const {
  std::vector<DeviceSpec> out;
  out.reserve(static_cast<std::size_t>(config_.devices));
  for (int i = 0; i < config_.devices; ++i) out.push_back(device(i));
  return out;
}

PopulationConfig paper_4dev() {
  PopulationConfig c;
  c.name = "paper-4dev";
  c.devices = 4;
  c.seed = 11;
  c.model = models::mlp_spec({1, 8, 8, 4}, 24);
  c.samples_per_client = 48;
  c.test_samples = 160;
  c.classes = 4;
  c.hw = 8;
  c.noise = 0.6F;
  c.lr = 0.08F;
  c.batch = 8;
  c.pooled_data = true;
  // Two capable edge servers, then two DeepLens-CPU stragglers at volume
  // 0.35 — the strategy-test roster order (stragglers last).
  c.fixed = {
      {device::sim_scaled(device::edge_server()), false, 1.0},
      {device::sim_scaled(device::edge_server()), false, 1.0},
      {device::sim_scaled(device::deeplens_cpu()), true, 0.35},
      {device::sim_scaled(device::deeplens_cpu()), true, 0.35},
  };
  return c;
}

PopulationConfig mobile_longtail(int devices, std::uint64_t seed) {
  PopulationConfig c;
  c.name = "mobile-longtail";
  c.devices = devices;
  c.seed = seed;
  c.model = models::lenet_spec({1, 16, 16, 10});
  c.samples_per_client = 32;
  c.test_samples = 256;
  c.classes = 10;
  c.hw = 16;
  c.noise = 0.5F;
  c.lr = 0.06F;
  c.batch = 8;
  c.pooled_data = false;
  c.classes_per_device = 2;  // strong label skew, as in the paper's Non-IID
  c.median_gflops = 6.0;
  c.compute_log_sigma = 0.9;  // heavy weak tail: p99/p50 ~ 8x
  c.mem_per_gflop = 1600.0;
  c.median_net_mbps = 40.0;
  c.net_log_sigma = 0.8;
  c.memory_mb = 1024.0;
  c.shard_pareto_alpha = 1.8;
  c.max_shard_samples = 160;
  c.median_latency_s = 0.012;
  c.jitter_s = 0.004;
  c.loss_prob = 0.0;
  return c;
}

fl::Fleet build_fleet(const PopulationGenerator& pop) {
  const PopulationConfig& c = pop.config();
  data::SyntheticSpec spec = task_spec(c);

  if (c.pooled_data) {
    // The hand-built testbed recipe, verbatim (one pool, one RNG stream
    // consumed train -> test -> partition), so a fixed-roster pooled
    // population is bit-identical to the corresponding hand-built fleet.
    spec.samples = c.samples_per_client * c.devices;
    util::Rng rng(c.seed);
    data::Dataset train = data::make_synthetic(spec, rng);
    spec.samples = c.test_samples;
    data::Dataset test = data::make_synthetic(spec, rng);
    fl::Fleet fleet(c.model, std::move(test), c.seed);
    const data::Partition parts =
        c.non_iid
            ? data::partition_shards(train.labels,
                                     static_cast<std::size_t>(c.devices), 2,
                                     rng)
            : data::partition_iid(static_cast<std::size_t>(train.size()),
                                  static_cast<std::size_t>(c.devices), rng);
    for (int i = 0; i < c.devices; ++i) {
      const DeviceSpec d = pop.device(i);
      fl::Client& cl = fleet.add_client(
          data::subset(train, parts[static_cast<std::size_t>(i)]),
          client_config(c, i), d.profile);
      if (d.straggler) {
        cl.set_straggler(true);
        cl.set_volume(d.volume);
      }
    }
    return fleet;
  }

  // Population scale: the test set has its own stream; every device
  // synthesizes its own shard in add_device. No monolithic pool exists.
  spec.samples = c.test_samples;
  util::Rng trng = util::Rng(c.seed).fork(kTestStream);
  data::Dataset test = data::make_synthetic(spec, trng);
  fl::Fleet fleet(c.model, std::move(test), c.seed);
  for (int i = 0; i < c.devices; ++i) add_device(fleet, pop, i);
  return fleet;
}

fl::Client& add_device(fl::Fleet& fleet, const PopulationGenerator& pop,
                       int index) {
  const PopulationConfig& c = pop.config();
  const DeviceSpec d = pop.device(index);
  fl::Client* cl = nullptr;
  if (c.lazy_data) {
    // The recipe travels by value, so the factory outlives the generator.
    // nominal = the requested shard size; for label-skewed devices the
    // filtered shard may come out smaller, which planning tolerates (the
    // exact size takes over after first materialization).
    ShardRecipe recipe = shard_recipe(c, d);
    cl = &fleet.add_client(
        [recipe = std::move(recipe)]() { return make_shard(recipe); },
        static_cast<std::size_t>(d.shard_samples), client_config(c, index),
        d.profile);
  } else {
    cl = &fleet.add_client(device_shard(c, d), client_config(c, index),
                           d.profile);
  }
  if (d.straggler) {
    cl->set_straggler(true);
    cl->set_volume(d.volume);
  }
  return *cl;
}

void apply_channels(fl::NetworkSession& session,
                    const PopulationGenerator& pop) {
  // Client ids coincide with population indices for generator-built fleets
  // (build_fleet / add_device add devices in id order).
  for (int i = 0; i < pop.size(); ++i) {
    session.protocol().configure_device(i, pop.device(i).channel);
  }
}

}  // namespace helios::sim
