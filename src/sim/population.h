// Population-scale device generation: sample arbitrary-size fleets of
// heterogeneous devices from seeded parametric distributions.
//
// The paper evaluates Helios on hand-enumerated 4–6 device testbeds; a
// production federation has thousands of devices whose compute, bandwidth
// and data volumes follow long-tailed distributions. A PopulationGenerator
// turns a PopulationConfig (distribution parameters or a fixed roster) into
// per-device specs — device::ResourceProfile + net::ChannelConfig + shard
// size + seeds — so profiling, straggler classification, the analytic cost
// model and the network simulation all work unchanged on generated fleets.
//
// RNG-forking contract: every draw for device i comes from
// Rng(seed).fork(field).fork(i) — a pure function of (seed, field, i).
// Devices can therefore be generated lazily, out of order, or appended to
// an existing population without perturbing any other device's profile,
// data, or schedule. The same convention governs cohort sampling
// (sampler.h) and churn (churn.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "device/resource.h"
#include "fl/fleet.h"
#include "models/zoo.h"
#include "net/channel.h"

namespace helios::fl {
class NetworkSession;
}

namespace helios::sim {

/// One entry of a fixed (hand-enumerated) roster; device i uses entry
/// i % roster.size().
struct FixedDevice {
  device::ResourceProfile profile;
  bool straggler = false;
  double volume = 1.0;
};

struct PopulationConfig {
  std::string name = "custom";
  int devices = 4;
  std::uint64_t seed = 11;

  /// Global model every client replicates (the federation's architecture).
  models::ModelSpec model;

  // -- Task / data ----------------------------------------------------------
  /// Mean local dataset size (exact per client in pooled mode; the Pareto
  /// location parameter in per-device mode).
  int samples_per_client = 48;
  int test_samples = 160;
  int classes = 4;
  int channels = 1;
  int hw = 8;  ///< image side
  float noise = 0.6F;
  float lr = 0.08F;
  int batch = 8;

  /// Pooled mode (paper testbeds): synthesize one training pool and
  /// partition it across clients — byte-compatible with the hand-built
  /// fleets. Per-device mode (population scale): each device synthesizes
  /// its own shard independently (same class prototypes via
  /// prototype_seed), so building a 1024-device fleet never allocates a
  /// monolithic pool and devices keep their data under churn/extension.
  bool pooled_data = true;
  /// Pooled mode only: shard-based Non-IID split (2 shards/client).
  bool non_iid = false;
  /// Per-device mode only: label classes each device observes
  /// (0 = all classes). The skew knob for non-IID populations.
  int classes_per_device = 0;
  /// Per-device mode only: build clients with a lazy data factory instead of
  /// eagerly synthesized shards. Sampled devices materialize their shard on
  /// first training use and release it when hibernated, so an O(100k)-device
  /// fleet at C ~ 0.01 holds sample memory only for the active cohort.
  /// Training is bit-identical either way (the shard and the loader's
  /// shuffle stream are pure functions of the seed).
  bool lazy_data = false;

  // -- Device roster --------------------------------------------------------
  /// Non-empty = fixed-roster mode: profiles/flags cycle through this list
  /// and no parametric draws happen.
  std::vector<FixedDevice> fixed;

  // -- Parametric distributions (fixed.empty() only) ------------------------
  /// Compute C_cpu ~ LogNormal(median, sigma) — the long-tail heterogeneity
  /// knob. sigma ≈ 0.8 gives a p99/p50 ratio of ~6x.
  double median_gflops = 8.0;
  double compute_log_sigma = 0.8;
  /// Memory bandwidth V_mc scales with compute (mem_per_gflop MB/s per
  /// GFLOP/s), mirroring how real device tiers co-scale.
  double mem_per_gflop = 1600.0;
  /// Network bandwidth B_n ~ LogNormal(median, sigma), independent of
  /// compute (a fast phone on a slow uplink is common).
  double median_net_mbps = 60.0;
  double net_log_sigma = 0.7;
  double memory_mb = 2048.0;
  /// Shard sizes ~ samples_per_client * Pareto(alpha), capped.
  double shard_pareto_alpha = 1.8;
  int max_shard_samples = 512;

  // -- Channel distributions ------------------------------------------------
  /// Median last-mile latency; per-device ~ LogNormal(median, 0.5).
  double median_latency_s = 0.01;
  double jitter_s = 0.002;
  double loss_prob = 0.0;
};

/// Everything needed to instantiate device i in a fleet.
struct DeviceSpec {
  int index = 0;
  device::ResourceProfile profile;
  net::ChannelConfig channel;
  int shard_samples = 0;
  /// Label classes this device observes (empty = all).
  std::vector<int> label_classes;
  bool straggler = false;  ///< fixed-roster flag (parametric: identified later)
  double volume = 1.0;
};

class PopulationGenerator {
 public:
  explicit PopulationGenerator(PopulationConfig config);

  const PopulationConfig& config() const { return config_; }
  int size() const { return config_.devices; }

  /// Device i's spec — a pure function of (config.seed, i); i may exceed
  /// config.devices (joiners drawn from the same population).
  DeviceSpec device(int i) const;
  std::vector<DeviceSpec> all() const;

 private:
  PopulationConfig config_;
};

// -- Presets ----------------------------------------------------------------

/// The repo's hand-built 4-device strategy-test fleet (2 capable edge
/// servers + 2 DeepLens-CPU stragglers at volume 0.35, pooled IID MLP
/// task, seed 11) expressed as a population: build_fleet() of this preset
/// is bit-identical to the hand-enumerated fleet.
PopulationConfig paper_4dev();

/// A long-tailed mobile population: LeNet task, per-device shards with
/// 2-class label skew, log-normal compute/bandwidth with a heavy weak
/// tail — the regime where sampling and churn matter.
PopulationConfig mobile_longtail(int devices, std::uint64_t seed = 2026);

// -- Fleet assembly ---------------------------------------------------------

/// Builds a fleet from the population: synthesizes the task data (pooled or
/// per-device), adds every device as a client (cfg.seed = seed + i), and
/// applies fixed-roster straggler flags/volumes.
fl::Fleet build_fleet(const PopulationGenerator& pop);

/// Adds device `index` of the population to an existing fleet (the churn /
/// joiner path). Returns the new client.
fl::Client& add_device(fl::Fleet& fleet, const PopulationGenerator& pop,
                       int index);

/// Applies each device's generated ChannelConfig to the session's protocol
/// (latency / jitter / loss heterogeneity; bandwidth stays the profile's
/// B_n unless the config overrides it).
void apply_channels(fl::NetworkSession& session,
                    const PopulationGenerator& pop);

}  // namespace helios::sim
