#include "sim/sampler.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace helios::sim {

CohortSampler::CohortSampler(Options options) : options_(options) {
  if (options_.fraction <= 0.0 || options_.fraction > 1.0) {
    throw std::invalid_argument("CohortSampler: fraction out of (0, 1]");
  }
}

double CohortSampler::draw(int device_id, int round) const {
  // The pure per-(device, round) draw of the forking contract. The same
  // value decides membership and breaks the empty-cohort tie, so the
  // fallback winner is the device that was "closest" to being sampled.
  return util::Rng(options_.seed)
      .fork(static_cast<std::uint64_t>(device_id))
      .fork(static_cast<std::uint64_t>(round))
      .uniform();
}

double CohortSampler::probability(int device_id) const {
  double p = options_.fraction;
  if (options_.policy == Policy::kWeightedByVolume && fleet_ != nullptr) {
    if (fl::Client* c = fleet_->find_client(device_id)) p *= c->volume();
  }
  return std::clamp(p, 0.0, 1.0);
}

bool CohortSampler::selected(int device_id, int round) const {
  return draw(device_id, round) < probability(device_id);
}

std::vector<fl::Client*> CohortSampler::sample(
    std::span<fl::Client* const> active, int round) const {
  std::vector<fl::Client*> cohort;
  for (fl::Client* c : active) {
    if (selected(c->id(), round)) cohort.push_back(c);
  }
  if (cohort.empty() && options_.non_empty && !active.empty()) {
    fl::Client* best = active.front();
    double best_draw = draw(best->id(), round);
    for (fl::Client* c : active.subspan(1)) {
      const double d = draw(c->id(), round);
      if (d < best_draw) {
        best_draw = d;
        best = c;
      }
    }
    cohort.push_back(best);
  }
  return cohort;
}

}  // namespace helios::sim
