// Per-round client sampling (FedAvg's fraction C) for population-scale
// federations.
//
// At population scale the server samples a cohort each round instead of
// waiting for everyone. CohortSampler implements fl::RosterSampler with the
// same RNG-forking contract as the rest of src/sim: device i's membership
// in round t is the pure draw Rng(seed).fork(i).fork(t) — independent
// Bernoulli "Poisson sampling", so the cohort sequence is identical across
// runs and thread counts, and admitting a joiner mid-run leaves every
// existing device's participation schedule bit-identical (a shared
// sequential draw, like Rng::sample_without_replacement over the roster,
// would shift everyone's schedule whenever the roster changes).
#pragma once

#include <cstdint>

#include "fl/fleet.h"

namespace helios::sim {

class CohortSampler : public fl::RosterSampler {
 public:
  enum class Policy {
    /// Every active device participates with probability `fraction`.
    kUniform,
    /// Participation probability fraction * volume: devices training larger
    /// submodels (higher expected r_n) are sampled proportionally more, so
    /// the Eq. 10 weight mass concentrates on more complete updates.
    /// Requires attach() to read volumes; falls back to uniform otherwise.
    kWeightedByVolume,
  };

  struct Options {
    /// Expected participation fraction C in (0, 1].
    double fraction = 0.1;
    Policy policy = Policy::kUniform;
    std::uint64_t seed = 1;
    /// Guarantee a non-empty cohort: when no device draws in, the active
    /// device with the smallest draw participates alone. This fallback is
    /// the one place membership depends on the roster — with C * N well
    /// above 1 it never triggers (documented caveat for joiner-invariance
    /// tests).
    bool non_empty = true;
  };

  explicit CohortSampler(Options options);

  /// Lets kWeightedByVolume read per-device volumes. The fleet must outlive
  /// the sampler's use; pass nullptr to detach.
  void attach(fl::Fleet* fleet) { fleet_ = fleet; }

  const Options& options() const { return options_; }

  bool selected(int device_id, int round) const override;
  std::vector<fl::Client*> sample(std::span<fl::Client* const> active,
                                  int round) const override;

 private:
  double draw(int device_id, int round) const;
  double probability(int device_id) const;

  Options options_;
  fl::Fleet* fleet_ = nullptr;
};

}  // namespace helios::sim
