#include "tensor/backend/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "util/cpuid.h"
#include "util/log.h"

namespace helios::tensor::backend {
namespace {

bool compiled_avx2() {
#if defined(HELIOS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

const KernelTable* table_for(Backend id) {
  switch (id) {
    case Backend::kScalar:
      return &scalar_kernels();
    case Backend::kAvx2:
#if defined(HELIOS_HAVE_AVX2)
      if (util::cpu_has_avx2_fma()) return &avx2_kernels();
#endif
      return nullptr;
  }
  return nullptr;
}

/// Env-driven default, computed once. Unknown values warn and fall through
/// to auto so a typo cannot silently change numerics.
const KernelTable& env_selected() {
  const char* env = std::getenv("HELIOS_KERNEL_BACKEND");
  const std::string want = env ? env : "auto";
  if (want == "scalar") return scalar_kernels();
  if (want == "avx2") {
    if (const KernelTable* t = table_for(Backend::kAvx2)) return *t;
    util::log_warn("HELIOS_KERNEL_BACKEND=avx2 requested but unavailable (",
                   util::cpu_feature_string(), "); using scalar");
    return scalar_kernels();
  }
  if (want != "auto") {
    util::log_warn("HELIOS_KERNEL_BACKEND='", want,
                   "' not recognized; using auto");
  }
  if (const KernelTable* t = table_for(Backend::kAvx2)) return *t;
  return scalar_kernels();
}

/// nullptr = no programmatic override; selection falls back to env/auto.
std::atomic<const KernelTable*> g_override{nullptr};

}  // namespace

const KernelTable& active_kernels() {
  if (const KernelTable* t = g_override.load(std::memory_order_acquire)) {
    return *t;
  }
  static const KernelTable& env_table = env_selected();
  return env_table;
}

std::string active_backend_name() { return active_kernels().name; }

std::vector<const KernelTable*> available_tables() {
  std::vector<const KernelTable*> out{&scalar_kernels()};
  if (const KernelTable* t = table_for(Backend::kAvx2)) out.push_back(t);
  return out;
}

void set_kernel_backend(Backend id) {
  const KernelTable* t = table_for(id);
  if (t == nullptr) {
    throw std::invalid_argument(
        std::string("set_kernel_backend: backend unavailable (compiled ") +
        (compiled_avx2() ? "with" : "without") + " avx2; cpu " +
        util::cpu_feature_string() + ")");
  }
  g_override.store(t, std::memory_order_release);
}

void clear_kernel_backend_override() {
  g_override.store(nullptr, std::memory_order_release);
}

bool avx2_available() { return table_for(Backend::kAvx2) != nullptr; }

}  // namespace helios::tensor::backend
