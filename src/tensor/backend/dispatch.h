// Runtime backend selection for the tensor kernel table.
//
// Selection order (resolved once, on first use):
//   1. HELIOS_KERNEL_BACKEND=scalar|avx2|auto — the env override. `scalar`
//      forces the portable reference (bit-exact with the pre-dispatch
//      code); `avx2` forces the vector table and falls back to scalar with
//      a warning when the CPU or build lacks it; `auto` (default) picks the
//      fastest table the running CPU supports (util::cpuid).
//   2. set_kernel_backend() — programmatic override for tests/checkasm;
//      wins over the environment. Not thread-safe against in-flight
//      kernels: call only between runs, like util::set_global_threads.
//
// available_tables() enumerates every table compiled into this binary —
// checkasm iterates it so a new backend is covered the moment it registers.
#pragma once

#include <string>
#include <vector>

#include "tensor/backend/kernels.h"

namespace helios::tensor::backend {

/// The table every tensor/ops.cpp and nn optimizer call dispatches through.
const KernelTable& active_kernels();

/// Name of the active table ("scalar", "avx2") for logs / metrics.
std::string active_backend_name();

/// All tables usable on this machine (scalar first, then vector tables the
/// CPU supports).
std::vector<const KernelTable*> available_tables();

/// Forces a specific table (test hook). Throws std::invalid_argument when
/// that backend is not available on this machine/build.
void set_kernel_backend(Backend id);

/// Clears the programmatic override back to env/auto selection.
void clear_kernel_backend_override();

/// True when the AVX2 table is compiled in and the CPU supports it.
bool avx2_available();

}  // namespace helios::tensor::backend
