// Kernel table for the runtime-dispatched SIMD backend.
//
// Every hot kernel in the soft-training path is expressed as a C function
// pointer operating on raw pointers plus a *partition range* [lo, hi) over
// one documented output dimension. The wrapper in tensor/ops.cpp owns shape
// checking and the thread-pool split (tensor/ops.h, run_chunked) and calls
// the same kernel entry for the sequential full range and for every
// parallel chunk — so each backend inherits the identical parallel-split
// behaviour, and results are bit-identical at any thread count *within* a
// backend (per-output-element accumulation order never depends on chunk
// boundaries).
//
// Cross-backend contract (verified by tests/checkasm_kernels.cpp):
//   * mask handling and anything integer-indexed is exact: masked-out
//     outputs are bitwise identical across backends,
//   * the optimizer update kernels are elementwise with no FMA, so the
//     AVX2 path is bitwise identical to scalar,
//   * the matmul kernels use FMA on the AVX2 path, which changes rounding;
//     they carry the documented ULP-style tolerance (kFmaUlpTol) relative
//     to the scalar reference, weighted by the running |a|.|b| sum.
//
// Adding a backend: implement the entries below in a new TU (compiled with
// whatever -m flags it needs), expose a `const KernelTable& foo_kernels()`,
// and register it in dispatch.cpp. checkasm picks it up automatically via
// available_tables().
#pragma once

#include <cstddef>
#include <cstdint>

namespace helios::tensor::backend {

/// Weight on the per-element |a|.|b| accumulation sum that bounds the
/// allowed AVX2-vs-scalar divergence of the FMA matmul kernels:
///   |avx2 - scalar| <= kFmaUlpTol * eps * sum_kk |a_kk * b_kk| + eps.
/// Pinned by checkasm's tolerance test; raise only with a DESIGN.md note.
inline constexpr float kFmaUlpTol = 32.0F;

/// Shared operand block for the six masked matmul variants. `mask` is over
/// the dimension each variant documents (nullptr = all active). `active`
/// is the ascending index list of non-zero mask positions, precomputed
/// once per call by the ops.cpp wrapper when the selected table sets
/// `use_index_lists` (scalar keeps the legacy branch-per-row loops and
/// never sees it).
struct MatmulArgs {
  const float* a = nullptr;
  const float* b = nullptr;
  float* c = nullptr;
  int m = 0;
  int k = 0;
  int n = 0;
  const std::uint8_t* mask = nullptr;
  const std::int32_t* active = nullptr;
  std::int32_t n_active = -1;
};

/// Partition dimension per variant (the [lo, hi) range in the call):
///   matmul_rows           C[m,n]  = A[m,k] B[k,n], mask over m — rows i
///   matmul_tn_acc         C[k,n] += A^T B, mask over m         — rows kk
///   matmul_nt_cols        C[m,n]  = A B^T, mask over n         — rows i
///   matmul_nn_inner_acc   C[m,k] += A B,   mask over inner n   — rows i
///   matmul_tn_out_rows    C[n,k]  = A^T B, mask over n         — rows j
///   matmul_nt_rows_acc    C[m,n] += A B^T, mask over m         — rows i
using MatmulKernelFn = void (*)(const MatmulArgs&, std::int64_t lo,
                                std::int64_t hi);

/// One SGD step over a contiguous parameter slice. `v` is the momentum
/// buffer (nullptr = plain SGD), `frozen` marks elements to leave untouched
/// (nullptr = none). Semantics mirror nn::Sgd::step exactly:
///   grad = g[i] * clip_scale + weight_decay * w[i]
///   v[i] = momentum * v[i] + grad   (when v)
///   w[i] -= lr * (v ? v[i] : grad)
struct SgdArgs {
  float* w = nullptr;
  const float* g = nullptr;
  float* v = nullptr;
  const std::uint8_t* frozen = nullptr;
  std::size_t count = 0;
  float lr = 0.0F;
  float momentum = 0.0F;
  float weight_decay = 0.0F;
  float clip_scale = 1.0F;
};
using SgdKernelFn = void (*)(const SgdArgs&);

/// One Adam step over a contiguous parameter slice; bc1/bc2 are the bias
/// corrections (1 - beta^t) computed once per step by the caller.
struct AdamArgs {
  float* w = nullptr;
  const float* g = nullptr;
  float* m = nullptr;
  float* v = nullptr;
  const std::uint8_t* frozen = nullptr;
  std::size_t count = 0;
  float lr = 0.0F;
  float beta1 = 0.0F;
  float beta2 = 0.0F;
  float eps = 0.0F;
  float weight_decay = 0.0F;
  float bc1 = 1.0F;
  float bc2 = 1.0F;
};
using AdamKernelFn = void (*)(const AdamArgs&);

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1 };

struct KernelTable {
  const char* name = "";
  Backend id = Backend::kScalar;
  /// True when the matmul kernels want the precomputed active-index list
  /// in MatmulArgs (the AVX2 paths stream packed index lists instead of
  /// branch-testing the mask in inner loops).
  bool use_index_lists = false;

  MatmulKernelFn matmul_rows = nullptr;
  MatmulKernelFn matmul_tn_acc = nullptr;
  MatmulKernelFn matmul_nt_cols = nullptr;
  MatmulKernelFn matmul_nn_inner_acc = nullptr;
  MatmulKernelFn matmul_tn_out_rows = nullptr;
  MatmulKernelFn matmul_nt_rows_acc = nullptr;
  SgdKernelFn sgd_update = nullptr;
  AdamKernelFn adam_update = nullptr;
};

/// The portable reference table (always available; the correctness oracle).
const KernelTable& scalar_kernels();

#if defined(HELIOS_HAVE_AVX2)
/// The AVX2+FMA table (TU compiled with -mavx2 -mfma -ffp-contract=off;
/// only dispatched to when util::cpu_has_avx2_fma()).
const KernelTable& avx2_kernels();
#endif

}  // namespace helios::tensor::backend
