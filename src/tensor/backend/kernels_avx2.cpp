// AVX2+FMA kernels. This TU is the only one compiled with
// -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot fuse the
// optimizer kernels' separate mul/add intrinsics into FMAs behind our
// back); dispatch.cpp only routes here after util::cpu_has_avx2_fma().
//
// Numerics:
//   * The matmul kernels use explicit _mm256_fmadd_ps. FMA skips the
//     intermediate rounding of mul-then-add, so outputs differ from the
//     scalar reference within the kFmaUlpTol weighted tolerance
//     (tensor/backend/kernels.h); per-output-element accumulation order is
//     fixed (ascending k / i), so results are bit-identical at any thread
//     count and any chunk split.
//   * The optimizer kernels use only mul/add/div/sqrt in the scalar
//     reference's exact operation order — all four are correctly rounded
//     under IEEE-754, so these paths are bitwise identical to scalar
//     (checkasm pins this).
//   * Mask logic is integer-exact: masked-out rows are never touched, and
//     frozen optimizer lanes are restored by blend, so those bytes are
//     bitwise identical to scalar.
//
// Masked variants stream the packed active-index lists precomputed by the
// ops.cpp wrapper (use_index_lists = true) instead of branch-testing the
// mask byte in inner loops.
#include "tensor/backend/kernels.h"

#if defined(HELIOS_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

namespace helios::tensor::backend {
namespace {

// K-dimension block for the cache-blocked C = A B microkernel: 256 rows of
// a 16-wide B panel is 16 KB, comfortably inside L1 alongside the A row.
constexpr int kKcBlock = 256;

// Lane masks for 0..7-element tails, usable by maskload/maskstore.
inline __m256i tail_mask(int r) {
  alignas(32) static const std::int32_t lut[16] = {
      -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(lut + (8 - r)));
}

// ---------------------------------------------------------------------------
// C[m,n] = A[m,k] B[k,n], row mask over m; partition over i.
//
// Per active output row: cache-blocked over k, register-tiled 1x16 over j.
// The C tile stays in two ymm accumulators for a whole k-block, so B is the
// only streamed operand. Accumulation over kk is ascending across and
// within blocks — the per-element order the determinism contract needs.
// ---------------------------------------------------------------------------
void row_times_panel(const float* arow, const float* b, float* crow, int k,
                     int n) {
  for (int k0 = 0; k0 < k; k0 += kKcBlock) {
    const int k1 = k0 + kKcBlock < k ? k0 + kKcBlock : k;
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 acc0 = _mm256_loadu_ps(crow + j);
      __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
      for (int kk = k0; kk < k1; ++kk) {
        const __m256 aik = _mm256_set1_ps(arow[kk]);
        const float* brow = b + static_cast<std::size_t>(kk) * n + j;
        acc0 = _mm256_fmadd_ps(aik, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(aik, _mm256_loadu_ps(brow + 8), acc1);
      }
      _mm256_storeu_ps(crow + j, acc0);
      _mm256_storeu_ps(crow + j + 8, acc1);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (int kk = k0; kk < k1; ++kk) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(arow[kk]),
            _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * n + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    if (j < n) {
      const __m256i tm = tail_mask(n - j);
      __m256 acc = _mm256_maskload_ps(crow + j, tm);
      for (int kk = k0; kk < k1; ++kk) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(arow[kk]),
            _mm256_maskload_ps(b + static_cast<std::size_t>(kk) * n + j, tm),
            acc);
      }
      _mm256_maskstore_ps(crow + j, tm, acc);
    }
  }
}

// Four rows x 16 columns: eight independent accumulator chains hide the
// 4-5 cycle FMA latency a one-row tile is bound by, and every B-row load
// pair is amortized over four A rows. Per output element the kk sequence
// (ascending within ascending k-blocks) is identical to row_times_panel,
// so the two tiles are bitwise interchangeable per row.
void rows4_panel(const float* a0, const float* a1, const float* a2,
                 const float* a3, const float* b, float* c0, float* c1,
                 float* c2, float* c3, int k, int n) {
  for (int k0 = 0; k0 < k; k0 += kKcBlock) {
    const int k1 = k0 + kKcBlock < k ? k0 + kKcBlock : k;
    int j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 acc00 = _mm256_loadu_ps(c0 + j);
      __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc10 = _mm256_loadu_ps(c1 + j);
      __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc20 = _mm256_loadu_ps(c2 + j);
      __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc30 = _mm256_loadu_ps(c3 + j);
      __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
      for (int kk = k0; kk < k1; ++kk) {
        const float* brow = b + static_cast<std::size_t>(kk) * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a0[kk]);
        acc00 = _mm256_fmadd_ps(av, b0, acc00);
        acc01 = _mm256_fmadd_ps(av, b1, acc01);
        av = _mm256_set1_ps(a1[kk]);
        acc10 = _mm256_fmadd_ps(av, b0, acc10);
        acc11 = _mm256_fmadd_ps(av, b1, acc11);
        av = _mm256_set1_ps(a2[kk]);
        acc20 = _mm256_fmadd_ps(av, b0, acc20);
        acc21 = _mm256_fmadd_ps(av, b1, acc21);
        av = _mm256_set1_ps(a3[kk]);
        acc30 = _mm256_fmadd_ps(av, b0, acc30);
        acc31 = _mm256_fmadd_ps(av, b1, acc31);
      }
      _mm256_storeu_ps(c0 + j, acc00);
      _mm256_storeu_ps(c0 + j + 8, acc01);
      _mm256_storeu_ps(c1 + j, acc10);
      _mm256_storeu_ps(c1 + j + 8, acc11);
      _mm256_storeu_ps(c2 + j, acc20);
      _mm256_storeu_ps(c2 + j + 8, acc21);
      _mm256_storeu_ps(c3 + j, acc30);
      _mm256_storeu_ps(c3 + j + 8, acc31);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      for (int kk = k0; kk < k1; ++kk) {
        const __m256 bv =
            _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * n + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), bv, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < n) {
      const __m256i tm = tail_mask(n - j);
      __m256 acc0 = _mm256_maskload_ps(c0 + j, tm);
      __m256 acc1 = _mm256_maskload_ps(c1 + j, tm);
      __m256 acc2 = _mm256_maskload_ps(c2 + j, tm);
      __m256 acc3 = _mm256_maskload_ps(c3 + j, tm);
      for (int kk = k0; kk < k1; ++kk) {
        const __m256 bv =
            _mm256_maskload_ps(b + static_cast<std::size_t>(kk) * n + j, tm);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), bv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), bv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), bv, acc3);
      }
      _mm256_maskstore_ps(c0 + j, tm, acc0);
      _mm256_maskstore_ps(c1 + j, tm, acc1);
      _mm256_maskstore_ps(c2 + j, tm, acc2);
      _mm256_maskstore_ps(c3 + j, tm, acc3);
    }
  }
}

void v_matmul_rows(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  // Gather active rows into quads (rows need not be adjacent); leftovers
  // take the one-row tile, which is bitwise identical per row.
  const float* ar[4];
  float* cr[4];
  int nr = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    if (t.mask != nullptr && t.mask[i] == 0) continue;
    ar[nr] = t.a + static_cast<std::size_t>(i) * t.k;
    cr[nr] = t.c + static_cast<std::size_t>(i) * t.n;
    if (++nr == 4) {
      rows4_panel(ar[0], ar[1], ar[2], ar[3], t.b, cr[0], cr[1], cr[2],
                  cr[3], t.k, t.n);
      nr = 0;
    }
  }
  for (int r = 0; r < nr; ++r) {
    row_times_panel(ar[r], t.b, cr[r], t.k, t.n);
  }
}

// ---------------------------------------------------------------------------
// C[k,n] += A^T[k,m] B[m,n] over active rows i; partition over kk.
//
// Output rows are processed in pairs sharing every B-row load (halves the
// streamed traffic); per element the i loop is ascending, matching scalar.
// ---------------------------------------------------------------------------
void tn_acc_one(const MatmulArgs& t, std::int64_t kk) {
  const int n = t.n;
  float* crow = t.c + static_cast<std::size_t>(kk) * n;
  // n_active >= 0 is the "index list provided" discriminator: an all-masked
  // call carries a length-0 list whose data() is null, so the pointer alone
  // cannot distinguish "no list" from "nothing active".
  const bool use_list = t.n_active >= 0;
  const std::int64_t cnt = use_list ? t.n_active : t.m;
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_loadu_ps(crow + j);
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t i = use_list ? t.active[idx] : idx;
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(t.a[static_cast<std::size_t>(i) * t.k +
                             static_cast<std::size_t>(kk)]),
          _mm256_loadu_ps(t.b + static_cast<std::size_t>(i) * n + j), acc);
    }
    _mm256_storeu_ps(crow + j, acc);
  }
  if (j < n) {
    const __m256i tm = tail_mask(n - j);
    __m256 acc = _mm256_maskload_ps(crow + j, tm);
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t i = use_list ? t.active[idx] : idx;
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(t.a[static_cast<std::size_t>(i) * t.k +
                             static_cast<std::size_t>(kk)]),
          _mm256_maskload_ps(t.b + static_cast<std::size_t>(i) * n + j, tm),
          acc);
    }
    _mm256_maskstore_ps(crow + j, tm, acc);
  }
}

void v_matmul_tn_acc(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  const int n = t.n;
  const bool use_list = t.n_active >= 0;
  const std::int64_t cnt = use_list ? t.n_active : t.m;
  std::int64_t kk = lo;
  for (; kk + 2 <= hi; kk += 2) {
    float* crow0 = t.c + static_cast<std::size_t>(kk) * n;
    float* crow1 = crow0 + n;
    int j = 0;
    // 2 kk x 32 j: eight independent accumulator chains hide FMA latency;
    // per lane the i sequence is identical to the 8-wide loop below, so
    // widths are bitwise interchangeable.
    for (; j + 32 <= n; j += 32) {
      __m256 acc00 = _mm256_loadu_ps(crow0 + j);
      __m256 acc01 = _mm256_loadu_ps(crow0 + j + 8);
      __m256 acc02 = _mm256_loadu_ps(crow0 + j + 16);
      __m256 acc03 = _mm256_loadu_ps(crow0 + j + 24);
      __m256 acc10 = _mm256_loadu_ps(crow1 + j);
      __m256 acc11 = _mm256_loadu_ps(crow1 + j + 8);
      __m256 acc12 = _mm256_loadu_ps(crow1 + j + 16);
      __m256 acc13 = _mm256_loadu_ps(crow1 + j + 24);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t i = use_list ? t.active[idx] : idx;
        const float* apos = t.a + static_cast<std::size_t>(i) * t.k +
                            static_cast<std::size_t>(kk);
        const float* brow = t.b + static_cast<std::size_t>(i) * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        const __m256 a0 = _mm256_set1_ps(apos[0]);
        const __m256 a1 = _mm256_set1_ps(apos[1]);
        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
        acc02 = _mm256_fmadd_ps(a0, b2, acc02);
        acc03 = _mm256_fmadd_ps(a0, b3, acc03);
        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
        acc12 = _mm256_fmadd_ps(a1, b2, acc12);
        acc13 = _mm256_fmadd_ps(a1, b3, acc13);
      }
      _mm256_storeu_ps(crow0 + j, acc00);
      _mm256_storeu_ps(crow0 + j + 8, acc01);
      _mm256_storeu_ps(crow0 + j + 16, acc02);
      _mm256_storeu_ps(crow0 + j + 24, acc03);
      _mm256_storeu_ps(crow1 + j, acc10);
      _mm256_storeu_ps(crow1 + j + 8, acc11);
      _mm256_storeu_ps(crow1 + j + 16, acc12);
      _mm256_storeu_ps(crow1 + j + 24, acc13);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(crow0 + j);
      __m256 acc1 = _mm256_loadu_ps(crow1 + j);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t i = use_list ? t.active[idx] : idx;
        const float* apos =
            t.a + static_cast<std::size_t>(i) * t.k + static_cast<std::size_t>(kk);
        const __m256 brow =
            _mm256_loadu_ps(t.b + static_cast<std::size_t>(i) * n + j);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(apos[0]), brow, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(apos[1]), brow, acc1);
      }
      _mm256_storeu_ps(crow0 + j, acc0);
      _mm256_storeu_ps(crow1 + j, acc1);
    }
    if (j < n) {
      const __m256i tm = tail_mask(n - j);
      __m256 acc0 = _mm256_maskload_ps(crow0 + j, tm);
      __m256 acc1 = _mm256_maskload_ps(crow1 + j, tm);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t i = use_list ? t.active[idx] : idx;
        const float* apos =
            t.a + static_cast<std::size_t>(i) * t.k + static_cast<std::size_t>(kk);
        const __m256 brow =
            _mm256_maskload_ps(t.b + static_cast<std::size_t>(i) * n + j, tm);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(apos[0]), brow, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(apos[1]), brow, acc1);
      }
      _mm256_maskstore_ps(crow0 + j, tm, acc0);
      _mm256_maskstore_ps(crow1 + j, tm, acc1);
    }
  }
  for (; kk < hi; ++kk) tn_acc_one(t, kk);
}

// ---------------------------------------------------------------------------
// Vector dot product over k with four ascending-order accumulators; the
// lane reduction order is fixed, so within-backend results never depend on
// callers. Differs from scalar's single-accumulator order (ULP tolerance).
// ---------------------------------------------------------------------------
inline float dot_avx2(const float* x, const float* y, int k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int kk = 0;
  for (; kk + 32 <= k; kk += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk),
                           _mm256_loadu_ps(y + kk), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 8),
                           _mm256_loadu_ps(y + kk + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 16),
                           _mm256_loadu_ps(y + kk + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk + 24),
                           _mm256_loadu_ps(y + kk + 24), acc3);
  }
  for (; kk + 8 <= k; kk += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk),
                           _mm256_loadu_ps(y + kk), acc0);
  }
  if (kk < k) {
    const __m256i tm = tail_mask(k - kk);
    acc1 = _mm256_fmadd_ps(_mm256_maskload_ps(x + kk, tm),
                           _mm256_maskload_ps(y + kk, tm), acc1);
  }
  const __m256 s01 = _mm256_add_ps(acc0, acc1);
  const __m256 s23 = _mm256_add_ps(acc2, acc3);
  const __m256 s = _mm256_add_ps(s01, s23);
  const __m128 lo128 = _mm256_castps256_ps128(s);
  const __m128 hi128 = _mm256_extractf128_ps(s, 1);
  __m128 r = _mm_add_ps(lo128, hi128);
  r = _mm_add_ps(r, _mm_movehl_ps(r, r));
  r = _mm_add_ss(r, _mm_shuffle_ps(r, r, 0x55));
  return _mm_cvtss_f32(r);
}

// C[m,n] = A[m,k] B^T[n,k], column mask over n; partition over i.
void v_matmul_nt_cols(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  const bool use_list = t.n_active >= 0;
  const std::int64_t cnt = use_list ? t.n_active : t.n;
  for (std::int64_t i = lo; i < hi; ++i) {
    const float* arow = t.a + static_cast<std::size_t>(i) * t.k;
    float* crow = t.c + static_cast<std::size_t>(i) * t.n;
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t j = use_list ? t.active[idx] : idx;
      crow[j] =
          dot_avx2(arow, t.b + static_cast<std::size_t>(j) * t.k, t.k);
    }
  }
}

// C[m,n] += A[m,k] B^T[n,k] over active rows m; partition over i.
void v_matmul_nt_rows_acc(const MatmulArgs& t, std::int64_t lo,
                          std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    if (t.mask != nullptr && t.mask[i] == 0) continue;
    const float* arow = t.a + static_cast<std::size_t>(i) * t.k;
    float* crow = t.c + static_cast<std::size_t>(i) * t.n;
    for (int j = 0; j < t.n; ++j) {
      crow[j] +=
          dot_avx2(arow, t.b + static_cast<std::size_t>(j) * t.k, t.k);
    }
  }
}

// ---------------------------------------------------------------------------
// C[m,k] += A[m,n] B[n,k] restricted to active inner n; partition over i.
// Register-tiles C 1x16 over kk with the active-j loop innermost (ascending
// j — scalar's per-element order); B rows are the streamed operand.
// ---------------------------------------------------------------------------
void nn_inner_one(const MatmulArgs& t, std::int64_t i) {
  const int n = t.n, k = t.k;
  const bool use_list = t.n_active >= 0;
  const std::int64_t cnt = use_list ? t.n_active : n;
  const float* arow = t.a + static_cast<std::size_t>(i) * n;
  float* crow = t.c + static_cast<std::size_t>(i) * k;
  int kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    __m256 acc0 = _mm256_loadu_ps(crow + kk);
    __m256 acc1 = _mm256_loadu_ps(crow + kk + 8);
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t j = use_list ? t.active[idx] : idx;
      const __m256 aij = _mm256_set1_ps(arow[j]);
      const float* brow = t.b + static_cast<std::size_t>(j) * k + kk;
      acc0 = _mm256_fmadd_ps(aij, _mm256_loadu_ps(brow), acc0);
      acc1 = _mm256_fmadd_ps(aij, _mm256_loadu_ps(brow + 8), acc1);
    }
    _mm256_storeu_ps(crow + kk, acc0);
    _mm256_storeu_ps(crow + kk + 8, acc1);
  }
  for (; kk + 8 <= k; kk += 8) {
    __m256 acc = _mm256_loadu_ps(crow + kk);
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t j = use_list ? t.active[idx] : idx;
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(arow[j]),
          _mm256_loadu_ps(t.b + static_cast<std::size_t>(j) * k + kk), acc);
    }
    _mm256_storeu_ps(crow + kk, acc);
  }
  if (kk < k) {
    const __m256i tm = tail_mask(k - kk);
    __m256 acc = _mm256_maskload_ps(crow + kk, tm);
    for (std::int64_t idx = 0; idx < cnt; ++idx) {
      const std::int64_t j = use_list ? t.active[idx] : idx;
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(arow[j]),
          _mm256_maskload_ps(t.b + static_cast<std::size_t>(j) * k + kk, tm),
          acc);
    }
    _mm256_maskstore_ps(crow + kk, tm, acc);
  }
}

void v_matmul_nn_inner_acc(const MatmulArgs& t, std::int64_t lo,
                           std::int64_t hi) {
  const int n = t.n, k = t.k;
  const bool use_list = t.n_active >= 0;
  const std::int64_t cnt = use_list ? t.n_active : n;
  std::int64_t i = lo;
  // 2 rows x 32 kk: eight independent accumulator chains, each B row load
  // shared by both rows. Per lane the active-j sequence matches the
  // one-row tile, so pairing and leftovers are bitwise interchangeable.
  for (; i + 2 <= hi; i += 2) {
    const float* arow0 = t.a + static_cast<std::size_t>(i) * n;
    const float* arow1 = arow0 + n;
    float* crow0 = t.c + static_cast<std::size_t>(i) * k;
    float* crow1 = crow0 + k;
    int kk = 0;
    for (; kk + 32 <= k; kk += 32) {
      __m256 acc00 = _mm256_loadu_ps(crow0 + kk);
      __m256 acc01 = _mm256_loadu_ps(crow0 + kk + 8);
      __m256 acc02 = _mm256_loadu_ps(crow0 + kk + 16);
      __m256 acc03 = _mm256_loadu_ps(crow0 + kk + 24);
      __m256 acc10 = _mm256_loadu_ps(crow1 + kk);
      __m256 acc11 = _mm256_loadu_ps(crow1 + kk + 8);
      __m256 acc12 = _mm256_loadu_ps(crow1 + kk + 16);
      __m256 acc13 = _mm256_loadu_ps(crow1 + kk + 24);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t j = use_list ? t.active[idx] : idx;
        const float* brow = t.b + static_cast<std::size_t>(j) * k + kk;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        const __m256 a0 = _mm256_set1_ps(arow0[j]);
        const __m256 a1 = _mm256_set1_ps(arow1[j]);
        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
        acc02 = _mm256_fmadd_ps(a0, b2, acc02);
        acc03 = _mm256_fmadd_ps(a0, b3, acc03);
        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
        acc12 = _mm256_fmadd_ps(a1, b2, acc12);
        acc13 = _mm256_fmadd_ps(a1, b3, acc13);
      }
      _mm256_storeu_ps(crow0 + kk, acc00);
      _mm256_storeu_ps(crow0 + kk + 8, acc01);
      _mm256_storeu_ps(crow0 + kk + 16, acc02);
      _mm256_storeu_ps(crow0 + kk + 24, acc03);
      _mm256_storeu_ps(crow1 + kk, acc10);
      _mm256_storeu_ps(crow1 + kk + 8, acc11);
      _mm256_storeu_ps(crow1 + kk + 16, acc12);
      _mm256_storeu_ps(crow1 + kk + 24, acc13);
    }
    for (; kk + 8 <= k; kk += 8) {
      __m256 acc0 = _mm256_loadu_ps(crow0 + kk);
      __m256 acc1 = _mm256_loadu_ps(crow1 + kk);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t j = use_list ? t.active[idx] : idx;
        const __m256 bv =
            _mm256_loadu_ps(t.b + static_cast<std::size_t>(j) * k + kk);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(arow0[j]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(arow1[j]), bv, acc1);
      }
      _mm256_storeu_ps(crow0 + kk, acc0);
      _mm256_storeu_ps(crow1 + kk, acc1);
    }
    if (kk < k) {
      const __m256i tm = tail_mask(k - kk);
      __m256 acc0 = _mm256_maskload_ps(crow0 + kk, tm);
      __m256 acc1 = _mm256_maskload_ps(crow1 + kk, tm);
      for (std::int64_t idx = 0; idx < cnt; ++idx) {
        const std::int64_t j = use_list ? t.active[idx] : idx;
        const __m256 bv = _mm256_maskload_ps(
            t.b + static_cast<std::size_t>(j) * k + kk, tm);
        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(arow0[j]), bv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(arow1[j]), bv, acc1);
      }
      _mm256_maskstore_ps(crow0 + kk, tm, acc0);
      _mm256_maskstore_ps(crow1 + kk, tm, acc1);
    }
  }
  for (; i < hi; ++i) nn_inner_one(t, i);
}

// ---------------------------------------------------------------------------
// C[n,k] = A^T[n,m] B[m,k] with row mask over n; partition over j.
// Register-tiles C 1x16 over kk with the i loop innermost (ascending i).
// ---------------------------------------------------------------------------
void tn_out_pair(const MatmulArgs& t, std::int64_t j0, std::int64_t j1,
                 int i0, int i1) {
  const int n = t.n, k = t.k;
  const float* acol0 = t.a + static_cast<std::size_t>(j0);
  const float* acol1 = t.a + static_cast<std::size_t>(j1);
  float* crow0 = t.c + static_cast<std::size_t>(j0) * k;
  float* crow1 = t.c + static_cast<std::size_t>(j1) * k;
  int kk = 0;
  // 2 output rows x 32 kk: eight independent accumulator chains, each B
  // row load shared by both output rows; per lane the i sequence matches
  // the one-row tile below, so pairing is bitwise interchangeable.
  for (; kk + 32 <= k; kk += 32) {
    __m256 acc00 = _mm256_loadu_ps(crow0 + kk);
    __m256 acc01 = _mm256_loadu_ps(crow0 + kk + 8);
    __m256 acc02 = _mm256_loadu_ps(crow0 + kk + 16);
    __m256 acc03 = _mm256_loadu_ps(crow0 + kk + 24);
    __m256 acc10 = _mm256_loadu_ps(crow1 + kk);
    __m256 acc11 = _mm256_loadu_ps(crow1 + kk + 8);
    __m256 acc12 = _mm256_loadu_ps(crow1 + kk + 16);
    __m256 acc13 = _mm256_loadu_ps(crow1 + kk + 24);
    for (int i = i0; i < i1; ++i) {
      const float* brow = t.b + static_cast<std::size_t>(i) * k + kk;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      const __m256 b2 = _mm256_loadu_ps(brow + 16);
      const __m256 b3 = _mm256_loadu_ps(brow + 24);
      const __m256 a0 =
          _mm256_set1_ps(acol0[static_cast<std::size_t>(i) * n]);
      const __m256 a1 =
          _mm256_set1_ps(acol1[static_cast<std::size_t>(i) * n]);
      acc00 = _mm256_fmadd_ps(a0, b0, acc00);
      acc01 = _mm256_fmadd_ps(a0, b1, acc01);
      acc02 = _mm256_fmadd_ps(a0, b2, acc02);
      acc03 = _mm256_fmadd_ps(a0, b3, acc03);
      acc10 = _mm256_fmadd_ps(a1, b0, acc10);
      acc11 = _mm256_fmadd_ps(a1, b1, acc11);
      acc12 = _mm256_fmadd_ps(a1, b2, acc12);
      acc13 = _mm256_fmadd_ps(a1, b3, acc13);
    }
    _mm256_storeu_ps(crow0 + kk, acc00);
    _mm256_storeu_ps(crow0 + kk + 8, acc01);
    _mm256_storeu_ps(crow0 + kk + 16, acc02);
    _mm256_storeu_ps(crow0 + kk + 24, acc03);
    _mm256_storeu_ps(crow1 + kk, acc10);
    _mm256_storeu_ps(crow1 + kk + 8, acc11);
    _mm256_storeu_ps(crow1 + kk + 16, acc12);
    _mm256_storeu_ps(crow1 + kk + 24, acc13);
  }
  for (; kk + 8 <= k; kk += 8) {
    __m256 acc0 = _mm256_loadu_ps(crow0 + kk);
    __m256 acc1 = _mm256_loadu_ps(crow1 + kk);
    for (int i = i0; i < i1; ++i) {
      const __m256 bv =
          _mm256_loadu_ps(t.b + static_cast<std::size_t>(i) * k + kk);
      acc0 = _mm256_fmadd_ps(
          _mm256_set1_ps(acol0[static_cast<std::size_t>(i) * n]), bv, acc0);
      acc1 = _mm256_fmadd_ps(
          _mm256_set1_ps(acol1[static_cast<std::size_t>(i) * n]), bv, acc1);
    }
    _mm256_storeu_ps(crow0 + kk, acc0);
    _mm256_storeu_ps(crow1 + kk, acc1);
  }
  if (kk < k) {
    const __m256i tm = tail_mask(k - kk);
    __m256 acc0 = _mm256_maskload_ps(crow0 + kk, tm);
    __m256 acc1 = _mm256_maskload_ps(crow1 + kk, tm);
    for (int i = i0; i < i1; ++i) {
      const __m256 bv =
          _mm256_maskload_ps(t.b + static_cast<std::size_t>(i) * k + kk, tm);
      acc0 = _mm256_fmadd_ps(
          _mm256_set1_ps(acol0[static_cast<std::size_t>(i) * n]), bv, acc0);
      acc1 = _mm256_fmadd_ps(
          _mm256_set1_ps(acol1[static_cast<std::size_t>(i) * n]), bv, acc1);
    }
    _mm256_maskstore_ps(crow0 + kk, tm, acc0);
    _mm256_maskstore_ps(crow1 + kk, tm, acc1);
  }
}

void tn_out_one(const MatmulArgs& t, std::int64_t j, int i0, int i1) {
  const int n = t.n, k = t.k;
  {
    const float* acol = t.a + static_cast<std::size_t>(j);
    float* crow = t.c + static_cast<std::size_t>(j) * k;
    int kk = 0;
    for (; kk + 16 <= k; kk += 16) {
      __m256 acc0 = _mm256_loadu_ps(crow + kk);
      __m256 acc1 = _mm256_loadu_ps(crow + kk + 8);
      for (int i = i0; i < i1; ++i) {
        const __m256 aij =
            _mm256_set1_ps(acol[static_cast<std::size_t>(i) * n]);
        const float* brow = t.b + static_cast<std::size_t>(i) * k + kk;
        acc0 = _mm256_fmadd_ps(aij, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(aij, _mm256_loadu_ps(brow + 8), acc1);
      }
      _mm256_storeu_ps(crow + kk, acc0);
      _mm256_storeu_ps(crow + kk + 8, acc1);
    }
    for (; kk + 8 <= k; kk += 8) {
      __m256 acc = _mm256_loadu_ps(crow + kk);
      for (int i = i0; i < i1; ++i) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(acol[static_cast<std::size_t>(i) * n]),
            _mm256_loadu_ps(t.b + static_cast<std::size_t>(i) * k + kk), acc);
      }
      _mm256_storeu_ps(crow + kk, acc);
    }
    if (kk < k) {
      const __m256i tm = tail_mask(k - kk);
      __m256 acc = _mm256_maskload_ps(crow + kk, tm);
      for (int i = i0; i < i1; ++i) {
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(acol[static_cast<std::size_t>(i) * n]),
            _mm256_maskload_ps(t.b + static_cast<std::size_t>(i) * k + kk, tm),
            acc);
      }
      _mm256_maskstore_ps(crow + kk, tm, acc);
    }
  }
}

// Four output rows x 16 kk: halves B bandwidth per FLOP versus the pair
// tile (each streamed B row feeds four output rows), which is what bounds
// the L2-resident shapes. Same ascending-i per-element order as the pair
// and one-row tiles, so all three are bitwise interchangeable per row.
void tn_out_quad(const MatmulArgs& t, const std::int64_t* js, int i0,
                 int i1) {
  const int n = t.n, k = t.k;
  const float* acol[4];
  float* crow[4];
  for (int r = 0; r < 4; ++r) {
    acol[r] = t.a + static_cast<std::size_t>(js[r]);
    crow[r] = t.c + static_cast<std::size_t>(js[r]) * k;
  }
  int kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    __m256 acc00 = _mm256_loadu_ps(crow[0] + kk);
    __m256 acc01 = _mm256_loadu_ps(crow[0] + kk + 8);
    __m256 acc10 = _mm256_loadu_ps(crow[1] + kk);
    __m256 acc11 = _mm256_loadu_ps(crow[1] + kk + 8);
    __m256 acc20 = _mm256_loadu_ps(crow[2] + kk);
    __m256 acc21 = _mm256_loadu_ps(crow[2] + kk + 8);
    __m256 acc30 = _mm256_loadu_ps(crow[3] + kk);
    __m256 acc31 = _mm256_loadu_ps(crow[3] + kk + 8);
    for (int i = i0; i < i1; ++i) {
      const float* brow = t.b + static_cast<std::size_t>(i) * k + kk;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      const std::size_t off = static_cast<std::size_t>(i) * n;
      __m256 av = _mm256_set1_ps(acol[0][off]);
      acc00 = _mm256_fmadd_ps(av, b0, acc00);
      acc01 = _mm256_fmadd_ps(av, b1, acc01);
      av = _mm256_set1_ps(acol[1][off]);
      acc10 = _mm256_fmadd_ps(av, b0, acc10);
      acc11 = _mm256_fmadd_ps(av, b1, acc11);
      av = _mm256_set1_ps(acol[2][off]);
      acc20 = _mm256_fmadd_ps(av, b0, acc20);
      acc21 = _mm256_fmadd_ps(av, b1, acc21);
      av = _mm256_set1_ps(acol[3][off]);
      acc30 = _mm256_fmadd_ps(av, b0, acc30);
      acc31 = _mm256_fmadd_ps(av, b1, acc31);
    }
    _mm256_storeu_ps(crow[0] + kk, acc00);
    _mm256_storeu_ps(crow[0] + kk + 8, acc01);
    _mm256_storeu_ps(crow[1] + kk, acc10);
    _mm256_storeu_ps(crow[1] + kk + 8, acc11);
    _mm256_storeu_ps(crow[2] + kk, acc20);
    _mm256_storeu_ps(crow[2] + kk + 8, acc21);
    _mm256_storeu_ps(crow[3] + kk, acc30);
    _mm256_storeu_ps(crow[3] + kk + 8, acc31);
  }
  for (; kk + 8 <= k; kk += 8) {
    __m256 acc0 = _mm256_loadu_ps(crow[0] + kk);
    __m256 acc1 = _mm256_loadu_ps(crow[1] + kk);
    __m256 acc2 = _mm256_loadu_ps(crow[2] + kk);
    __m256 acc3 = _mm256_loadu_ps(crow[3] + kk);
    for (int i = i0; i < i1; ++i) {
      const __m256 bv =
          _mm256_loadu_ps(t.b + static_cast<std::size_t>(i) * k + kk);
      const std::size_t off = static_cast<std::size_t>(i) * n;
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(acol[0][off]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(acol[1][off]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(acol[2][off]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(acol[3][off]), bv, acc3);
    }
    _mm256_storeu_ps(crow[0] + kk, acc0);
    _mm256_storeu_ps(crow[1] + kk, acc1);
    _mm256_storeu_ps(crow[2] + kk, acc2);
    _mm256_storeu_ps(crow[3] + kk, acc3);
  }
  if (kk < k) {
    const __m256i tm = tail_mask(k - kk);
    __m256 acc0 = _mm256_maskload_ps(crow[0] + kk, tm);
    __m256 acc1 = _mm256_maskload_ps(crow[1] + kk, tm);
    __m256 acc2 = _mm256_maskload_ps(crow[2] + kk, tm);
    __m256 acc3 = _mm256_maskload_ps(crow[3] + kk, tm);
    for (int i = i0; i < i1; ++i) {
      const __m256 bv =
          _mm256_maskload_ps(t.b + static_cast<std::size_t>(i) * k + kk, tm);
      const std::size_t off = static_cast<std::size_t>(i) * n;
      acc0 = _mm256_fmadd_ps(_mm256_set1_ps(acol[0][off]), bv, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_set1_ps(acol[1][off]), bv, acc1);
      acc2 = _mm256_fmadd_ps(_mm256_set1_ps(acol[2][off]), bv, acc2);
      acc3 = _mm256_fmadd_ps(_mm256_set1_ps(acol[3][off]), bv, acc3);
    }
    _mm256_maskstore_ps(crow[0] + kk, tm, acc0);
    _mm256_maskstore_ps(crow[1] + kk, tm, acc1);
    _mm256_maskstore_ps(crow[2] + kk, tm, acc2);
    _mm256_maskstore_ps(crow[3] + kk, tm, acc3);
  }
}

void v_matmul_tn_out_rows(const MatmulArgs& t, std::int64_t lo,
                          std::int64_t hi) {
  // Outer i-blocking: B is fully streamed once per output-row pair, so at
  // shapes where B spills L2 (m*k beyond ~128k floats) every pair would
  // re-fetch it from L3. Visiting all output rows per i-block instead
  // reuses each B block across the whole range. Block boundaries depend
  // only on m, and per element the i order (ascending blocks, ascending
  // within) equals the unblocked loop, so chunking and pairing stay
  // bitwise interchangeable.
  constexpr int kIBlock = 64;
  for (int i0 = 0; i0 < t.m; i0 += kIBlock) {
    const int i1 = i0 + kIBlock < t.m ? i0 + kIBlock : t.m;
    // Gather active output rows into quads (rows need not be adjacent);
    // leftovers take the pair / one-row tiles, bitwise identical per row.
    std::int64_t js[4];
    int nj = 0;
    for (std::int64_t j = lo; j < hi; ++j) {
      if (t.mask != nullptr && t.mask[j] == 0) continue;
      js[nj] = j;
      if (++nj == 4) {
        tn_out_quad(t, js, i0, i1);
        nj = 0;
      }
    }
    if (nj >= 2) tn_out_pair(t, js[0], js[1], i0, i1);
    if (nj & 1) tn_out_one(t, js[nj - 1], i0, i1);
  }
}

// ---------------------------------------------------------------------------
// Optimizer updates. Exact operation order of the scalar reference with
// mul/add/div/sqrt only (no FMA; -ffp-contract=off keeps the compiler from
// introducing any) — bitwise identical to scalar. Frozen lanes are restored
// via blendv, so their bytes never change.
// ---------------------------------------------------------------------------
inline __m256 active_lanes(const std::uint8_t* frozen, std::size_t i) {
  const __m128i bytes = _mm_loadl_epi64(
      reinterpret_cast<const __m128i*>(frozen + i));
  const __m256i lanes = _mm256_cvtepu8_epi32(bytes);
  return _mm256_castsi256_ps(
      _mm256_cmpeq_epi32(lanes, _mm256_setzero_si256()));
}

void v_sgd_update(const SgdArgs& t) {
  const std::size_t vec = t.count & ~std::size_t{7};
  const __m256 lr = _mm256_set1_ps(t.lr);
  const __m256 mom = _mm256_set1_ps(t.momentum);
  const __m256 wd = _mm256_set1_ps(t.weight_decay);
  const __m256 clip = _mm256_set1_ps(t.clip_scale);
  for (std::size_t i = 0; i < vec; i += 8) {
    const __m256 w = _mm256_loadu_ps(t.w + i);
    const __m256 g = _mm256_loadu_ps(t.g + i);
    __m256 grad = _mm256_add_ps(_mm256_mul_ps(g, clip), _mm256_mul_ps(wd, w));
    if (t.v != nullptr) {
      const __m256 v_old = _mm256_loadu_ps(t.v + i);
      __m256 v_new = _mm256_add_ps(_mm256_mul_ps(mom, v_old), grad);
      if (t.frozen != nullptr) {
        v_new = _mm256_blendv_ps(v_old, v_new, active_lanes(t.frozen, i));
      }
      _mm256_storeu_ps(t.v + i, v_new);
      grad = v_new;
    }
    __m256 w_new = _mm256_sub_ps(w, _mm256_mul_ps(lr, grad));
    if (t.frozen != nullptr) {
      w_new = _mm256_blendv_ps(w, w_new, active_lanes(t.frozen, i));
    }
    _mm256_storeu_ps(t.w + i, w_new);
  }
  for (std::size_t i = vec; i < t.count; ++i) {
    if (t.frozen && t.frozen[i]) continue;
    float grad = t.g[i] * t.clip_scale + t.weight_decay * t.w[i];
    if (t.v != nullptr) {
      t.v[i] = t.momentum * t.v[i] + grad;
      grad = t.v[i];
    }
    t.w[i] -= t.lr * grad;
  }
}

void v_adam_update(const AdamArgs& t) {
  const std::size_t vec = t.count & ~std::size_t{7};
  const __m256 lr = _mm256_set1_ps(t.lr);
  const __m256 b1 = _mm256_set1_ps(t.beta1);
  const __m256 b2 = _mm256_set1_ps(t.beta2);
  const __m256 one_minus_b1 = _mm256_set1_ps(1.0F - t.beta1);
  const __m256 one_minus_b2 = _mm256_set1_ps(1.0F - t.beta2);
  const __m256 eps = _mm256_set1_ps(t.eps);
  const __m256 wd = _mm256_set1_ps(t.weight_decay);
  const __m256 bc1 = _mm256_set1_ps(t.bc1);
  const __m256 bc2 = _mm256_set1_ps(t.bc2);
  for (std::size_t i = 0; i < vec; i += 8) {
    const __m256 w = _mm256_loadu_ps(t.w + i);
    const __m256 g = _mm256_loadu_ps(t.g + i);
    const __m256 m_old = _mm256_loadu_ps(t.m + i);
    const __m256 v_old = _mm256_loadu_ps(t.v + i);
    const __m256 grad = _mm256_add_ps(g, _mm256_mul_ps(wd, w));
    __m256 m_new = _mm256_add_ps(_mm256_mul_ps(b1, m_old),
                                 _mm256_mul_ps(one_minus_b1, grad));
    // Match scalar's left-to-right association ((1-b2)*grad)*grad — float
    // multiplication is commutative but not associative, and the contract
    // is bitwise identity.
    __m256 v_new = _mm256_add_ps(
        _mm256_mul_ps(b2, v_old),
        _mm256_mul_ps(_mm256_mul_ps(one_minus_b2, grad), grad));
    const __m256 mhat = _mm256_div_ps(m_new, bc1);
    const __m256 vhat = _mm256_div_ps(v_new, bc2);
    const __m256 upd = _mm256_div_ps(
        _mm256_mul_ps(lr, mhat),
        _mm256_add_ps(_mm256_sqrt_ps(vhat), eps));
    __m256 w_new = _mm256_sub_ps(w, upd);
    if (t.frozen != nullptr) {
      const __m256 act = active_lanes(t.frozen, i);
      m_new = _mm256_blendv_ps(m_old, m_new, act);
      v_new = _mm256_blendv_ps(v_old, v_new, act);
      w_new = _mm256_blendv_ps(w, w_new, act);
    }
    _mm256_storeu_ps(t.m + i, m_new);
    _mm256_storeu_ps(t.v + i, v_new);
    _mm256_storeu_ps(t.w + i, w_new);
  }
  for (std::size_t i = vec; i < t.count; ++i) {
    if (t.frozen && t.frozen[i]) continue;
    const float grad = t.g[i] + t.weight_decay * t.w[i];
    t.m[i] = t.beta1 * t.m[i] + (1.0F - t.beta1) * grad;
    t.v[i] = t.beta2 * t.v[i] + (1.0F - t.beta2) * grad * grad;
    const float mhat = t.m[i] / t.bc1;
    const float vhat = t.v[i] / t.bc2;
    t.w[i] -= t.lr * mhat / (std::sqrt(vhat) + t.eps);
  }
}

}  // namespace

const KernelTable& avx2_kernels() {
  static const KernelTable table = {
      /*name=*/"avx2",
      /*id=*/Backend::kAvx2,
      /*use_index_lists=*/true,
      /*matmul_rows=*/v_matmul_rows,
      /*matmul_tn_acc=*/v_matmul_tn_acc,
      /*matmul_nt_cols=*/v_matmul_nt_cols,
      /*matmul_nn_inner_acc=*/v_matmul_nn_inner_acc,
      /*matmul_tn_out_rows=*/v_matmul_tn_out_rows,
      /*matmul_nt_rows_acc=*/v_matmul_nt_rows_acc,
      /*sgd_update=*/v_sgd_update,
      /*adam_update=*/v_adam_update,
  };
  return table;
}

}  // namespace helios::tensor::backend

#endif  // HELIOS_HAVE_AVX2
