// Portable reference kernels — the exact loops that lived in tensor/ops.cpp
// before the backend split, including the unmasked fast paths and the
// zero-skip branches that pay off on soft-training's masked rows. This TU
// is compiled with the project's default flags only, so a forced
// HELIOS_KERNEL_BACKEND=scalar run reproduces pre-dispatch results
// bit-exactly.
//
// The variants that historically used a different traversal for their
// sequential and parallel forms (tn_acc: i-outer vs kk-outer; tn_out_rows:
// i-outer vs j-outer) keep both: the full-range call takes the sequential
// traversal, partial ranges take the chunk-owner traversal. Both orders
// accumulate every output element over the same ascending index sequence,
// so the results are bit-identical — only the memory walk differs.
#include "tensor/backend/kernels.h"

#include <cmath>

namespace helios::tensor::backend {
namespace {

inline bool row_active(const std::uint8_t* mask, std::int64_t row) {
  return mask == nullptr || mask[row] != 0;
}

// C[m,n] = A[m,k] B[k,n], mask over rows of C; partition over i.
void s_matmul_rows(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  const int k = t.k, n = t.n;
  if (t.mask == nullptr) {
    // Unmasked fast path: no row gating and no zero-skip branch (the skip
    // only pays off for soft-training's masked rows; on dense inputs it
    // defeats vectorization).
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = t.a + static_cast<std::size_t>(i) * k;
      float* crow = t.c + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        const float* brow = t.b + static_cast<std::size_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!row_active(t.mask, i)) continue;
    const float* arow = t.a + static_cast<std::size_t>(i) * k;
    float* crow = t.c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      const float* brow = t.b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// C[k,n] += A^T[k,m] B[m,n] over active rows m; partition over kk.
void s_matmul_tn_acc(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  const int m = t.m, k = t.k, n = t.n;
  if (lo == 0 && hi == k) {
    // Full range: the historical sequential i-outer walk (streams A and B
    // rows contiguously).
    if (t.mask == nullptr) {
      for (int i = 0; i < m; ++i) {
        const float* arow = t.a + static_cast<std::size_t>(i) * k;
        const float* brow = t.b + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
          const float aik = arow[kk];
          float* crow = t.c + static_cast<std::size_t>(kk) * n;
          for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
      return;
    }
    for (int i = 0; i < m; ++i) {
      if (!row_active(t.mask, i)) continue;
      const float* arow = t.a + static_cast<std::size_t>(i) * k;
      const float* brow = t.b + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0F) continue;
        float* crow = t.c + static_cast<std::size_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  // Partial range: kk-outer — each output row of C owned by one chunk, i
  // ascending, the same per-element accumulation order as above.
  if (t.mask == nullptr) {
    for (std::int64_t kk = lo; kk < hi; ++kk) {
      float* crow = t.c + static_cast<std::size_t>(kk) * n;
      for (int i = 0; i < m; ++i) {
        const float aik = t.a[static_cast<std::size_t>(i) * k +
                              static_cast<std::size_t>(kk)];
        const float* brow = t.b + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  for (std::int64_t kk = lo; kk < hi; ++kk) {
    float* crow = t.c + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      if (!row_active(t.mask, i)) continue;
      const float aik = t.a[static_cast<std::size_t>(i) * k +
                            static_cast<std::size_t>(kk)];
      if (aik == 0.0F) continue;
      const float* brow = t.b + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// C[m,n] = A[m,k] B^T[n,k], column mask over n; partition over i.
void s_matmul_nt_cols(const MatmulArgs& t, std::int64_t lo, std::int64_t hi) {
  const int k = t.k, n = t.n;
  for (std::int64_t i = lo; i < hi; ++i) {
    const float* arow = t.a + static_cast<std::size_t>(i) * k;
    float* crow = t.c + static_cast<std::size_t>(i) * n;
    if (t.mask == nullptr) {
      for (int j = 0; j < n; ++j) {
        const float* brow = t.b + static_cast<std::size_t>(j) * k;
        float acc = 0.0F;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
      continue;
    }
    for (int j = 0; j < n; ++j) {
      if (!row_active(t.mask, j)) continue;  // output unit j skipped
      const float* brow = t.b + static_cast<std::size_t>(j) * k;
      float acc = 0.0F;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

// C[m,k] += A[m,n] B[n,k] restricted to active inner n; partition over i.
void s_matmul_nn_inner_acc(const MatmulArgs& t, std::int64_t lo,
                           std::int64_t hi) {
  const int n = t.n, k = t.k;
  for (std::int64_t i = lo; i < hi; ++i) {
    const float* arow = t.a + static_cast<std::size_t>(i) * n;
    float* crow = t.c + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      if (!row_active(t.mask, j)) continue;
      const float aij = arow[j];
      if (aij == 0.0F) continue;
      const float* brow = t.b + static_cast<std::size_t>(j) * k;
      for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
    }
  }
}

// C[n,k] = A^T[n,m] B[m,k] with row mask over n; partition over j.
void s_matmul_tn_out_rows(const MatmulArgs& t, std::int64_t lo,
                          std::int64_t hi) {
  const int m = t.m, n = t.n, k = t.k;
  if (lo == 0 && hi == n) {
    // Full range: the historical sequential i-outer walk.
    for (int i = 0; i < m; ++i) {
      const float* arow = t.a + static_cast<std::size_t>(i) * n;
      const float* brow = t.b + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < n; ++j) {
        if (!row_active(t.mask, j)) continue;
        const float aij = arow[j];
        if (aij == 0.0F) continue;
        float* crow = t.c + static_cast<std::size_t>(j) * k;
        for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
      }
    }
    return;
  }
  // Partial range: j-outer — each output row owned by one chunk, i
  // ascending as in the full-range walk — bit-identical accumulation.
  for (std::int64_t j = lo; j < hi; ++j) {
    if (!row_active(t.mask, j)) continue;
    float* crow = t.c + static_cast<std::size_t>(j) * k;
    for (int i = 0; i < m; ++i) {
      const float aij = t.a[static_cast<std::size_t>(i) * n +
                            static_cast<std::size_t>(j)];
      if (aij == 0.0F) continue;
      const float* brow = t.b + static_cast<std::size_t>(i) * k;
      for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
    }
  }
}

// C[m,n] += A[m,k] B^T[n,k] over active rows m; partition over i.
void s_matmul_nt_rows_acc(const MatmulArgs& t, std::int64_t lo,
                          std::int64_t hi) {
  const int k = t.k, n = t.n;
  for (std::int64_t i = lo; i < hi; ++i) {
    if (!row_active(t.mask, i)) continue;
    const float* arow = t.a + static_cast<std::size_t>(i) * k;
    float* crow = t.c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = t.b + static_cast<std::size_t>(j) * k;
      float acc = 0.0F;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

void s_sgd_update(const SgdArgs& t) {
  const bool use_momentum = t.v != nullptr;
  for (std::size_t i = 0; i < t.count; ++i) {
    if (t.frozen && t.frozen[i]) continue;
    float grad = t.g[i] * t.clip_scale + t.weight_decay * t.w[i];
    if (use_momentum) {
      t.v[i] = t.momentum * t.v[i] + grad;
      grad = t.v[i];
    }
    t.w[i] -= t.lr * grad;
  }
}

void s_adam_update(const AdamArgs& t) {
  for (std::size_t i = 0; i < t.count; ++i) {
    if (t.frozen && t.frozen[i]) continue;
    const float grad = t.g[i] + t.weight_decay * t.w[i];
    t.m[i] = t.beta1 * t.m[i] + (1.0F - t.beta1) * grad;
    t.v[i] = t.beta2 * t.v[i] + (1.0F - t.beta2) * grad * grad;
    const float mhat = t.m[i] / t.bc1;
    const float vhat = t.v[i] / t.bc2;
    t.w[i] -= t.lr * mhat / (std::sqrt(vhat) + t.eps);
  }
}

}  // namespace

const KernelTable& scalar_kernels() {
  static const KernelTable table = {
      /*name=*/"scalar",
      /*id=*/Backend::kScalar,
      /*use_index_lists=*/false,
      /*matmul_rows=*/s_matmul_rows,
      /*matmul_tn_acc=*/s_matmul_tn_acc,
      /*matmul_nt_cols=*/s_matmul_nt_cols,
      /*matmul_nn_inner_acc=*/s_matmul_nn_inner_acc,
      /*matmul_tn_out_rows=*/s_matmul_tn_out_rows,
      /*matmul_nt_rows_acc=*/s_matmul_nt_rows_acc,
      /*sgd_update=*/s_sgd_update,
      /*adam_update=*/s_adam_update,
  };
  return table;
}

}  // namespace helios::tensor::backend
