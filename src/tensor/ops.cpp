#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/backend/dispatch.h"

namespace helios::tensor {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

void require_2d(const Tensor& t, const char* what) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string(what) + " must be 2-D, got " +
                                shape_to_string(t.shape()));
  }
}

/// Packs the indices of non-zero mask bytes, for backends that stream
/// index lists (KernelTable::use_index_lists) instead of branch-testing
/// the mask in inner loops. Built once per call, shared read-only by every
/// parallel chunk.
std::vector<std::int32_t> pack_active(RowMask mask) {
  std::vector<std::int32_t> out;
  out.reserve(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

/// Fills the shared operand block for a matmul wrapper; `inner_mask` says
/// whether the mask gates a non-partitioned loop dimension (only then does
/// a list-streaming backend want the packed indices).
backend::MatmulArgs matmul_args(const Tensor& a, const Tensor& b, Tensor& c,
                                int m, int k, int n, RowMask mask,
                                std::vector<std::int32_t>& active_scratch,
                                bool inner_mask) {
  backend::MatmulArgs args;
  args.a = a.data();
  args.b = b.data();
  args.c = c.data();
  args.m = m;
  args.k = k;
  args.n = n;
  args.mask = mask.empty() ? nullptr : mask.data();
  if (inner_mask && !mask.empty() &&
      backend::active_kernels().use_index_lists) {
    active_scratch = pack_active(mask);
    args.active = active_scratch.data();
    args.n_active = static_cast<std::int32_t>(active_scratch.size());
  }
  return args;
}

}  // namespace

void add_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "add_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += s[i];
}

void sub_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "sub_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] -= s[i];
}

void scale_inplace(Tensor& dst, float s) {
  for (float& v : dst.flat()) v *= s;
}

void axpy_inplace(Tensor& dst, float s, const Tensor& src) {
  require_same_shape(dst, src, "axpy_inplace");
  float* d = dst.data();
  const float* x = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += s * x[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out = a;
  float* d = out.data();
  const float* s = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) d[i] *= s[i];
  return out;
}

double sum(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += v;
  return s;
}

double l1_norm(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += std::fabs(v);
  return s;
}

double l2_norm(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

float max_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("max_value: empty tensor");
  float m = t.flat()[0];
  for (float v : t.flat()) m = std::max(m, v);
  return m;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul lhs");
  require_2d(b, "matmul rhs");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_masked_rows_into(a, b, {}, c);
  return c;
}

// The six masked matmul wrappers below share one structure: validate
// shapes, zero/shape the output, build the operand block (plus the packed
// active-index list when the selected backend streams one), then run the
// dispatched kernel over the variant's partition dimension through
// run_chunked — the shared work-estimate + chunking decision. Each backend
// kernel keeps a fixed per-output-element accumulation order, so results
// are bit-identical at any thread count within a backend.

void matmul_masked_rows_into(const Tensor& a, const Tensor& b, RowMask mask,
                             Tensor& c) {
  require_2d(a, "matmul lhs");
  require_2d(b, "matmul rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != m) {
    throw std::invalid_argument("matmul: row mask size mismatch");
  }
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  else c.fill(0.0F);

  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/false);
  run_chunked(m, static_cast<std::int64_t>(k) * n,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_rows(args, lo, hi);
              });
}

void matmul_tn_masked_accumulate(const Tensor& a, const Tensor& b,
                                 RowMask mask, Tensor& c) {
  require_2d(a, "matmul_tn lhs");
  require_2d(b, "matmul_tn rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn: row mismatch");
  if (c.shape() != Shape{k, n}) {
    throw std::invalid_argument("matmul_tn: output must be pre-shaped [k,n]");
  }
  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/true);
  run_chunked(k, static_cast<std::int64_t>(m) * n,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_tn_acc(args, lo, hi);
              });
}

void matmul_nt_masked_cols_into(const Tensor& a, const Tensor& b, RowMask mask,
                                Tensor& c) {
  require_2d(a, "matmul_nt lhs");
  require_2d(b, "matmul_nt rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner mismatch");
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_nt: column mask size mismatch");
  }
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  else c.fill(0.0F);
  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/true);
  run_chunked(m, static_cast<std::int64_t>(k) * n,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_nt_cols(args, lo, hi);
              });
}

void matmul_nn_masked_inner_accumulate(const Tensor& a, const Tensor& b,
                                       RowMask mask, Tensor& c) {
  require_2d(a, "matmul_nn lhs");
  require_2d(b, "matmul_nn rhs");
  const int m = a.dim(0), n = a.dim(1), k = b.dim(1);
  if (b.dim(0) != n) throw std::invalid_argument("matmul_nn: inner mismatch");
  if (c.shape() != Shape{m, k}) {
    throw std::invalid_argument("matmul_nn: output must be pre-shaped [m,k]");
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_nn: inner mask size mismatch");
  }
  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/true);
  run_chunked(m, static_cast<std::int64_t>(n) * k,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_nn_inner_acc(args, lo, hi);
              });
}

void matmul_tn_masked_out_rows_into(const Tensor& a, const Tensor& b,
                                    RowMask mask, Tensor& c) {
  require_2d(a, "matmul_tn_out lhs");
  require_2d(b, "matmul_tn_out rhs");
  const int m = a.dim(0), n = a.dim(1), k = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn_out: row mismatch");
  if (c.shape() != Shape{n, k}) c = Tensor({n, k});
  else c.fill(0.0F);
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_tn_out: row mask size mismatch");
  }
  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/false);
  run_chunked(n, static_cast<std::int64_t>(m) * k,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_tn_out_rows(args, lo, hi);
              });
}

void matmul_nt_masked_rows_accumulate(const Tensor& a, const Tensor& b,
                                      RowMask mask, Tensor& c) {
  require_2d(a, "matmul_nt_rows lhs");
  require_2d(b, "matmul_nt_rows rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt_rows: inner mismatch");
  }
  if (c.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul_nt_rows: output must be pre-shaped");
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != m) {
    throw std::invalid_argument("matmul_nt_rows: row mask size mismatch");
  }
  const backend::KernelTable& kt = backend::active_kernels();
  std::vector<std::int32_t> scratch;
  const backend::MatmulArgs args =
      matmul_args(a, b, c, m, k, n, mask, scratch, /*inner_mask=*/false);
  run_chunked(m, static_cast<std::int64_t>(k) * n,
              [&](std::int64_t lo, std::int64_t hi) {
                kt.matmul_nt_rows_acc(args, lo, hi);
              });
}

void im2col(const Tensor& x, const Conv2dGeometry& g, Tensor& cols) {
  if (x.shape() != Shape{g.in_channels, g.in_h, g.in_w}) {
    throw std::invalid_argument("im2col: input shape mismatch " +
                                shape_to_string(x.shape()));
  }
  const int oh = g.out_h(), ow = g.out_w();
  const Shape want{g.patch_size(), oh * ow};
  if (cols.shape() != want) cols = Tensor(want);
  float* cp = cols.data();
  const float* xp = x.data();
  const int hw = g.in_h * g.in_w;
  for (int c = 0; c < g.in_channels; ++c) {
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const int row = (c * g.kernel + ky) * g.kernel + kx;
        float* crow = cp + static_cast<std::size_t>(row) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * g.stride + ky - g.pad;
          const bool y_ok = iy >= 0 && iy < g.in_h;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * g.stride + kx - g.pad;
            const std::size_t out_idx =
                static_cast<std::size_t>(oy) * ow + static_cast<std::size_t>(ox);
            crow[out_idx] = (y_ok && ix >= 0 && ix < g.in_w)
                                ? xp[c * hw + iy * g.in_w + ix]
                                : 0.0F;
          }
        }
      }
    }
  }
}

void col2im_accumulate(const Tensor& cols, const Conv2dGeometry& g,
                       Tensor& dx) {
  const int oh = g.out_h(), ow = g.out_w();
  if (cols.shape() != Shape{g.patch_size(), oh * ow}) {
    throw std::invalid_argument("col2im: cols shape mismatch");
  }
  if (dx.shape() != Shape{g.in_channels, g.in_h, g.in_w}) {
    throw std::invalid_argument("col2im: output shape mismatch");
  }
  const float* cp = cols.data();
  float* xp = dx.data();
  const int hw = g.in_h * g.in_w;
  for (int c = 0; c < g.in_channels; ++c) {
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const int row = (c * g.kernel + ky) * g.kernel + kx;
        const float* crow = cp + static_cast<std::size_t>(row) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * g.stride + kx - g.pad;
            if (ix < 0 || ix >= g.in_w) continue;
            xp[c * hw + iy * g.in_w + ix] +=
                crow[static_cast<std::size_t>(oy) * ow + ox];
          }
        }
      }
    }
  }
}

void row_softmax(const Tensor& logits, Tensor& probs) {
  if (logits.ndim() != 2) throw std::invalid_argument("row_softmax: 2-D only");
  if (probs.shape() != logits.shape()) probs = Tensor(logits.shape());
  const int n = logits.dim(0), c = logits.dim(1);
  const float* lp = logits.data();
  float* pp = probs.data();
  for (int i = 0; i < n; ++i) {
    const float* row = lp + static_cast<std::size_t>(i) * c;
    float* out = pp + static_cast<std::size_t>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0F;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - mx);
      denom += out[j];
    }
    const float inv = 1.0F / denom;
    for (int j = 0; j < c; ++j) out[j] *= inv;
  }
}

double softmax_cross_entropy(const Tensor& logits,
                             std::span<const int> labels, Tensor& grad) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: 2-D logits only");
  }
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  row_softmax(logits, grad);
  double loss = 0.0;
  float* gp = grad.data();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    float* row = gp + static_cast<std::size_t>(i) * c;
    loss -= std::log(std::max(row[y], 1e-12F));
    row[y] -= 1.0F;
    for (int j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return loss / n;
}

int count_correct(const Tensor& logits, std::span<const int> labels) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("count_correct: 2-D logits only");
  }
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("count_correct: label count mismatch");
  }
  const float* lp = logits.data();
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = lp + static_cast<std::size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return correct;
}

}  // namespace helios::tensor
