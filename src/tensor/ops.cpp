#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/thread_pool.h"

namespace helios::tensor {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

void require_2d(const Tensor& t, const char* what) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string(what) + " must be 2-D, got " +
                                shape_to_string(t.shape()));
  }
}

bool row_active(RowMask mask, int row) {
  return mask.empty() || mask[static_cast<std::size_t>(row)] != 0;
}

/// True when a kernel of `work` MACs should fan out: big enough, more than
/// one thread configured, and not already inside a parallel region (nested
/// regions run inline anyway — skipping the dispatch keeps the sequential
/// loop structure, which matters for the kernels that use a transposed
/// traversal in their parallel variant).
bool parallel_worthwhile(std::int64_t work) {
  return work >= kIntraOpMinWork && util::global_thread_count() > 1 &&
         !util::detail::in_parallel_region();
}

/// Rows per chunk so each chunk carries ~kIntraOpChunkWork MACs.
std::int64_t chunk_grain(std::int64_t per_row_work) {
  return std::max<std::int64_t>(
      1, kIntraOpChunkWork / std::max<std::int64_t>(1, per_row_work));
}

}  // namespace

void add_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "add_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += s[i];
}

void sub_inplace(Tensor& dst, const Tensor& src) {
  require_same_shape(dst, src, "sub_inplace");
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] -= s[i];
}

void scale_inplace(Tensor& dst, float s) {
  for (float& v : dst.flat()) v *= s;
}

void axpy_inplace(Tensor& dst, float s, const Tensor& src) {
  require_same_shape(dst, src, "axpy_inplace");
  float* d = dst.data();
  const float* x = src.data();
  for (std::size_t i = 0; i < dst.numel(); ++i) d[i] += s * x[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out = a;
  float* d = out.data();
  const float* s = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) d[i] *= s[i];
  return out;
}

double sum(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += v;
  return s;
}

double l1_norm(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += std::fabs(v);
  return s;
}

double l2_norm(const Tensor& t) {
  double s = 0.0;
  for (float v : t.flat()) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

float max_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("max_value: empty tensor");
  float m = t.flat()[0];
  for (float v : t.flat()) m = std::max(m, v);
  return m;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_2d(a, "matmul lhs");
  require_2d(b, "matmul rhs");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_masked_rows_into(a, b, {}, c);
  return c;
}

void matmul_masked_rows_into(const Tensor& a, const Tensor& b, RowMask mask,
                             Tensor& c) {
  require_2d(a, "matmul lhs");
  require_2d(b, "matmul rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != m) {
    throw std::invalid_argument("matmul: row mask size mismatch");
  }
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  else c.fill(0.0F);

  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // i-k-j loop order: the inner j loop streams contiguous rows of B and C,
  // which the compiler vectorizes. Parallel split is over rows of C, so the
  // per-element accumulation order never changes.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    if (mask.empty()) {
      // Unmasked fast path: no row gating and no zero-skip branch (the
      // skip only pays off for soft-training's masked rows; on dense
      // inputs it defeats vectorization).
      for (std::int64_t i = lo; i < hi; ++i) {
        const float* arow = ap + static_cast<std::size_t>(i) * k;
        float* crow = cp + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
          const float aik = arow[kk];
          const float* brow = bp + static_cast<std::size_t>(kk) * n;
          for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
      return;
    }
    for (std::int64_t i = lo; i < hi; ++i) {
      if (!row_active(mask, static_cast<int>(i))) continue;
      const float* arow = ap + static_cast<std::size_t>(i) * k;
      float* crow = cp + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0F) continue;
        const float* brow = bp + static_cast<std::size_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  };
  const std::int64_t row_work = static_cast<std::int64_t>(k) * n;
  if (parallel_worthwhile(row_work * m)) {
    util::parallel_for(0, m, chunk_grain(row_work), rows);
  } else {
    rows(0, m);
  }
}

void matmul_tn_masked_accumulate(const Tensor& a, const Tensor& b,
                                 RowMask mask, Tensor& c) {
  require_2d(a, "matmul_tn lhs");
  require_2d(b, "matmul_tn rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn: row mismatch");
  if (c.shape() != Shape{k, n}) {
    throw std::invalid_argument("matmul_tn: output must be pre-shaped [k,n]");
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  const std::int64_t work =
      static_cast<std::int64_t>(m) * k * n;
  if (parallel_worthwhile(work)) {
    // kk-outer variant: each output row of C is owned by exactly one chunk
    // and its i loop runs ascending, the same per-element accumulation
    // order as the sequential path below — bit-identical results.
    auto out_rows = [&](std::int64_t lo, std::int64_t hi) {
      if (mask.empty()) {
        for (std::int64_t kk = lo; kk < hi; ++kk) {
          float* crow = cp + static_cast<std::size_t>(kk) * n;
          for (int i = 0; i < m; ++i) {
            const float aik = ap[static_cast<std::size_t>(i) * k +
                                 static_cast<std::size_t>(kk)];
            const float* brow = bp + static_cast<std::size_t>(i) * n;
            for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
          }
        }
        return;
      }
      for (std::int64_t kk = lo; kk < hi; ++kk) {
        float* crow = cp + static_cast<std::size_t>(kk) * n;
        for (int i = 0; i < m; ++i) {
          if (!row_active(mask, i)) continue;
          const float aik = ap[static_cast<std::size_t>(i) * k +
                               static_cast<std::size_t>(kk)];
          if (aik == 0.0F) continue;
          const float* brow = bp + static_cast<std::size_t>(i) * n;
          for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    };
    util::parallel_for(0, k,
                       chunk_grain(static_cast<std::int64_t>(m) * n),
                       out_rows);
    return;
  }
  if (mask.empty()) {
    // Unmasked fast path: row gating and the zero-skip branch hoisted out
    // (the skip only pays for masked soft-training rows).
    for (int i = 0; i < m; ++i) {
      const float* arow = ap + static_cast<std::size_t>(i) * k;
      const float* brow = bp + static_cast<std::size_t>(i) * n;
      for (int kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        float* crow = cp + static_cast<std::size_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  for (int i = 0; i < m; ++i) {
    if (!row_active(mask, i)) continue;
    const float* arow = ap + static_cast<std::size_t>(i) * k;
    const float* brow = bp + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      float* crow = cp + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_nt_masked_cols_into(const Tensor& a, const Tensor& b, RowMask mask,
                                Tensor& c) {
  require_2d(a, "matmul_nt lhs");
  require_2d(b, "matmul_nt rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner mismatch");
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_nt: column mask size mismatch");
  }
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  else c.fill(0.0F);
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // Rows of C are independent — parallel split over i.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = ap + static_cast<std::size_t>(i) * k;
      float* crow = cp + static_cast<std::size_t>(i) * n;
      if (mask.empty()) {
        for (int j = 0; j < n; ++j) {
          const float* brow = bp + static_cast<std::size_t>(j) * k;
          float acc = 0.0F;
          for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] = acc;
        }
        continue;
      }
      for (int j = 0; j < n; ++j) {
        if (!row_active(mask, j)) continue;  // output unit j skipped
        const float* brow = bp + static_cast<std::size_t>(j) * k;
        float acc = 0.0F;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
  };
  const std::int64_t row_work = static_cast<std::int64_t>(k) * n;
  if (parallel_worthwhile(row_work * m)) {
    util::parallel_for(0, m, chunk_grain(row_work), rows);
  } else {
    rows(0, m);
  }
}

void matmul_nn_masked_inner_accumulate(const Tensor& a, const Tensor& b,
                                       RowMask mask, Tensor& c) {
  require_2d(a, "matmul_nn lhs");
  require_2d(b, "matmul_nn rhs");
  const int m = a.dim(0), n = a.dim(1), k = b.dim(1);
  if (b.dim(0) != n) throw std::invalid_argument("matmul_nn: inner mismatch");
  if (c.shape() != Shape{m, k}) {
    throw std::invalid_argument("matmul_nn: output must be pre-shaped [m,k]");
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_nn: inner mask size mismatch");
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // Rows of C are independent — parallel split over i.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = ap + static_cast<std::size_t>(i) * n;
      float* crow = cp + static_cast<std::size_t>(i) * k;
      for (int j = 0; j < n; ++j) {
        if (!row_active(mask, j)) continue;
        const float aij = arow[j];
        if (aij == 0.0F) continue;
        const float* brow = bp + static_cast<std::size_t>(j) * k;
        for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
      }
    }
  };
  const std::int64_t row_work = static_cast<std::int64_t>(n) * k;
  if (parallel_worthwhile(row_work * m)) {
    util::parallel_for(0, m, chunk_grain(row_work), rows);
  } else {
    rows(0, m);
  }
}

void matmul_tn_masked_out_rows_into(const Tensor& a, const Tensor& b,
                                    RowMask mask, Tensor& c) {
  require_2d(a, "matmul_tn_out lhs");
  require_2d(b, "matmul_tn_out rhs");
  const int m = a.dim(0), n = a.dim(1), k = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn_out: row mismatch");
  if (c.shape() != Shape{n, k}) c = Tensor({n, k});
  else c.fill(0.0F);
  if (!mask.empty() && static_cast<int>(mask.size()) != n) {
    throw std::invalid_argument("matmul_tn_out: row mask size mismatch");
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // c[j, :] = sum_i a[i, j] * b[i, :] — skip inactive output rows j.
  const std::int64_t work = static_cast<std::int64_t>(m) * n * k;
  if (parallel_worthwhile(work)) {
    // j-outer variant: each output row owned by one chunk, i ascending as
    // in the sequential path — bit-identical accumulation order.
    auto out_rows = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) {
        if (!row_active(mask, static_cast<int>(j))) continue;
        float* crow = cp + static_cast<std::size_t>(j) * k;
        for (int i = 0; i < m; ++i) {
          const float aij = ap[static_cast<std::size_t>(i) * n +
                               static_cast<std::size_t>(j)];
          if (aij == 0.0F) continue;
          const float* brow = bp + static_cast<std::size_t>(i) * k;
          for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
        }
      }
    };
    util::parallel_for(0, n,
                       chunk_grain(static_cast<std::int64_t>(m) * k),
                       out_rows);
    return;
  }
  for (int i = 0; i < m; ++i) {
    const float* arow = ap + static_cast<std::size_t>(i) * n;
    const float* brow = bp + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      if (!row_active(mask, j)) continue;
      const float aij = arow[j];
      if (aij == 0.0F) continue;
      float* crow = cp + static_cast<std::size_t>(j) * k;
      for (int kk = 0; kk < k; ++kk) crow[kk] += aij * brow[kk];
    }
  }
}

void matmul_nt_masked_rows_accumulate(const Tensor& a, const Tensor& b,
                                      RowMask mask, Tensor& c) {
  require_2d(a, "matmul_nt_rows lhs");
  require_2d(b, "matmul_nt_rows rhs");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_nt_rows: inner mismatch");
  }
  if (c.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul_nt_rows: output must be pre-shaped");
  }
  if (!mask.empty() && static_cast<int>(mask.size()) != m) {
    throw std::invalid_argument("matmul_nt_rows: row mask size mismatch");
  }
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = c.data();
  // Rows of C (conv filters) are independent — parallel split over i.
  auto rows = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      if (!row_active(mask, static_cast<int>(i))) continue;
      const float* arow = ap + static_cast<std::size_t>(i) * k;
      float* crow = cp + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        const float* brow = bp + static_cast<std::size_t>(j) * k;
        float acc = 0.0F;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] += acc;
      }
    }
  };
  const std::int64_t row_work = static_cast<std::int64_t>(k) * n;
  if (parallel_worthwhile(row_work * m)) {
    util::parallel_for(0, m, chunk_grain(row_work), rows);
  } else {
    rows(0, m);
  }
}

void im2col(const Tensor& x, const Conv2dGeometry& g, Tensor& cols) {
  if (x.shape() != Shape{g.in_channels, g.in_h, g.in_w}) {
    throw std::invalid_argument("im2col: input shape mismatch " +
                                shape_to_string(x.shape()));
  }
  const int oh = g.out_h(), ow = g.out_w();
  const Shape want{g.patch_size(), oh * ow};
  if (cols.shape() != want) cols = Tensor(want);
  float* cp = cols.data();
  const float* xp = x.data();
  const int hw = g.in_h * g.in_w;
  for (int c = 0; c < g.in_channels; ++c) {
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const int row = (c * g.kernel + ky) * g.kernel + kx;
        float* crow = cp + static_cast<std::size_t>(row) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * g.stride + ky - g.pad;
          const bool y_ok = iy >= 0 && iy < g.in_h;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * g.stride + kx - g.pad;
            const std::size_t out_idx =
                static_cast<std::size_t>(oy) * ow + static_cast<std::size_t>(ox);
            crow[out_idx] = (y_ok && ix >= 0 && ix < g.in_w)
                                ? xp[c * hw + iy * g.in_w + ix]
                                : 0.0F;
          }
        }
      }
    }
  }
}

void col2im_accumulate(const Tensor& cols, const Conv2dGeometry& g,
                       Tensor& dx) {
  const int oh = g.out_h(), ow = g.out_w();
  if (cols.shape() != Shape{g.patch_size(), oh * ow}) {
    throw std::invalid_argument("col2im: cols shape mismatch");
  }
  if (dx.shape() != Shape{g.in_channels, g.in_h, g.in_w}) {
    throw std::invalid_argument("col2im: output shape mismatch");
  }
  const float* cp = cols.data();
  float* xp = dx.data();
  const int hw = g.in_h * g.in_w;
  for (int c = 0; c < g.in_channels; ++c) {
    for (int ky = 0; ky < g.kernel; ++ky) {
      for (int kx = 0; kx < g.kernel; ++kx) {
        const int row = (c * g.kernel + ky) * g.kernel + kx;
        const float* crow = cp + static_cast<std::size_t>(row) * oh * ow;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * g.stride + ky - g.pad;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * g.stride + kx - g.pad;
            if (ix < 0 || ix >= g.in_w) continue;
            xp[c * hw + iy * g.in_w + ix] +=
                crow[static_cast<std::size_t>(oy) * ow + ox];
          }
        }
      }
    }
  }
}

void row_softmax(const Tensor& logits, Tensor& probs) {
  if (logits.ndim() != 2) throw std::invalid_argument("row_softmax: 2-D only");
  if (probs.shape() != logits.shape()) probs = Tensor(logits.shape());
  const int n = logits.dim(0), c = logits.dim(1);
  const float* lp = logits.data();
  float* pp = probs.data();
  for (int i = 0; i < n; ++i) {
    const float* row = lp + static_cast<std::size_t>(i) * c;
    float* out = pp + static_cast<std::size_t>(i) * c;
    float mx = row[0];
    for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0F;
    for (int j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - mx);
      denom += out[j];
    }
    const float inv = 1.0F / denom;
    for (int j = 0; j < c; ++j) out[j] *= inv;
  }
}

double softmax_cross_entropy(const Tensor& logits,
                             std::span<const int> labels, Tensor& grad) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: 2-D logits only");
  }
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  row_softmax(logits, grad);
  double loss = 0.0;
  float* gp = grad.data();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    float* row = gp + static_cast<std::size_t>(i) * c;
    loss -= std::log(std::max(row[y], 1e-12F));
    row[y] -= 1.0F;
    for (int j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return loss / n;
}

int count_correct(const Tensor& logits, std::span<const int> labels) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("count_correct: 2-D logits only");
  }
  const int n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int>(labels.size()) != n) {
    throw std::invalid_argument("count_correct: label count mismatch");
  }
  const float* lp = logits.data();
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float* row = lp + static_cast<std::size_t>(i) * c;
    int best = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return correct;
}

}  // namespace helios::tensor
