// Free-function math kernels on Tensor.
//
// The masked matmul variants are the computational heart of soft-training:
// a row mask over the weight matrix corresponds to a neuron (dense unit or
// conv filter) being excluded from the current training cycle, and masked
// rows are genuinely skipped, so the straggler's shrunk model costs
// proportionally fewer FLOPs — the same accounting the virtual-time device
// model uses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace helios::tensor {

/// Per-row activity mask; empty span means "all rows active".
using RowMask = std::span<const std::uint8_t>;

// Intra-op parallelism gates, shared by the matmul kernels and conv2d: a
// kernel engages the thread pool only when its multiply-accumulate count
// crosses kIntraOpMinWork (tiny LeNet shapes stay inline), and static
// chunks are sized to carry at least kIntraOpChunkWork each. Parallel
// variants partition output elements only, so results are bit-identical to
// the sequential loops at any thread count.
inline constexpr std::int64_t kIntraOpMinWork = std::int64_t{1} << 20;
inline constexpr std::int64_t kIntraOpChunkWork = std::int64_t{1} << 18;

/// The one intra-op work-estimate + chunking decision, shared by every
/// matmul wrapper, conv2d's batch split, and — because the wrappers call
/// the dispatched backend kernel per chunk — inherited unchanged by every
/// kernel backend. Runs `chunk(lo, hi)` over contiguous sub-ranges covering
/// [0, extent) exactly once: through the thread pool when the total
/// multiply-accumulate count `extent * per_item_work` crosses
/// kIntraOpMinWork (chunks sized to carry ~kIntraOpChunkWork each), inline
/// as chunk(0, extent) otherwise — including from inside an enclosing
/// parallel region, where the full-range call keeps the sequential loop
/// structure of kernels with a transposed parallel traversal.
template <typename Chunk>
void run_chunked(std::int64_t extent, std::int64_t per_item_work,
                 Chunk&& chunk) {
  per_item_work = std::max<std::int64_t>(1, per_item_work);
  if (extent * per_item_work >= kIntraOpMinWork &&
      util::global_thread_count() > 1 &&
      !util::detail::in_parallel_region()) {
    const std::int64_t grain =
        std::max<std::int64_t>(1, kIntraOpChunkWork / per_item_work);
    util::parallel_for(0, extent, grain, chunk);
  } else if (extent > 0) {
    chunk(0, extent);
  }
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

/// dst += src (shapes must match).
void add_inplace(Tensor& dst, const Tensor& src);
/// dst -= src (shapes must match).
void sub_inplace(Tensor& dst, const Tensor& src);
/// dst *= s.
void scale_inplace(Tensor& dst, float s);
/// dst += s * src (axpy; shapes must match).
void axpy_inplace(Tensor& dst, float s, const Tensor& src);
/// Elementwise a + b.
Tensor add(const Tensor& a, const Tensor& b);
/// Elementwise a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

double sum(const Tensor& t);
double l1_norm(const Tensor& t);
double l2_norm(const Tensor& t);
float max_value(const Tensor& t);

// ---------------------------------------------------------------------------
// Matrix multiplication (2-D only; C is resized/zeroed by the _into forms)
// ---------------------------------------------------------------------------

/// C = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[k,n]; rows of C whose mask byte is 0 are left as zero
/// and their dot products are skipped entirely.
void matmul_masked_rows_into(const Tensor& a, const Tensor& b, RowMask mask,
                             Tensor& c);

/// C[k,n] += A^T[k,m] * B[m,n], restricted to active rows m of A and B.
/// Used for dL/dx = W^T dY with inactive neurons removed.
void matmul_tn_masked_accumulate(const Tensor& a, const Tensor& b,
                                 RowMask mask, Tensor& c);

/// C[m,n] = A[m,k] * B^T[n,k] — i.e. rows of A dotted with rows of B.
/// Column mask (over n) skips inactive output units. Used for dense forward
/// with x[m,k] and W[n,k].
void matmul_nt_masked_cols_into(const Tensor& a, const Tensor& b, RowMask mask,
                                Tensor& c);

/// C[m,k] += A[m,n] * B[n,k], restricted to active n. Used for dense
/// backward-to-input with dY[m,n], W[n,k].
void matmul_nn_masked_inner_accumulate(const Tensor& a, const Tensor& b,
                                       RowMask mask, Tensor& c);

/// C[n,k] = A^T[n,m] * B[m,k] with row mask over n: dW = dY^T x for dense.
void matmul_tn_masked_out_rows_into(const Tensor& a, const Tensor& b,
                                    RowMask mask, Tensor& c);

/// C[m,n] += A[m,k] * B^T[n,k], restricted to active rows m of A and C.
/// Used for conv weight gradients: dW += dY * cols^T with filter mask.
void matmul_nt_masked_rows_accumulate(const Tensor& a, const Tensor& b,
                                      RowMask mask, Tensor& c);

// ---------------------------------------------------------------------------
// Convolution support (NCHW, per-sample im2col)
// ---------------------------------------------------------------------------

struct Conv2dGeometry {
  int in_channels = 0;
  int in_h = 0;
  int in_w = 0;
  int kernel = 0;  // square kernels
  int stride = 1;
  int pad = 0;

  int out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  int out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  int patch_size() const { return in_channels * kernel * kernel; }
};

/// Unfolds one sample `x[C,H,W]` into `cols[patch_size, out_h*out_w]`.
/// `cols` must be pre-shaped; zero-padding handled implicitly.
void im2col(const Tensor& x, const Conv2dGeometry& g, Tensor& cols);

/// Folds `cols[patch_size, out_h*out_w]` back into `dx[C,H,W]` (accumulates).
void col2im_accumulate(const Tensor& cols, const Conv2dGeometry& g, Tensor& dx);

// ---------------------------------------------------------------------------
// Classification head
// ---------------------------------------------------------------------------

/// Row-wise softmax of logits[n, c] into probs (resized to match).
void row_softmax(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy over the batch; fills `grad` with dL/dlogits
/// ( (softmax - onehot) / n ). `labels` are class indices of length n.
double softmax_cross_entropy(const Tensor& logits,
                             std::span<const int> labels, Tensor& grad);

/// Number of rows whose argmax equals the label.
int count_correct(const Tensor& logits, std::span<const int> labels);

}  // namespace helios::tensor
