#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace helios::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) ss << ", ";
    ss << shape[i];
  }
  ss << ')';
  return ss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: values size " +
                                std::to_string(data_.size()) +
                                " does not match shape " +
                                shape_to_string(shape_));
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

int Tensor::dim(int i) const {
  const int rank = ndim();
  if (i < 0) i += rank;
  if (i < 0 || i >= rank) {
    throw std::out_of_range("Tensor::dim: axis " + std::to_string(i) +
                            " for shape " + shape_to_string(shape_));
  }
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::offset2(int i, int j) const {
  assert(ndim() == 2);
  assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
         static_cast<std::size_t>(j);
}

std::size_t Tensor::offset3(int i, int j, int k) const {
  assert(ndim() == 3);
  assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
         k < shape_[2]);
  return (static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
          static_cast<std::size_t>(j)) *
             static_cast<std::size_t>(shape_[2]) +
         static_cast<std::size_t>(k);
}

std::size_t Tensor::offset4(int i, int j, int k, int l) const {
  assert(ndim() == 4);
  assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
         k < shape_[2] && l >= 0 && l < shape_[3]);
  return ((static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
           static_cast<std::size_t>(j)) *
              static_cast<std::size_t>(shape_[2]) +
          static_cast<std::size_t>(k)) *
             static_cast<std::size_t>(shape_[3]) +
         static_cast<std::size_t>(l);
}

float& Tensor::at(int i) {
  assert(ndim() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(int i) const {
  assert(ndim() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float& Tensor::at(int i, int j) { return data_[offset2(i, j)]; }
float Tensor::at(int i, int j) const { return data_[offset2(i, j)]; }
float& Tensor::at(int i, int j, int k) { return data_[offset3(i, j, k)]; }
float Tensor::at(int i, int j, int k) const { return data_[offset3(i, j, k)]; }
float& Tensor::at(int i, int j, int k, int l) {
  return data_[offset4(i, j, k, l)];
}
float Tensor::at(int i, int j, int k, int l) const {
  return data_[offset4(i, j, k, l)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape: element count mismatch " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  }
  shape_ = std::move(new_shape);
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace helios::tensor
