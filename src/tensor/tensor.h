// Dense float32 tensor with owning, contiguous, row-major storage.
//
// This is the numeric substrate under helios::nn. It is deliberately small:
// fixed dtype (float), value semantics, explicit shape, and bounds-checked
// accessors in debug builds. All heavy math lives in tensor/ops.h as free
// functions so the container stays a plain value type.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace helios::tensor {

/// Minimal allocator handing out `Alignment`-byte-aligned storage, so the
/// SIMD kernel backends can rely on cacheline-aligned tensor rows (vector
/// loads use unaligned instructions, which run at aligned speed when the
/// data actually is — this guarantees it for element 0 of every tensor).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0 && Alignment >= alignof(T),
                "Alignment must be a power of two covering alignof(T)");
  using value_type = T;

  // Explicit rebind: the default allocator_traits rebind cannot re-instantiate
  // a template with a non-type (Alignment) parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Alignment of Tensor storage (one x86 cacheline / an AVX-512 register).
inline constexpr std::size_t kTensorAlignment = 64;

/// Backing store of Tensor: contiguous floats, 64-byte-aligned base.
using FloatBuffer = std::vector<float, AlignedAllocator<float, kTensorAlignment>>;

/// Shape of a tensor; dimensions are non-negative (0 allowed for empties).
using Shape = std::vector<int>;

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const Shape& shape);

/// "(2, 3, 4)" — for error messages and debugging.
std::string shape_to_string(const Shape& shape);

/// Owning, contiguous, row-major float tensor.
class Tensor {
 public:
  /// Empty rank-1 tensor of zero elements.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor holding a copy of `values` (re-laid into aligned storage);
  /// size must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  /// I.I.D. normal(0, stddev) entries.
  static Tensor randn(Shape shape, util::Rng& rng, float stddev = 1.0F);
  /// I.I.D. uniform [lo, hi) entries.
  static Tensor uniform(Shape shape, util::Rng& rng, float lo, float hi);

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  /// Size of dimension `i`; negative `i` counts from the back.
  int dim(int i) const;
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Element accessors; index arity must match rank (asserted in debug).
  float& at(int i);
  float at(int i) const;
  float& at(int i, int j);
  float at(int i, int j) const;
  float& at(int i, int j, int k);
  float at(int i, int j, int k) const;
  float& at(int i, int j, int k, int l);
  float at(int i, int j, int k, int l) const;

  /// Same storage, new shape; element count must be preserved.
  Tensor reshaped(Shape new_shape) const;

  /// In-place reinterpretation of the shape; element count must be preserved.
  void reshape(Shape new_shape);

  void fill(float value);

  /// True when shapes match and all elements are within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5F) const;

 private:
  std::size_t offset2(int i, int j) const;
  std::size_t offset3(int i, int j, int k) const;
  std::size_t offset4(int i, int j, int k, int l) const;

  Shape shape_;
  FloatBuffer data_;
};

}  // namespace helios::tensor
