#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace helios::util {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

#if !defined(_WIN32)
/// fsync the directory containing `path` so the rename is durable. Failure
/// is ignored: some filesystems refuse O_RDONLY directory fds, and the
/// rename's atomicity (our torn-file guarantee) does not depend on it.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
#if defined(_WIN32)
  // No POSIX rename-over semantics; fall back to remove + rename. Still a
  // far smaller torn-write window than streaming into the destination.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) fail("cannot open temp for", path);
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), f) != contents.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    fail("short write for", path);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    fail("close failed for", path);
  }
  std::remove(path.c_str());
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename failed for", path);
  }
#else
  // Temp name carries the pid so two processes replacing the same artifact
  // concurrently never trample each other's in-flight temp.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot open temp for", path);

  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed for", path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync failed for", path);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed for", path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename failed for", path);
  }
  sync_parent_dir(path);
#endif
}

}  // namespace helios::util
