// Crash-safe file replacement: write a temporary sibling, fsync it, then
// rename() over the destination. A reader never observes a torn file — it
// sees either the complete old contents or the complete new contents,
// because rename(2) is atomic within a filesystem. Used by every artifact
// writer that a crash-tolerant run may race against (checkpoints, journal
// summaries, BENCH_*.json snapshots).
#pragma once

#include <string>
#include <string_view>

namespace helios::util {

/// Atomically replaces `path` with `contents`. Writes `<path>.tmp.<pid>`,
/// flushes and fsyncs it, then renames it into place (and fsyncs the parent
/// directory so the rename itself survives a power cut on POSIX). Throws
/// std::runtime_error on any I/O failure; the destination is untouched in
/// that case and the temporary is cleaned up best-effort.
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace helios::util
