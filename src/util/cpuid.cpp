#include "util/cpuid.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define HELIOS_CPUID_X86 1
#else
#define HELIOS_CPUID_X86 0
#endif

namespace helios::util {

bool cpu_has_avx2_fma() {
#if HELIOS_CPUID_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::string cpu_feature_string() {
#if HELIOS_CPUID_X86
  std::string s = "x86-64";
  if (__builtin_cpu_supports("avx2")) s += " avx2";
  if (__builtin_cpu_supports("fma")) s += "+fma";
  return s;
#else
  return "portable (no simd)";
#endif
}

}  // namespace helios::util
