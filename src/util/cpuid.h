// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The tensor backend layer (tensor/backend/dispatch.h) picks a kernel table
// at startup based on what the *running* CPU supports, independent of what
// the compiler was allowed to emit for the rest of the build. Only the
// features the backend actually keys on are exposed; everything degrades to
// `false` on non-x86 targets or toolchains without __builtin_cpu_supports.
#pragma once

#include <string>

namespace helios::util {

/// True when the running CPU supports both AVX2 and FMA3 (the Helios AVX2
/// kernel TU is compiled with -mavx2 -mfma, so both are required).
bool cpu_has_avx2_fma();

/// Short human-readable feature summary for logs / metrics, e.g.
/// "x86-64 avx2+fma" or "portable (no simd)".
std::string cpu_feature_string();

}  // namespace helios::util
