#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace helios::util {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string(def);
}

bool JsonValue::bool_or(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : def;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue::make_string(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Surrogate pairs are not expected in Helios artifacts; map them
          // to the replacement character rather than mis-decoding.
          if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    return JsonValue::make_number(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace helios::util
