// Minimal JSON reader for Helios's own machine-readable artifacts (the run
// journal's JSONL lines, the BENCH_*.json snapshots, the exported metrics
// and dashboard dumps). Parses the full JSON grammar into an owning value
// tree; objects preserve insertion order so diffs stay stable.
//
// This is a consumer for files Helios itself writes — small documents,
// trusted input — so the design favors a tiny API over streaming speed.
// Errors (malformed text, trailing garbage) throw std::runtime_error with
// a byte offset.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace helios::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document; throws std::runtime_error (with a
  /// byte offset in the message) on malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Convenience accessors with defaults (absent / wrong-typed -> default).
  double number_or(std::string_view key, double def) const;
  std::string string_or(std::string_view key, std::string_view def) const;
  bool bool_or(std::string_view key, bool def) const;

  // Construction (used by the parser; handy for tests).
  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace helios::util
