#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace helios::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// The provider is swapped rarely (telemetry install/uninstall) but read on
// every emitted line; a mutex keeps the std::function swap safe.
std::mutex g_context_mu;
std::function<std::string()> g_context;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_context_provider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(g_context_mu);
  g_context = std::move(provider);
}

void log(LogLevel level, const std::string& message) {
  std::string context;
  {
    std::lock_guard<std::mutex> lock(g_context_mu);
    if (g_context) context = g_context();
  }
  std::cerr << "[helios:" << level_name(level) << "] ";
  if (!context.empty()) std::cerr << '[' << context << "] ";
  std::cerr << message << '\n';
}

}  // namespace helios::util
