// Minimal leveled logger. Experiments are driven by printed tables; the
// logger exists for progress lines and debugging, defaulting to warnings.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace helios::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` to stderr unconditionally — the threshold check lives in
/// the log_xxx helpers (once, before the message is even concatenated).
/// Call directly only when the level has already been checked.
void log(LogLevel level, const std::string& message);

/// Optional context hook: when set, every emitted line carries the
/// provider's string (e.g. "cycle=3 device=1" from the telemetry sink).
/// An empty provider result adds nothing; a null function clears the hook.
void set_log_context_provider(std::function<std::string()> provider);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  // void-cast: with zero args the fold collapses to plain `ss`, which
  // -Werror=unused-value rejects.
  static_cast<void>((ss << ... << args));
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace helios::util
