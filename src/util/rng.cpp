#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace helios::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first k slots end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the parent's state with the stream id so child streams are
  // decorrelated from each other and from the parent.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (stream * 0xD6E8FEB86659FD93ULL + 1);
  return Rng(splitmix64(s));
}

RngState Rng::state() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.cached_normal = cached_normal_;
  s.has_cached_normal = has_cached_normal_;
  return s;
}

Rng Rng::from_state(const RngState& s) {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.state_[i] = s.words[i];
  rng.cached_normal_ = s.cached_normal;
  rng.has_cached_normal_ = s.has_cached_normal;
  return rng;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace helios::util
